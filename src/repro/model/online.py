"""Online speed-band re-fitting from observed telemetry.

The paper builds each machine's piecewise-linear band once, offline
(section 3.1); the self-adaptability follow-on
(Lastovetsky/Reddy/Rychkov/Clarke, arXiv:1109.3074) argues the model
must be refined *during* execution.  This module closes that loop:
:class:`OnlineBandRefitter` consumes observed ``(size, measured speed)``
points — the unified :class:`repro.adapt.Observation` records collected
by :class:`repro.obs.FleetTelemetrySink` — finds the size intervals
where observations escape the ``±eps`` acceptance band (the *same*
escape test the offline builder applies, :func:`~.builder.within_band`),
and re-runs the section-3.1 trisection over **only those intervals**,
answering each probe from the observations themselves instead of a
fresh benchmark.  Probes outside the observed range fall back to the
model's ``measure`` callable when one is configured, else to the old
midline.  The repaired knots (:func:`~.builder.repair_monotone_g`)
yield an updated :class:`~repro.core.speed_function.PiecewiseLinearSpeedFunction`
per drifted machine and a new fleet fingerprint, which downstream
consumers use for exact plan-cache invalidation
(:meth:`repro.planner.PlanCache.invalidate`) and replanning
(:meth:`repro.adapt.Replanner.apply_refit`).

A refit is *free* in the paper's cost metric when it only replays
observations: the ``experiments`` budget the paper counts is spent only
on ``measure`` fallback calls, reported as ``measurements``.

Counters (always on, like the planner's structural counters):
``model.refit.checks``, ``model.refit.applied``,
``model.refit.machines``, ``model.refit.intervals``,
``model.refit.observations``, ``model.refit.measurements``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.band import SpeedBand, constant_width_schedule
from ..core.speed_function import PiecewiseLinearSpeedFunction, SpeedFunction
from ..core.vectorized import PiecewiseLinearSet
from ..exceptions import ConfigurationError, MeasurementError
from ..obs import get_registry
from ..obs.sink import Observation
from ..planner import Fleet
from .builder import ModelBuildOptions, _trisect, repair_monotone_g, within_band

__all__ = ["FleetRefit", "MachineRefit", "OnlineBandRefitter"]


@dataclass(frozen=True)
class MachineRefit:
    """Refit outcome for one machine.

    ``intervals`` are the dirty ``[lo, hi]`` size ranges that were
    re-trisected; ``observations_used`` counts probe answers taken from
    the observation interpolant, ``measurements`` counts ``measure``
    fallback calls (the paper's experiment budget), ``escaped`` the
    observations that fell outside the ``±eps`` band.
    """

    machine: int
    refitted: bool
    function: SpeedFunction
    band: SpeedBand | None = None
    intervals: tuple[tuple[float, float], ...] = ()
    observations_used: int = 0
    measurements: int = 0
    escaped: int = 0


@dataclass(frozen=True)
class FleetRefit:
    """Outcome of one :meth:`OnlineBandRefitter.refit` pass.

    ``fleet`` packs the (possibly updated) functions, so
    ``fleet.fingerprint == fingerprint_after`` — the key downstream
    consumers invalidate plan caches by.  ``machines`` holds one
    :class:`MachineRefit` per machine that contributed observations, in
    machine order; machines the batch never mentioned pass through
    untouched and are not listed (the pass never visits them, which is
    what keeps a steady-state check cheap on large fleets).
    """

    fingerprint_before: str
    fingerprint_after: str
    functions: tuple[SpeedFunction, ...]
    machines: tuple[MachineRefit, ...]
    observations: int
    fleet: Fleet

    @property
    def changed(self) -> bool:
        """Did the refit produce a different model (new fingerprint)?"""
        return self.fingerprint_after != self.fingerprint_before

    @property
    def refitted_machines(self) -> tuple[int, ...]:
        return tuple(m.machine for m in self.machines if m.refitted)

    @property
    def scale_only(self) -> bool:
        """Every refitted machine kept its knot positions with a uniform
        speed ratio — i.e. an EWMA rescale would have captured it."""
        if not self.changed:
            return False
        for m in self.machines:
            if not m.refitted:
                continue
            old = self._old_function(m.machine)
            new = m.function
            if not isinstance(old, PiecewiseLinearSpeedFunction) or not isinstance(
                new, PiecewiseLinearSpeedFunction
            ):
                return False
            if not np.array_equal(old.knot_sizes, new.knot_sizes):
                return False
            os, ns = old.knot_speeds, new.knot_speeds
            pos = os > 0
            if np.any((os == 0) != (ns == 0)):
                return False
            ratios = ns[pos] / os[pos]
            if ratios.size and not np.allclose(
                ratios, ratios[0], rtol=1e-9, atol=0.0
            ):
                return False
        return True

    @property
    def shape_changed(self) -> bool:
        """The band's *shape* moved — a rescale cannot express the drift."""
        return self.changed and not self.scale_only

    def _old_function(self, machine: int) -> SpeedFunction:
        # The refitter stores the pre-refit functions on the result so
        # scale/shape classification needs no back-reference to it.
        return self._before[machine]

    # set via object.__setattr__ in OnlineBandRefitter.refit
    _before: tuple[SpeedFunction, ...] = ()


class OnlineBandRefitter:
    """Re-fit drifted speed bands from observed telemetry (section 3.1 online).

    Parameters
    ----------
    speed_functions:
        The fleet's current per-machine models.  Only
        :class:`PiecewiseLinearSpeedFunction` machines are refitted;
        other models pass through unchanged.
    options:
        A :class:`~.builder.ModelBuildOptions` bag (``eps`` is the
        acceptance band's half-width, the trisection knobs apply to the
        dirty-interval refinement).
    measure:
        Optional per-machine benchmark callables (a sequence or a
        ``{machine: callable}`` mapping).  Consulted only for trisection
        probes the observations cannot answer; when absent, such probes
        reuse the old midline.
    min_escaped:
        A band segment is re-fitted only once at least this many
        observations escaped it — the patience that keeps one noisy
        measurement from rebuilding the model.
    name:
        Name given to the refitted :class:`~repro.planner.Fleet`.
    """

    def __init__(
        self,
        speed_functions: Sequence[SpeedFunction],
        *,
        options: ModelBuildOptions | None = None,
        measure: Sequence[Callable[[float], float]]
        | Mapping[int, Callable[[float], float]]
        | None = None,
        min_escaped: int = 3,
        name: str = "online-refit",
    ):
        if not speed_functions:
            raise ConfigurationError("at least one speed function is required")
        if min_escaped < 1:
            raise ConfigurationError(
                f"min_escaped must be at least 1, got {min_escaped!r}"
            )
        self._functions = tuple(speed_functions)
        self._options = options if options is not None else ModelBuildOptions()
        self._measure = measure
        self._min_escaped = int(min_escaped)
        self._name = str(name)
        self._base_fleet = Fleet(self._functions, name=self._name)
        # Per-machine compiled knot rows, kept so a refit re-lowers only
        # the machines it changed (see _updated_fleet).  Absent when the
        # fleet does not compile into the vectorised pack.
        self._base_rows = (
            [sf.as_knots() for sf in self._functions]
            if self._base_fleet.pack is not None
            else None
        )
        reg = get_registry()
        self._checks = reg.counter(
            "model.refit.checks", help="online refit passes evaluated"
        )
        self._applied = reg.counter(
            "model.refit.applied", help="refit passes that changed the model"
        )
        self._machines_ctr = reg.counter(
            "model.refit.machines", help="machines whose band was re-fitted"
        )
        self._intervals_ctr = reg.counter(
            "model.refit.intervals", help="dirty band intervals re-trisected"
        )
        self._observations_ctr = reg.counter(
            "model.refit.observations", help="observations consumed by refit passes"
        )
        self._measurements_ctr = reg.counter(
            "model.refit.measurements",
            help="measure-callable fallback probes spent by refit passes",
        )

    @property
    def fingerprint(self) -> str:
        """Fingerprint of the current (pre-refit) fleet."""
        return self._base_fleet.fingerprint

    @property
    def options(self) -> ModelBuildOptions:
        return self._options

    @property
    def min_escaped(self) -> int:
        """Observations a segment must leak before it is re-fitted."""
        return self._min_escaped

    def _measure_for(self, machine: int) -> Callable[[float], float] | None:
        if self._measure is None:
            return None
        if isinstance(self._measure, Mapping):
            return self._measure.get(machine)
        if 0 <= machine < len(self._measure):
            return self._measure[machine]
        return None

    # -- the refit pass -------------------------------------------------
    def refit(self, observations: Iterable[Observation]) -> FleetRefit:
        """One refit pass over a batch of observations.

        Deterministic: the same observation multiset yields bit-identical
        refitted knots (observations are grouped per machine, repeated
        sizes averaged, and probes answered by linear interpolation over
        the observed points in sorted size order).
        """
        p = len(self._functions)
        by_machine: dict[int, list[Observation]] = {}
        total = 0
        for rec in observations:
            total += 1
            machine = int(rec.machine)
            if 0 <= machine < p and float(rec.speed) > 0.0:
                by_machine.setdefault(machine, []).append(rec)

        results: list[MachineRefit] = []
        functions: list[SpeedFunction] = list(self._functions)
        changed_machines: list[int] = []
        for machine in sorted(by_machine):
            fn = self._functions[machine]
            outcome = self._refit_machine(machine, fn, by_machine[machine])
            results.append(outcome)
            if outcome.function is not fn:
                functions[machine] = outcome.function
                changed_machines.append(machine)

        # Steady state — nothing escaped — reuses the prebuilt fleet
        # outright: no repack, no re-fingerprint, O(observations) total.
        if changed_machines:
            fleet = self._updated_fleet(tuple(functions), changed_machines)
        else:
            fleet = self._base_fleet
        result = FleetRefit(
            fingerprint_before=self._base_fleet.fingerprint,
            fingerprint_after=fleet.fingerprint,
            functions=tuple(functions),
            machines=tuple(results),
            observations=total,
            fleet=fleet,
        )
        object.__setattr__(result, "_before", self._functions)

        self._checks.inc()
        self._observations_ctr.inc(total)
        refitted = [m for m in results if m.refitted]
        if refitted:
            self._machines_ctr.inc(len(refitted))
            self._intervals_ctr.inc(sum(len(m.intervals) for m in refitted))
            self._measurements_ctr.inc(sum(m.measurements for m in refitted))
        if result.changed:
            self._applied.inc()
        return result

    def _updated_fleet(
        self, functions: tuple[SpeedFunction, ...], changed: Sequence[int]
    ) -> Fleet:
        """Fleet over ``functions``, re-lowering only the re-fitted rows.

        When the base fleet compiled, the cached knot rows answer for
        every untouched machine and only the changed machines go through
        ``as_knots`` again, so an applied refit costs ``O(changed)``
        lowering plus one array pack instead of ``O(p)``.  The resulting
        fingerprint is identical to a from-scratch build because the pack
        digests knot *content*, not construction history.
        """
        if self._base_rows is not None:
            rows = list(self._base_rows)
            for i in changed:
                row = functions[i].as_knots()
                if row is None:
                    break
                rows[i] = row
            else:
                pack = PiecewiseLinearSet(functions, rows=rows)
                return Fleet(functions, name=self._name, pack=pack)
        return Fleet(functions, name=self._name)

    def _refit_machine(
        self, machine: int, fn: SpeedFunction, recs: list[Observation]
    ) -> MachineRefit:
        if not isinstance(fn, PiecewiseLinearSpeedFunction) or fn.num_knots < 2:
            return MachineRefit(machine=machine, refitted=False, function=fn)
        xs = fn.knot_sizes
        ss = fn.knot_speeds
        a, b = float(xs[0]), float(xs[-1])
        pts: dict[float, list[float]] = {}
        for rec in recs:
            size = float(rec.size)
            if a <= size <= b:
                pts.setdefault(size, []).append(float(rec.speed))
        if not pts:
            return MachineRefit(machine=machine, refitted=False, function=fn)
        obs_xs = np.array(sorted(pts), dtype=float)
        obs_ss = np.array(
            [sum(pts[x]) / len(pts[x]) for x in obs_xs], dtype=float
        )

        options = self._options
        eps = options.eps
        floor = float(ss[0])

        # The escape test, per observation, against its band segment.
        seg = np.clip(
            np.searchsorted(xs, obs_xs, side="right") - 1, 0, xs.size - 2
        )
        escaped_per_seg = np.zeros(xs.size - 1, dtype=int)
        escaped = 0
        for x, s, k in zip(obs_xs, obs_ss, seg):
            if not within_band(
                float(x), float(s),
                float(xs[k]), float(ss[k]), float(xs[k + 1]), float(ss[k + 1]),
                eps=eps, floor=floor,
            ):
                escaped_per_seg[k] += 1
                escaped += 1

        dirty = escaped_per_seg >= self._min_escaped
        if not dirty.any():
            return MachineRefit(
                machine=machine, refitted=False, function=fn, escaped=escaped
            )

        # Merge adjacent dirty segments into maximal [lo, hi] intervals.
        intervals: list[tuple[float, float]] = []
        k = 0
        while k < dirty.size:
            if dirty[k]:
                j = k
                while j + 1 < dirty.size and dirty[j + 1]:
                    j += 1
                intervals.append((float(xs[k]), float(xs[j + 1])))
                k = j + 1
            k += 1

        # Probe answers: observations first (free), then the measure
        # callable (a real experiment), then the stale midline.
        used = 0
        measured = 0
        fallback = self._measure_for(machine)

        def emp(x: float) -> float:
            nonlocal used, measured
            if obs_xs[0] <= x <= obs_xs[-1]:
                used += 1
                return float(np.interp(x, obs_xs, obs_ss))
            if fallback is not None:
                measured += 1
                s = float(fallback(x))
                if s < 0 or not np.isfinite(s):
                    raise MeasurementError(
                        f"benchmark returned invalid speed {s!r} at {x:g}"
                    )
                return s
            return float(fn.speed(x))

        knots: dict[float, float] = {
            float(x): float(s) for x, s in zip(xs, ss)
        }
        for lo, hi in intervals:
            for x in list(knots):
                if lo < x < hi:
                    del knots[x]
        # Endpoint speeds come from the observations; the pinned zero at
        # ``b`` is preserved (no observation can sit at speed zero).
        for lo, hi in intervals:
            knots[lo] = emp(lo)
            knots[hi] = float(ss[-1]) if hi >= b and ss[-1] == 0.0 else emp(hi)
        gap = options.gap_for(a, b)
        for lo, hi in intervals:
            _trisect(
                emp, knots, lo, knots[lo], hi, knots[hi], 0,
                eps=eps, floor=floor, gap=gap, max_depth=options.max_depth,
                spacing=options.spacing, min_ratio=options.min_ratio,
            )

        new_xs = np.array(sorted(knots), dtype=float)
        new_ss = np.array([knots[x] for x in new_xs], dtype=float)
        new_xs, new_ss = repair_monotone_g(new_xs, new_ss)
        if np.array_equal(new_xs, xs) and np.array_equal(new_ss, ss):
            return MachineRefit(
                machine=machine, refitted=False, function=fn,
                intervals=tuple(intervals), observations_used=used,
                measurements=measured, escaped=escaped,
            )
        function = PiecewiseLinearSpeedFunction(new_xs, new_ss)
        band = SpeedBand(
            function, constant_width_schedule(min(2 * eps, 0.99))
        )
        return MachineRefit(
            machine=machine, refitted=True, function=function, band=band,
            intervals=tuple(intervals), observations_used=used,
            measurements=measured, escaped=escaped,
        )

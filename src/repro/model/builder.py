"""Building piecewise speed functions from few measurements (section 3.1).

The paper's practical procedure approximates a processor's speed function
by a piecewise linear band built from a *small* set of experimentally
obtained points:

1. choose the interval ``[a, b]``: ``a`` fits in the top cache level, ``b``
   is so large (main memory + swap) that the speed is practically zero;
   measure ``s(a)``, pin ``s(b) = 0``;
2. **trisect** the current interval (bisection can be fooled by symmetric
   curves — figure 19c), measure the speed at both interior points, and
   compare against the current linear band of relative width ``±eps``
   (5 % in the paper, matching the machines' inherent fluctuation);
3. where a measurement escapes the band, insert it as a knot and recurse
   into the sub-intervals that are not yet explained; where it matches the
   neighbouring endpoint to within the band there is nothing left to
   resolve on that side (the paper's sub-cases 2b-2d), so that
   sub-interval is skipped;
4. stop when no sub-interval remains (or it falls below ``min_gap``).

The assembled knots are lightly repaired to restore the strict decrease of
``g(x) = s(x)/x`` that measurement noise can break (a knot's speed is at
most clipped down by the noise amplitude; see :func:`repair_monotone_g`),
because the partitioning algorithms require that invariant exactly.

The knobs of the procedure live in the frozen :class:`ModelBuildOptions`
dataclass (mirroring ``PartitionOptions``); the band's escape test is
exposed as :func:`within_band` / :func:`speeds_close` and the recursion
as a shared helper, so the *online* refitter
(:class:`repro.model.OnlineBandRefitter`) applies the identical
section-3.1 rules to observed telemetry instead of fresh benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace as _dc_replace
from typing import Callable

import numpy as np

from ..core.band import SpeedBand, constant_width_schedule
from ..core.speed_function import PiecewiseLinearSpeedFunction
from ..exceptions import ConfigurationError, MeasurementError

__all__ = [
    "BuiltModel",
    "ModelBuildOptions",
    "build_piecewise_model",
    "repair_monotone_g",
    "speeds_close",
    "within_band",
]

#: The paper's acceptable deviation between the approximation and reality.
DEFAULT_EPSILON = 0.05


@dataclass(frozen=True)
class ModelBuildOptions:
    """The section-3.1 procedure's knobs, validated once and frozen.

    Mirrors the ``PartitionOptions`` pattern: one immutable bag shared by
    the offline builder (:func:`build_piecewise_model`) and the online
    refitter (:class:`repro.model.OnlineBandRefitter`), rejecting bad
    values through the same :class:`~repro.exceptions.ConfigurationError`
    paths.  All fields keep the keyword defaults
    :func:`build_piecewise_model` has always had:

    * ``eps`` — relative half-width of the acceptance band (paper's 5 %);
    * ``min_gap`` — smallest sub-interval worth refining; ``None`` means
      ``(b - a) / 729`` (six levels of trisection), see :meth:`gap_for`;
    * ``max_depth`` — hard recursion bound;
    * ``spacing`` — ``"linear"`` trisects at equal lengths (the paper's
      literal procedure), ``"log"`` at equal ratios;
    * ``min_ratio`` — with ``spacing="log"``: stop once ``x_r/x_l``
      falls below this;
    * ``pin_zero_at_b`` — pin ``s(b) = 0`` without measuring (the
      paper's choice for a thrashing-size ``b``).
    """

    eps: float = DEFAULT_EPSILON
    min_gap: float | None = None
    max_depth: int = 24
    spacing: str = "linear"
    min_ratio: float = 1.02
    pin_zero_at_b: bool = True

    def __post_init__(self) -> None:
        if not (0 < self.eps < 1):
            raise ConfigurationError(f"eps must be in (0, 1), got {self.eps!r}")
        if self.min_gap is not None and self.min_gap <= 0:
            raise ConfigurationError(
                f"min_gap must be positive, got {self.min_gap!r}"
            )
        if int(self.max_depth) < 1:
            raise ConfigurationError(
                f"max_depth must be at least 1, got {self.max_depth!r}"
            )
        if self.spacing not in ("linear", "log"):
            raise ConfigurationError(
                f"spacing must be 'linear' or 'log', got {self.spacing!r}"
            )
        if self.min_ratio <= 1.0:
            raise ConfigurationError(
                f"min_ratio must exceed 1, got {self.min_ratio!r}"
            )

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    def replace(self, **changes) -> "ModelBuildOptions":
        """A copy with ``changes`` applied (re-validated)."""
        unknown = set(changes) - set(self.field_names())
        if unknown:
            name = sorted(unknown)[0]
            raise ConfigurationError(f"unknown model-build option {name!r}")
        return _dc_replace(self, **changes)

    def gap_for(self, a: float, b: float) -> float:
        """The effective ``min_gap`` on the interval ``[a, b]``."""
        return self.min_gap if self.min_gap is not None else (b - a) / 729.0


@dataclass
class BuiltModel:
    """Result of the model-building procedure.

    Attributes
    ----------
    function:
        The fitted piecewise-linear speed function (the band midline).
    band:
        The fitted function wrapped in the ``±eps`` acceptance band.
    points:
        The experimentally measured ``(size, speed)`` pairs, in size order.
    experiments:
        Number of benchmark invocations consumed — the cost the paper
        reports (about 5 points per machine in their experiments).
    """

    function: PiecewiseLinearSpeedFunction
    band: SpeedBand
    points: list[tuple[float, float]] = field(default_factory=list)
    experiments: int = 0


def repair_monotone_g(
    sizes: np.ndarray, speeds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Clip knot speeds so that ``g = s/x`` strictly decreases.

    Walking left to right, a knot whose ray slope would not drop below its
    predecessor's is clipped down to just under the predecessor's ray.
    (Equivalently: every segment keeps a positive intercept at ``x=0``.)
    Clipping is downward only and bounded by the violation magnitude, i.e.
    by the measurement noise that caused it.
    """
    xs = np.asarray(sizes, dtype=float).copy()
    ss = np.asarray(speeds, dtype=float).copy()
    for k in range(1, xs.size):
        cap = ss[k - 1] / xs[k - 1] * xs[k] * (1.0 - 1e-9)
        if ss[k] >= cap:
            ss[k] = cap
    return xs, ss


def within_band(
    x: float,
    s: float,
    xl: float,
    sl: float,
    xr: float,
    sr: float,
    *,
    eps: float,
    floor: float = 0.0,
) -> bool:
    """The section-3.1 escape test: is ``(x, s)`` inside the ``±eps`` band
    of the linear piece through ``(xl, sl)-(xr, sr)``?

    ``floor`` is the reference speed that keeps the tolerance from
    degenerating where the interpolant approaches zero — the builder
    passes ``s(a)``, the observed speed at the smallest size.
    """
    interp = sl + (sr - sl) * (x - xl) / (xr - xl)
    tol = eps * max(abs(interp), eps * floor)
    return abs(s - interp) <= tol


def speeds_close(s1: float, s2: float, *, eps: float, floor: float = 0.0) -> bool:
    """Are two speeds indistinguishable at the band's resolution?"""
    return abs(s1 - s2) <= eps * max(abs(s1), abs(s2), eps * floor)


def _trisect(
    run: Callable[[float], float],
    knots: dict[float, float],
    xl: float,
    sl: float,
    xr: float,
    sr: float,
    depth: int,
    *,
    eps: float,
    floor: float,
    gap: float,
    max_depth: int,
    spacing: str,
    min_ratio: float,
) -> None:
    """One section-3.1 trisection step, recursing into unexplained sides.

    Shared verbatim by the offline builder and the online refitter:
    ``run`` is whatever produces a speed at a probe size (a benchmark
    call offline, an observation interpolant online) and ``knots``
    collects the accepted points in place.
    """
    if depth >= max_depth:
        return
    if spacing == "linear":
        if xr - xl <= gap:
            return
        xb1 = xl + (xr - xl) / 3.0
        xb2 = xl + 2.0 * (xr - xl) / 3.0
    else:
        ratio = xr / xl
        if ratio <= min_ratio or xr - xl <= 1.0:
            return
        # Geometric first probe: resolves decade-spanning structure
        # near the left end (ramps, cache steps).  Linear second probe:
        # sits in the bulk of the interval, so a collapse anywhere in
        # the middle cannot hide under the chord (a pair of geometric
        # probes would both crowd the left edge, where the chord is
        # trivially close to s(x_l)).
        xb1 = xl * ratio ** (1.0 / 3.0)
        xb2 = xl + 2.0 * (xr - xl) / 3.0
    sb1 = run(xb1)
    sb2 = run(xb2)
    ok1 = within_band(xb1, sb1, xl, sl, xr, sr, eps=eps, floor=floor)
    ok2 = within_band(xb2, sb2, xl, sl, xr, sr, eps=eps, floor=floor)
    if ok1 and ok2:
        # Case 2a: the current band explains both experiments; this
        # linear piece is final.
        return
    knots[float(xb1)] = sb1
    knots[float(xb2)] = sb2
    # Cases 2b-2d: recurse only into sub-intervals the band does not
    # already explain.  An interior point matching its outer neighbour
    # (to band resolution) closes that side.
    if not (ok1 or speeds_close(sb1, sl, eps=eps, floor=floor)):
        _trisect(
            run, knots, xl, sl, xb1, sb1, depth + 1,
            eps=eps, floor=floor, gap=gap, max_depth=max_depth,
            spacing=spacing, min_ratio=min_ratio,
        )
    _trisect(
        run, knots, xb1, sb1, xb2, sb2, depth + 1,
        eps=eps, floor=floor, gap=gap, max_depth=max_depth,
        spacing=spacing, min_ratio=min_ratio,
    )
    if not (ok2 or speeds_close(sb2, sr, eps=eps, floor=floor)):
        _trisect(
            run, knots, xb2, sb2, xr, sr, depth + 1,
            eps=eps, floor=floor, gap=gap, max_depth=max_depth,
            spacing=spacing, min_ratio=min_ratio,
        )


def build_piecewise_model(
    measure: Callable[[float], float],
    a: float,
    b: float,
    *,
    options: ModelBuildOptions | None = None,
    **kwargs,
) -> BuiltModel:
    """Run the section-3.1 procedure against a benchmark callable.

    Parameters
    ----------
    measure:
        One benchmark experiment: problem size (elements) -> speed
        (MFlops).  Use :class:`~repro.model.measurement.SimulatedBenchmark`
        for simulated machines or a lambda over the real measurement
        helpers.
    a:
        Smallest benchmarked size (the cache-resident problem).
    b:
        Largest size; the speed there is *pinned to zero* per the paper,
        not measured (the machine would thrash for hours).
    options:
        A :class:`ModelBuildOptions` bag.  The individual knobs (``eps``,
        ``min_gap``, ``max_depth``, ``spacing``, ``min_ratio``,
        ``pin_zero_at_b``) are still accepted as keyword arguments for
        backward compatibility and override the bag's fields; unknown
        keywords raise :class:`~repro.exceptions.ConfigurationError`.
    """
    if not (0 < a < b):
        raise ConfigurationError(f"need 0 < a < b, got a={a!r}, b={b!r}")
    if kwargs:
        base = options if options is not None else ModelBuildOptions()
        options = base.replace(**kwargs)
    elif options is None:
        options = ModelBuildOptions()
    gap = options.gap_for(a, b)

    experiments = 0

    def run(x: float) -> float:
        nonlocal experiments
        experiments += 1
        s = float(measure(x))
        if s < 0 or not np.isfinite(s):
            raise MeasurementError(f"benchmark returned invalid speed {s!r} at {x:g}")
        return s

    s_a = run(a)
    if s_a <= 0:
        raise MeasurementError(f"speed at the smallest size must be positive, got {s_a!r}")
    s_b = 0.0 if options.pin_zero_at_b else run(b)
    knots: dict[float, float] = {float(a): s_a, float(b): s_b}

    _trisect(
        run, knots, float(a), s_a, float(b), s_b, 0,
        eps=options.eps, floor=s_a, gap=gap, max_depth=options.max_depth,
        spacing=options.spacing, min_ratio=options.min_ratio,
    )

    xs = np.array(sorted(knots), dtype=float)
    ss = np.array([knots[x] for x in xs], dtype=float)
    xs, ss = repair_monotone_g(xs, ss)
    function = PiecewiseLinearSpeedFunction(xs, ss)
    band = SpeedBand(function, constant_width_schedule(min(2 * options.eps, 0.99)))
    points = [(float(x), float(s)) for x, s in zip(xs, ss)]
    return BuiltModel(
        function=function, band=band, points=points, experiments=experiments
    )

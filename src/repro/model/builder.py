"""Building piecewise speed functions from few measurements (section 3.1).

The paper's practical procedure approximates a processor's speed function
by a piecewise linear band built from a *small* set of experimentally
obtained points:

1. choose the interval ``[a, b]``: ``a`` fits in the top cache level, ``b``
   is so large (main memory + swap) that the speed is practically zero;
   measure ``s(a)``, pin ``s(b) = 0``;
2. **trisect** the current interval (bisection can be fooled by symmetric
   curves — figure 19c), measure the speed at both interior points, and
   compare against the current linear band of relative width ``±eps``
   (5 % in the paper, matching the machines' inherent fluctuation);
3. where a measurement escapes the band, insert it as a knot and recurse
   into the sub-intervals that are not yet explained; where it matches the
   neighbouring endpoint to within the band there is nothing left to
   resolve on that side (the paper's sub-cases 2b-2d), so that
   sub-interval is skipped;
4. stop when no sub-interval remains (or it falls below ``min_gap``).

The assembled knots are lightly repaired to restore the strict decrease of
``g(x) = s(x)/x`` that measurement noise can break (a knot's speed is at
most clipped down by the noise amplitude; see :func:`repair_monotone_g`),
because the partitioning algorithms require that invariant exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.band import SpeedBand, constant_width_schedule
from ..core.speed_function import PiecewiseLinearSpeedFunction
from ..exceptions import ConfigurationError, MeasurementError

__all__ = ["BuiltModel", "build_piecewise_model", "repair_monotone_g"]

#: The paper's acceptable deviation between the approximation and reality.
DEFAULT_EPSILON = 0.05


@dataclass
class BuiltModel:
    """Result of the model-building procedure.

    Attributes
    ----------
    function:
        The fitted piecewise-linear speed function (the band midline).
    band:
        The fitted function wrapped in the ``±eps`` acceptance band.
    points:
        The experimentally measured ``(size, speed)`` pairs, in size order.
    experiments:
        Number of benchmark invocations consumed — the cost the paper
        reports (about 5 points per machine in their experiments).
    """

    function: PiecewiseLinearSpeedFunction
    band: SpeedBand
    points: list[tuple[float, float]] = field(default_factory=list)
    experiments: int = 0


def repair_monotone_g(
    sizes: np.ndarray, speeds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Clip knot speeds so that ``g = s/x`` strictly decreases.

    Walking left to right, a knot whose ray slope would not drop below its
    predecessor's is clipped down to just under the predecessor's ray.
    (Equivalently: every segment keeps a positive intercept at ``x=0``.)
    Clipping is downward only and bounded by the violation magnitude, i.e.
    by the measurement noise that caused it.
    """
    xs = np.asarray(sizes, dtype=float).copy()
    ss = np.asarray(speeds, dtype=float).copy()
    for k in range(1, xs.size):
        cap = ss[k - 1] / xs[k - 1] * xs[k] * (1.0 - 1e-9)
        if ss[k] >= cap:
            ss[k] = cap
    return xs, ss


def build_piecewise_model(
    measure: Callable[[float], float],
    a: float,
    b: float,
    *,
    eps: float = DEFAULT_EPSILON,
    min_gap: float | None = None,
    max_depth: int = 24,
    spacing: str = "linear",
    min_ratio: float = 1.02,
    pin_zero_at_b: bool = True,
) -> BuiltModel:
    """Run the section-3.1 procedure against a benchmark callable.

    Parameters
    ----------
    measure:
        One benchmark experiment: problem size (elements) -> speed
        (MFlops).  Use :class:`~repro.model.measurement.SimulatedBenchmark`
        for simulated machines or a lambda over the real measurement
        helpers.
    a:
        Smallest benchmarked size (the cache-resident problem).
    b:
        Largest size; the speed there is *pinned to zero* per the paper,
        not measured (the machine would thrash for hours).
    eps:
        Relative half-width of the acceptance band (the paper's 5 %).
    min_gap:
        Smallest sub-interval worth refining; defaults to ``(b-a)/729``
        (six levels of trisection).
    max_depth:
        Hard recursion bound.
    spacing:
        ``"linear"`` trisects intervals at equal *lengths* — the paper's
        literal procedure.  ``"log"`` trisects at equal *ratios*, which
        resolves features spanning decades (start-up ramps, early cache
        steps) with far fewer experiments; a documented extension used by
        the reproduction's experiment drivers.
    min_ratio:
        With ``spacing="log"``: stop refining once ``x_right/x_left``
        falls below this ratio.
    pin_zero_at_b:
        The paper chooses ``b`` past the memory+swap limit and pins
        ``s(b) = 0`` without measuring (the machine would thrash for
        hours).  Pass ``False`` when ``b`` is a *solvable* size — e.g.
        when benchmarking a real host over a modest range — to measure
        the speed at ``b`` instead.
    """
    if not (0 < a < b):
        raise ConfigurationError(f"need 0 < a < b, got a={a!r}, b={b!r}")
    if not (0 < eps < 1):
        raise ConfigurationError(f"eps must be in (0, 1), got {eps!r}")
    if spacing not in ("linear", "log"):
        raise ConfigurationError(f"spacing must be 'linear' or 'log', got {spacing!r}")
    if min_ratio <= 1.0:
        raise ConfigurationError(f"min_ratio must exceed 1, got {min_ratio!r}")
    gap = min_gap if min_gap is not None else (b - a) / 729.0
    if gap <= 0:
        raise ConfigurationError(f"min_gap must be positive, got {gap!r}")

    experiments = 0

    def run(x: float) -> float:
        nonlocal experiments
        experiments += 1
        s = float(measure(x))
        if s < 0 or not np.isfinite(s):
            raise MeasurementError(f"benchmark returned invalid speed {s!r} at {x:g}")
        return s

    s_a = run(a)
    if s_a <= 0:
        raise MeasurementError(f"speed at the smallest size must be positive, got {s_a!r}")
    s_b = 0.0 if pin_zero_at_b else run(b)
    knots: dict[float, float] = {float(a): s_a, float(b): s_b}

    def within(x: float, s: float, xl: float, sl: float, xr: float, sr: float) -> bool:
        """Is the observation inside the ``±eps`` band of the linear piece?"""
        interp = sl + (sr - sl) * (x - xl) / (xr - xl)
        tol = eps * max(abs(interp), eps * s_a)
        return abs(s - interp) <= tol

    def close(s1: float, s2: float) -> bool:
        """Are two speeds indistinguishable at the band's resolution?"""
        return abs(s1 - s2) <= eps * max(abs(s1), abs(s2), eps * s_a)

    def refine(xl: float, sl: float, xr: float, sr: float, depth: int) -> None:
        if depth >= max_depth:
            return
        if spacing == "linear":
            if xr - xl <= gap:
                return
            xb1 = xl + (xr - xl) / 3.0
            xb2 = xl + 2.0 * (xr - xl) / 3.0
        else:
            ratio = xr / xl
            if ratio <= min_ratio or xr - xl <= 1.0:
                return
            # Geometric first probe: resolves decade-spanning structure
            # near the left end (ramps, cache steps).  Linear second probe:
            # sits in the bulk of the interval, so a collapse anywhere in
            # the middle cannot hide under the chord (a pair of geometric
            # probes would both crowd the left edge, where the chord is
            # trivially close to s(x_l)).
            xb1 = xl * ratio ** (1.0 / 3.0)
            xb2 = xl + 2.0 * (xr - xl) / 3.0
        sb1 = run(xb1)
        sb2 = run(xb2)
        ok1 = within(xb1, sb1, xl, sl, xr, sr)
        ok2 = within(xb2, sb2, xl, sl, xr, sr)
        if ok1 and ok2:
            # Case 2a: the current band explains both experiments; this
            # linear piece is final.
            return
        knots[float(xb1)] = sb1
        knots[float(xb2)] = sb2
        # Cases 2b-2d: recurse only into sub-intervals the band does not
        # already explain.  An interior point matching its outer neighbour
        # (to band resolution) closes that side.
        if not (ok1 or close(sb1, sl)):
            refine(xl, sl, xb1, sb1, depth + 1)
        refine(xb1, sb1, xb2, sb2, depth + 1)
        if not (ok2 or close(sb2, sr)):
            refine(xb2, sb2, xr, sr, depth + 1)

    refine(float(a), s_a, float(b), s_b, 0)

    xs = np.array(sorted(knots), dtype=float)
    ss = np.array([knots[x] for x in xs], dtype=float)
    xs, ss = repair_monotone_g(xs, ss)
    function = PiecewiseLinearSpeedFunction(xs, ss)
    band = SpeedBand(function, constant_width_schedule(min(2 * eps, 0.99)))
    points = [(float(x), float(s)) for x, s in zip(xs, ss)]
    return BuiltModel(
        function=function, band=band, points=points, experiments=experiments
    )

"""repro.adapt — fault-tolerant adaptive execution.

The partitioners in :mod:`repro.core` assume the model is right and the
machines stay up.  This package closes the loop for long-running
executions on real networks, where section 1's "constant and stochastic
fluctuations in the workload" become permanent shifts and machines
disappear altogether:

* :mod:`repro.adapt.observation` — the frozen :class:`Observation`
  record shared by telemetry ingest, drift detection and the online
  band refitter (:class:`repro.model.OnlineBandRefitter`);
* :mod:`repro.adapt.detector` — :class:`DriftDetector` judges per-step
  effective-speed observations against the model's
  :class:`~repro.core.band.SpeedBand` envelopes and confirms drifts
  after ``patience`` consecutive outliers;
* :mod:`repro.adapt.replanner` — :class:`Replanner` rescales the model
  by the observed factors, asks a warm-started
  :class:`~repro.planner.Planner` for the optimal remaining partition,
  and applies the **savings-versus-migration-cost** rule; dropout
  recovery redistributes orphaned elements over the survivors with
  :func:`~repro.core.bounded.partition_bounded`;
* :mod:`repro.adapt.migration` — minimal deterministic element moves
  between two allocations, priced over the
  :class:`~repro.machines.comm.CommModel` links;
* :mod:`repro.adapt.faults` — scripted dropouts, permanent load shifts
  and transient communication faults, so every scenario is a pure
  function of ``(plan, script, seed)``;
* :mod:`repro.adapt.retry` — deterministic exponential-backoff retry
  with per-attempt timeouts for real task dispatch;
* :mod:`repro.adapt.mm` / :mod:`repro.adapt.lu` — adaptive counterparts
  of the two simulators, bit-identical to the static ones when
  adaptation is :data:`DISABLED` and the environment is clean.

Everything is observable through the ``adapt.*`` metrics (drifts,
replans, migrated elements, retries, dropouts survived).
"""

from __future__ import annotations

from .detector import DriftDetector, DriftEvent
from .faults import (
    CommFault,
    Dropout,
    FaultInjector,
    FaultScript,
    InjectedCommError,
    LoadShift,
)
from .lu import AdaptiveLUSimulation, simulate_lu_adaptive
from .migration import MigrationPlan, Move, apply_migration, plan_migration
from .mm import AdaptiveMMSimulation, simulate_striped_matmul_adaptive
from .observation import Observation
from .replanner import (
    DISABLED,
    AdaptivePolicy,
    ReplanDecision,
    Replanner,
    scale_speed_function,
)
from .retry import NO_RETRY, RetryExhaustedError, RetryPolicy, call_with_retry

__all__ = [
    "DISABLED",
    "NO_RETRY",
    "AdaptiveLUSimulation",
    "AdaptiveMMSimulation",
    "AdaptivePolicy",
    "CommFault",
    "DriftDetector",
    "DriftEvent",
    "Dropout",
    "FaultInjector",
    "FaultScript",
    "InjectedCommError",
    "LoadShift",
    "MigrationPlan",
    "Move",
    "Observation",
    "ReplanDecision",
    "Replanner",
    "RetryExhaustedError",
    "RetryPolicy",
    "apply_migration",
    "call_with_retry",
    "plan_migration",
    "scale_speed_function",
    "simulate_lu_adaptive",
    "simulate_striped_matmul_adaptive",
]

"""Drift detection against speed-band envelopes.

Section 1 of the paper models a machine's speed as a *band*; a running
computation yields free observations (assigned size, realised effective
speed) every step.  :class:`DriftDetector` checks each observation
against the machine's :class:`~repro.core.band.SpeedBand` envelope
(widened by a configurable slack) and flags **drift** — a permanent
departure from the band, as opposed to in-band fluctuation — once
``patience`` consecutive observations fall outside it.

The detector also maintains a smoothed per-machine *speed factor*
(observed / midline-predicted, exponentially weighted), which is what
the :class:`~repro.adapt.replanner.Replanner` uses to rescale the model
speed functions when rebuilding the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import obs
from ..core.band import SpeedBand
from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError

__all__ = ["DriftDetector", "DriftEvent"]


@dataclass(frozen=True)
class DriftEvent:
    """A confirmed drift: ``patience`` consecutive out-of-band observations.

    Attributes
    ----------
    machine:
        The drifting machine.
    time:
        Simulated (or wall) time of the confirming observation.
    size:
        Problem size of the confirming observation.
    observed / predicted:
        Realised effective speed versus the band midline's prediction at
        that size (MFlops).
    factor:
        The detector's smoothed observed/predicted ratio at confirmation
        time — the scale the replanner applies to the model function.
    """

    machine: int
    time: float
    size: float
    observed: float
    predicted: float
    factor: float

    @property
    def severity(self) -> float:
        """Relative departure from the prediction (0 = none)."""
        if self.predicted <= 0:
            return float("inf")
        return abs(self.observed - self.predicted) / self.predicted


class DriftDetector:
    """Flags machines whose observed speeds leave their band envelope.

    Parameters
    ----------
    bands:
        One :class:`~repro.core.band.SpeedBand` per machine — or a bare
        :class:`~repro.core.speed_function.SpeedFunction`, which is
        wrapped in a band of relative width ``default_width``.
    slack:
        Extra relative widening of every envelope check (noise guard).
    patience:
        Consecutive out-of-band observations needed to confirm a drift.
        In-band observations reset the streak: transient excursions
        shorter than ``patience`` steps never trigger a replan.
    smoothing:
        EWMA weight of a new observation in the per-machine speed factor
        (1.0 = trust the latest observation completely).
    default_width:
        Band width used when a bare speed function is given.
    """

    def __init__(
        self,
        bands: Sequence[SpeedBand | SpeedFunction],
        *,
        slack: float = 0.05,
        patience: int = 3,
        smoothing: float = 0.5,
        default_width: float = 0.10,
    ):
        if not bands:
            raise ConfigurationError("at least one band is required")
        if slack < 0:
            raise ConfigurationError(f"slack must be non-negative, got {slack!r}")
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience!r}")
        if not (0 < smoothing <= 1):
            raise ConfigurationError(f"smoothing must be in (0, 1], got {smoothing!r}")
        self._bands: list[SpeedBand] = [
            b if isinstance(b, SpeedBand) else SpeedBand(b, width=default_width)
            for b in bands
        ]
        self._slack = float(slack)
        self._patience = int(patience)
        self._smoothing = float(smoothing)
        p = len(self._bands)
        self._streak = np.zeros(p, dtype=np.int64)
        self._factor = np.ones(p, dtype=float)
        #: Total observations / out-of-band observations / confirmed drifts.
        self.observations = 0
        self.outliers = 0
        self.drifts = 0

    @property
    def p(self) -> int:
        return len(self._bands)

    @property
    def bands(self) -> tuple[SpeedBand, ...]:
        return tuple(self._bands)

    def factors(self) -> np.ndarray:
        """Smoothed observed/predicted speed ratio per machine (1.0 = on model)."""
        return self._factor.copy()

    def streaks(self) -> np.ndarray:
        """Current consecutive out-of-band streak per machine."""
        return self._streak.copy()

    def observe(
        self, machine: int, size: float, speed: float, *, time: float = 0.0
    ) -> DriftEvent | None:
        """Feed one observation; returns a :class:`DriftEvent` on confirmation.

        After a confirmation the machine's streak resets (the caller is
        expected to act — replan, rebuild — and subsequent observations
        are judged afresh), but the smoothed factor is retained.
        """
        if not (0 <= machine < self.p):
            raise ConfigurationError(
                f"no machine {machine} in a {self.p}-machine detector"
            )
        if size <= 0 or speed < 0 or not np.isfinite(speed):
            raise ConfigurationError(
                f"invalid observation (size={size!r}, speed={speed!r})"
            )
        self.observations += 1
        band = self._bands[machine]
        x = min(float(size), band.max_size)
        predicted = float(band.midline.speed(x))
        ratio = speed / predicted if predicted > 0 else float("inf")
        w = self._smoothing
        self._factor[machine] = (1 - w) * self._factor[machine] + w * ratio
        if band.contains(x, speed, slack=self._slack):
            self._streak[machine] = 0
            return None
        self.outliers += 1
        self._streak[machine] += 1
        if self._streak[machine] < self._patience:
            return None
        self._streak[machine] = 0
        self.drifts += 1
        if obs.is_enabled():
            obs.record_adapt(drifts=1)
        return DriftEvent(
            machine=machine,
            time=float(time),
            size=float(size),
            observed=float(speed),
            predicted=predicted,
            factor=float(self._factor[machine]),
        )

    def ingest(self, observations) -> list[DriftEvent]:
        """Feed a batch of step observations; return every confirmed drift.

        ``observations`` is an iterable of unified
        :class:`~repro.adapt.Observation` records — what
        :meth:`repro.obs.FleetTelemetrySink.recent` returns, the bridge
        from live serving telemetry to drift confirmation.  Anything
        observation-shaped (``machine`` / ``size`` / ``speed`` /
        ``time`` attributes) is accepted, so the legacy
        :class:`~repro.obs.sink.StepObservation` tuples from
        ``recent_steps`` keep working.  Observations for machines this
        detector does not know are skipped (a sink may aggregate a
        larger fleet than one detector watches — and fleet-level
        ``machine == -1`` solve records skip automatically); malformed
        ones raise as :meth:`observe` would.
        """
        events: list[DriftEvent] = []
        for rec in observations:
            machine = int(rec.machine)
            if not (0 <= machine < self.p):
                continue
            event = self.observe(
                machine, float(rec.size), float(rec.speed), time=float(rec.time)
            )
            if event is not None:
                events.append(event)
        return events

    def reset_streaks(self) -> None:
        """Clear every streak but keep the learned speed factors.

        Called after an applied replan: the new allocation was built
        *from* the factors, so they stay; the streaks restart because the
        drift has been acted on.
        """
        self._streak[:] = 0

    def reset(self, machine: int | None = None) -> None:
        """Clear streaks (and factors) for one machine or all machines."""
        if machine is None:
            self._streak[:] = 0
            self._factor[:] = 1.0
        else:
            self._streak[machine] = 0
            self._factor[machine] = 1.0

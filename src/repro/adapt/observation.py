"""The unified observation record, re-exported for the adaptive layer.

:class:`Observation` is *defined* in :mod:`repro.obs.sink` — the lowest
layer of the stack — because both :mod:`repro.adapt` and
:mod:`repro.serve` consume it and neither may import the other.  This
module gives it its documented home in the adaptive API
(``repro.adapt.Observation``): the one frozen record shared by
:meth:`repro.obs.FleetTelemetrySink.observe`,
:meth:`repro.adapt.DriftDetector.ingest` and
:class:`repro.model.OnlineBandRefitter`.

The older per-consumer shapes remain as thin adapters with deprecation
notes: :class:`repro.obs.StepObservation` (and
``FleetTelemetrySink.recent_steps`` / ``observe_step`` /
``observe_solve``) for telemetry, and bare ``(machine, size, speed,
time)`` attribute bags for :meth:`DriftDetector.ingest`, which accepts
anything observation-shaped.
"""

from __future__ import annotations

from ..obs.sink import Observation

__all__ = ["Observation"]

"""Bounded migration plans between two allocations.

A replan is only worth applying when the projected makespan savings
exceed the cost of *moving the data*: redistributing stripe elements
between machines is real communication.  :func:`plan_migration` turns an
``(old, new)`` allocation pair into the minimal set of element moves —
the total volume ``sum(max(new - old, 0))`` is the information-theoretic
minimum, and surpluses are matched to deficits greedily in processor
order so the move list (and therefore the modelled cost) is a pure,
deterministic function of the two allocations.

The cost model reuses the two-parameter links of
:class:`~repro.machines.comm.CommModel` when one is given; otherwise a
flat per-byte rate stands in, so a replan decision can still weigh
savings against volume without a full link matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..machines.comm import CommModel

__all__ = ["MigrationPlan", "Move", "apply_migration", "plan_migration"]

#: Bytes per double-precision element (matches the simulators).
_ELEMENT_BYTES = 8

#: Fallback transfer rate when no CommModel is given: 100 Mbit Ethernet.
_DEFAULT_BYTES_PER_S = 100e6 / 8.0


@dataclass(frozen=True)
class Move:
    """``elements`` elements travel from processor ``source`` to ``dest``."""

    source: int
    dest: int
    elements: int

    def __post_init__(self) -> None:
        if self.source < 0 or self.dest < 0 or self.source == self.dest:
            raise ConfigurationError(f"invalid move endpoints {self!r}")
        if self.elements <= 0:
            raise ConfigurationError(f"moves must carry elements, got {self!r}")


@dataclass(frozen=True)
class MigrationPlan:
    """An ordered, deterministic set of moves plus its modelled cost."""

    moves: tuple[Move, ...]
    cost_seconds: float

    @property
    def total_elements(self) -> int:
        """Total volume moved — the minimum for the allocation change."""
        return sum(m.elements for m in self.moves)

    @property
    def empty(self) -> bool:
        return not self.moves

    def __len__(self) -> int:
        return len(self.moves)


#: The do-nothing plan.
EMPTY_PLAN = MigrationPlan(moves=(), cost_seconds=0.0)


def plan_migration(
    old_allocation: Sequence[int],
    new_allocation: Sequence[int],
    *,
    comm: CommModel | None = None,
    element_bytes: int = _ELEMENT_BYTES,
) -> MigrationPlan:
    """The minimal element moves taking ``old_allocation`` to ``new_allocation``.

    Surplus processors (``old > new``) are matched to deficit processors
    (``new > old``) by ascending index with two cursors; each pairing
    moves ``min(surplus, deficit)`` elements.  The moved volume equals
    ``sum(max(new - old, 0))`` (no plan can move less) and at most
    ``p - 1`` messages are emitted.  The modelled cost charges each move
    over the corresponding :class:`~repro.machines.comm.CommModel` link
    (serialised or parallel per the model) or, without a model, the flat
    default Ethernet rate.
    """
    old = np.asarray(old_allocation, dtype=np.int64)
    new = np.asarray(new_allocation, dtype=np.int64)
    if old.shape != new.shape or old.ndim != 1:
        raise ConfigurationError(
            f"allocation shapes differ: {old.shape} vs {new.shape}"
        )
    if np.any(old < 0) or np.any(new < 0):
        raise ConfigurationError("allocations must be non-negative")
    if int(old.sum()) != int(new.sum()):
        raise ConfigurationError(
            f"allocations must conserve elements: {int(old.sum())} vs "
            f"{int(new.sum())}"
        )
    diff = new - old
    sources = [int(i) for i in np.nonzero(diff < 0)[0]]
    dests = [int(i) for i in np.nonzero(diff > 0)[0]]
    moves: list[Move] = []
    si = di = 0
    surplus = -int(diff[sources[si]]) if sources else 0
    deficit = int(diff[dests[di]]) if dests else 0
    while si < len(sources) and di < len(dests):
        amount = min(surplus, deficit)
        moves.append(Move(source=sources[si], dest=dests[di], elements=amount))
        surplus -= amount
        deficit -= amount
        if surplus == 0:
            si += 1
            if si < len(sources):
                surplus = -int(diff[sources[si]])
        if deficit == 0:
            di += 1
            if di < len(dests):
                deficit = int(diff[dests[di]])
    if comm is not None:
        cost = comm.message_set(
            [(m.source, m.dest, float(m.elements) * element_bytes) for m in moves]
        )
    else:
        volume = sum(m.elements for m in moves)
        cost = volume * element_bytes / _DEFAULT_BYTES_PER_S
    return MigrationPlan(moves=tuple(moves), cost_seconds=float(cost))


def apply_migration(
    allocation: Sequence[int], plan: MigrationPlan
) -> np.ndarray:
    """The allocation after executing a plan (pure; returns a new array)."""
    out = np.asarray(allocation, dtype=np.int64).copy()
    for m in plan.moves:
        if out[m.source] < m.elements:
            raise ConfigurationError(
                f"move {m!r} exceeds the {int(out[m.source])} elements held "
                f"by processor {m.source}"
            )
        out[m.source] -= m.elements
        out[m.dest] += m.elements
    return out

"""Adaptive simulated execution of the parallel LU factorisation.

LU factorisation has a natural observation grain — the elimination step —
so the adaptive variant needs no artificial time quantum: every step
yields one effective-speed observation per participating machine, judged
against the model bands by the :class:`~repro.adapt.detector.DriftDetector`.
On a confirmed drift (or a dropout) the distribution of the *remaining*
column blocks is rebuilt with
:func:`~repro.kernels.group_block.variable_group_block` over the
observed-speed-rescaled model; the rebuild is applied only when a dry run
of the remaining steps projects savings exceeding the modelled cost of
moving the reassigned column blocks.

With ``policy=DISABLED``, no background load and an empty fault script
the function delegates to :func:`~repro.simulate.lu_executor.simulate_lu`
verbatim — the static path's output is bit-identical to today's executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import obs
from ..core.band import SpeedBand
from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError, InfeasiblePartitionError
from ..kernels.group_block import GroupBlockDistribution, variable_group_block
from ..machines.comm import CommModel
from ..machines.dynamic import ou_load_trace
from ..simulate.events import LUStepRecord, SimulationTrace
from ..simulate.lu_executor import LUSimulation, simulate_lu
from .detector import DriftDetector
from .faults import FaultScript
from .replanner import AdaptivePolicy, scale_speed_function

__all__ = ["AdaptiveLUSimulation", "simulate_lu_adaptive"]

_ELEMENT_BYTES = 8

#: Default transfer rate pricing block moves when no CommModel is given.
_DEFAULT_BYTES_PER_S = 100e6 / 8.0

#: OU streams are generated in chunks of this many steps per machine.
_CHUNK = 256

#: Shared empty script so the hot disabled path allocates nothing.
_EMPTY_SCRIPT = FaultScript()


@dataclass
class AdaptiveLUSimulation:
    """Result of one adaptive (or statically degraded) LU run.

    ``owners_final`` is the block-to-processor map actually executed
    (diverging from the input distribution after replans or dropouts);
    ``base`` carries the plain
    :class:`~repro.simulate.lu_executor.LUSimulation` when the run took
    the bit-identical delegation path.
    """

    n: int
    b: int
    total_seconds: float
    comm_seconds: float
    stall_seconds: float
    drifts: int
    replans: int
    migrated_blocks: int
    dropouts_survived: int
    owners_final: np.ndarray
    trace: SimulationTrace
    events: list[str] = field(default_factory=list)
    base: LUSimulation | None = None

    @property
    def makespan(self) -> float:
        return self.total_seconds

    @property
    def steps(self) -> int:
        return len(self.trace)


def _speed_at(sf: SpeedFunction, x: float) -> float:
    s = float(sf.speed(min(x, sf.max_size)))
    if s <= 0:
        raise ConfigurationError(f"non-positive speed at problem size {x:g}")
    return s


def _counts_from(owners: np.ndarray, p: int, start: int) -> np.ndarray:
    return np.bincount(owners[start:], minlength=p).astype(np.int64)


def _project_remaining(
    owners: np.ndarray,
    start: int,
    n: int,
    b: int,
    speed_functions: Sequence[SpeedFunction],
    alive: np.ndarray,
) -> float:
    """Dry-run the remaining steps at the given (effective) speeds."""
    p = len(speed_functions)
    total = 0.0
    num_blocks = owners.size
    for k in range(start, num_blocks):
        rem = n - k * b
        width = min(b, rem)
        owner = int(owners[k])
        if not alive[owner]:
            return float("inf")
        panel_flops = float(width) ** 2 * (float(rem) - float(width) / 3.0)
        total += panel_flops / (
            1e6 * _speed_at(speed_functions[owner], float(rem) * width)
        )
        counts = _counts_from(owners, p, k + 1)
        trailing_rows = rem - width
        if trailing_rows > 0:
            worst = 0.0
            for i in range(p):
                cols = float(counts[i]) * b
                if cols == 0:
                    continue
                flops = 2.0 * trailing_rows * width * cols
                x = float(rem) * cols
                worst = max(
                    worst, flops / (1e6 * _speed_at(speed_functions[i], x))
                )
            total += worst
    return total


def _move_cost(
    old_owners: np.ndarray,
    new_owners: np.ndarray,
    start: int,
    n: int,
    b: int,
    comm: CommModel | None,
) -> tuple[int, float]:
    """Blocks changing owner from ``start`` on, and the transfer cost.

    Each moved block column carries its remaining ``rem x width`` panel.
    """
    moved = 0
    messages: list[tuple[int, int, float]] = []
    volume = 0.0
    for k in range(start, old_owners.size):
        if old_owners[k] == new_owners[k]:
            continue
        moved += 1
        rem = n - k * b
        width = min(b, rem)
        nbytes = float(rem) * width * _ELEMENT_BYTES
        volume += nbytes
        messages.append((int(old_owners[k]), int(new_owners[k]), nbytes))
    if comm is not None:
        cost = comm.message_set(messages)
    else:
        cost = volume / _DEFAULT_BYTES_PER_S
    return moved, float(cost)


class _StepLoads:
    """Chunked per-machine OU load samples, one per elimination step."""

    def __init__(self, p: int, seed: int, mean: float, sigma: float, tau: float):
        self._active = mean > 0 or sigma > 0
        self._mean, self._sigma, self._tau = mean, sigma, tau
        self._rngs = [np.random.default_rng([int(seed), 104729, i]) for i in range(p)]
        self._chunks: list[np.ndarray] = [np.zeros(0) for _ in range(p)]
        self._offset = [0] * p

    def load(self, machine: int, step: int) -> float:
        if not self._active:
            return 0.0
        chunk = self._chunks[machine]
        while step >= self._offset[machine] + chunk.size:
            self._offset[machine] += chunk.size
            chunk = ou_load_trace(
                self._rngs[machine], _CHUNK, 1.0,
                mean=self._mean, sigma=self._sigma, tau=self._tau,
            )
            self._chunks[machine] = chunk
        return float(chunk[step - self._offset[machine]])


def simulate_lu_adaptive(
    dist: GroupBlockDistribution,
    truth_speed_functions: Sequence[SpeedFunction],
    *,
    model_speed_functions: Sequence[SpeedFunction] | None = None,
    bands: Sequence[SpeedBand] | None = None,
    policy: AdaptivePolicy | None = None,
    script: FaultScript | None = None,
    seed: int = 0,
    load_mean: float = 0.0,
    load_sigma: float = 0.0,
    load_tau: float = 8.0,
    comm: CommModel | None = None,
    keep_trace: bool = True,
) -> AdaptiveLUSimulation:
    """Simulate the parallel LU factorisation under faults and drifting load.

    Parameters mirror :func:`~repro.simulate.lu_executor.simulate_lu`,
    plus the adaptive environment: ``model_speed_functions`` (the model
    the distribution was built from; drift is judged against it),
    ``policy``, a :class:`~repro.adapt.faults.FaultScript` whose event
    times are in simulated seconds, the seeded per-machine OU background
    load (``load_tau`` in *steps*), and optional ``bands`` overriding the
    default ``policy.band_width`` envelopes.
    """
    policy = policy if policy is not None else AdaptivePolicy()
    script = script if script is not None else _EMPTY_SCRIPT
    p = len(truth_speed_functions)
    if model_speed_functions is not None and len(model_speed_functions) != p:
        raise ConfigurationError(
            f"got {len(model_speed_functions)} model functions for {p} processors"
        )
    clean = len(script) == 0 and load_mean == 0.0 and load_sigma == 0.0
    if not policy.enabled and clean:
        base = simulate_lu(
            dist, truth_speed_functions, comm=comm, keep_trace=keep_trace
        )
        return AdaptiveLUSimulation(
            n=base.n, b=base.b,
            total_seconds=base.total_seconds,
            comm_seconds=base.comm_seconds,
            stall_seconds=0.0,
            drifts=0, replans=0, migrated_blocks=0, dropouts_survived=0,
            owners_final=dist.block_owners,
            trace=base.trace,
            base=base,
        )

    model = (
        tuple(model_speed_functions)
        if model_speed_functions is not None
        else tuple(truth_speed_functions)
    )
    n, b = dist.n, dist.b
    owners = dist.block_owners.copy()
    num_blocks = owners.size
    if owners.size and int(owners.max()) >= p:
        raise ConfigurationError(
            f"distribution references processor {int(owners.max())} but only "
            f"{p} speed functions were given"
        )
    detector = DriftDetector(
        bands if bands is not None else model,
        slack=policy.slack,
        patience=policy.patience,
        smoothing=policy.smoothing,
        default_width=policy.band_width,
    )
    loads = _StepLoads(p, seed, load_mean, load_sigma, load_tau)
    dropouts = list(script.dropouts())
    shifts = list(script.load_shifts())

    shift_factor = np.ones(p, dtype=float)
    size_shifts: list[list] = [[] for _ in range(p)]  # band-shape shifts
    alive = np.ones(p, dtype=bool)
    trace = SimulationTrace()
    events: list[str] = []
    total = 0.0
    comm_total = 0.0
    stall_total = 0.0
    replans = 0
    migrated_blocks = 0
    dropouts_survived = 0
    cooldown_until_step = 0

    def effective(i: int, step: int, size: float) -> float:
        """Multiplier on machine ``i``'s truth speed at this step/size."""
        factor = float(shift_factor[i])
        for ev in size_shifts[i]:
            factor *= ev.factor_at(size)
        return (1.0 - loads.load(i, step)) * factor

    def scaled_model(factors: np.ndarray) -> list[SpeedFunction]:
        return [
            scale_speed_function(sf, max(float(f), 1e-9))
            for sf, f in zip(model, factors)
        ]

    def rebuild(start: int, factors: np.ndarray, reason: str) -> None:
        """Rebuild the remaining blocks' owners; apply if it pays off."""
        nonlocal owners, replans, migrated_blocks, stall_total, total
        nonlocal cooldown_until_step
        remaining_blocks = num_blocks - start
        if remaining_blocks <= 0:
            return
        rem_cols = n - start * b
        survivors = [i for i in range(p) if alive[i]]
        if not survivors:
            raise InfeasiblePartitionError(
                "every machine has dropped out with blocks remaining"
            )
        observed = scaled_model(factors)
        forced = "dropout" in reason
        if policy.enabled:
            sub = variable_group_block(
                rem_cols, b, [observed[i] for i in survivors]
            )
            new_owners = owners.copy()
            new_owners[start:] = np.asarray(
                [survivors[j] for j in sub.block_owners], dtype=np.int64
            )
        else:
            # Static failover: hand every dead machine's remaining blocks
            # to the survivor the model calls fastest, leave the rest.
            ref = max(float(rem_cols) * b, 1.0)
            best = max(survivors, key=lambda j: _speed_at(model[j], ref))
            new_owners = owners.copy()
            mask = ~alive[new_owners[start:]]
            new_owners[start:][mask] = best
        moved, cost = _move_cost(owners, new_owners, start, n, b, comm)
        if not forced:
            # Drift-triggered: apply only when the projected savings of a
            # dry run at the observed speeds beat the migration cost.
            keep = _project_remaining(owners, start, n, b, observed, alive)
            switch = _project_remaining(new_owners, start, n, b, observed, alive)
            savings = keep - switch
            if moved == 0 or savings <= policy.min_savings_factor * cost:
                events.append(
                    f"step {start}: {reason}; rebuild not applied "
                    f"(savings {savings:.3g}s, cost {cost:.3g}s)"
                )
                return
            if replans >= policy.max_replans:
                events.append(f"step {start}: {reason}; replan budget exhausted")
                return
        owners = new_owners
        replans += 1
        migrated_blocks += moved
        stall_total += cost
        total += cost
        cooldown_until_step = start + policy.cooldown_steps
        if obs.is_enabled():
            obs.record_adapt(replans=1)
        events.append(
            f"step {start}: {reason}; rebuilt remaining {remaining_blocks} "
            f"blocks, moved {moved} ({cost:.4g}s migration)"
        )

    telemetry = obs.is_enabled()
    with obs.span("adapt.lu", n=n, b=b, p=p, steps=num_blocks):
        for k in range(num_blocks):
            t = total
            # -- scripted permanent load shifts ----------------------------
            while shifts and shifts[0].at_time <= t:
                ev = shifts.pop(0)
                if ev.machine < p:
                    if ev.above_size > 0.0:
                        # Band-shape shift: only sizes >= above_size slow.
                        size_shifts[ev.machine].append(ev)
                        events.append(
                            f"step {k}: load shift x{ev.factor:g} on machine "
                            f"{ev.machine} above size {ev.above_size:g}"
                        )
                    else:
                        shift_factor[ev.machine] *= ev.factor
                        events.append(
                            f"step {k}: load shift x{ev.factor:g} on machine "
                            f"{ev.machine}"
                        )
            # -- scripted dropouts -----------------------------------------
            dropped = []
            while dropouts and dropouts[0].at_time <= t:
                ev = dropouts.pop(0)
                if ev.machine < p and alive[ev.machine]:
                    alive[ev.machine] = False
                    dropped.append(ev.machine)
            if dropped:
                owned_ahead = int(np.isin(owners[k:], dropped).sum())
                events.append(
                    f"step {k}: machine(s) {dropped} dropped out "
                    f"({owned_ahead} remaining blocks orphaned)"
                )
                if owned_ahead:
                    rebuild(k, detector.factors(), f"dropout of {dropped}")
                    dropouts_survived += len(dropped)
                    if obs.is_enabled():
                        obs.record_adapt(dropouts=len(dropped))
            # -- one elimination step --------------------------------------
            rem = n - k * b
            width = min(b, rem)
            owner = int(owners[k])
            if not alive[owner]:
                raise InfeasiblePartitionError(
                    f"block {k} owned by dead machine {owner} after recovery"
                )
            eff_owner = effective(owner, k, float(rem) * width)
            if eff_owner <= 0:
                raise ConfigurationError(
                    f"machine {owner} has non-positive effective speed"
                )
            panel_flops = float(width) ** 2 * (float(rem) - float(width) / 3.0)
            panel_speed = (
                _speed_at(truth_speed_functions[owner], float(rem) * width)
                * eff_owner
            )
            panel_s = panel_flops / (1e6 * panel_speed)
            comm_s = 0.0
            if comm is not None and p > 1:
                comm_s = comm.broadcast(owner, float(rem) * width * _ELEMENT_BYTES)
            counts = _counts_from(owners, p, k + 1)
            trailing_rows = rem - width
            updates = np.zeros(p, dtype=float)
            drift_event = None
            if trailing_rows > 0:
                for i in range(p):
                    cols = float(counts[i]) * b
                    if cols == 0 or not alive[i]:
                        continue
                    x = float(rem) * cols
                    eff = effective(i, k, x)
                    speed = _speed_at(truth_speed_functions[i], x) * eff
                    flops = 2.0 * trailing_rows * width * cols
                    updates[i] = flops / (1e6 * speed)
                    if policy.enabled and k >= cooldown_until_step:
                        ev = detector.observe(i, x, speed, time=total)
                        if ev is not None and drift_event is None:
                            drift_event = ev
            update_s = float(updates.max()) if p else 0.0
            total += panel_s + comm_s + update_s
            comm_total += comm_s
            if keep_trace:
                trace.append(
                    LUStepRecord(
                        step=k,
                        remaining=rem,
                        owner=owner,
                        panel_seconds=panel_s,
                        comm_seconds=comm_s,
                        update_seconds=update_s,
                        update_per_processor=tuple(float(u) for u in updates),
                    )
                )
            if telemetry:
                obs.record(
                    "adapt.lu.step",
                    panel_s + comm_s + update_s,
                    attrs={"step": k, "owner": owner, "remaining": rem},
                )
            # -- drift-triggered rebuild of the remaining blocks -----------
            if drift_event is not None and k + 1 < num_blocks:
                rebuild(
                    k + 1,
                    detector.factors(),
                    f"drift on machine {drift_event.machine} "
                    f"(factor {drift_event.factor:.3f})",
                )
                detector.reset_streaks()
    if telemetry:
        reg = obs.get_registry()
        reg.counter("adapt.lu.calls").inc()
        reg.counter("adapt.lu.steps.total").inc(num_blocks)
    return AdaptiveLUSimulation(
        n=n, b=b,
        total_seconds=total,
        comm_seconds=comm_total,
        stall_seconds=stall_total,
        drifts=detector.drifts,
        replans=replans,
        migrated_blocks=migrated_blocks,
        dropouts_survived=dropouts_survived,
        owners_final=owners,
        trace=trace,
        events=events,
    )

"""Deterministic fault and load-scenario scripts.

The adaptive layer is exercised against *scripted* scenarios: every
dropout, communication fault and permanent load shift is declared up
front, so a run is a pure function of ``(plan, script, seed)`` and the
replanning determinism tests can assert bit-identical migration plans
across repeated runs.

Three event kinds cover the failure modes of section 1 and the related
fault-tolerance literature:

* :class:`Dropout` — a machine permanently disappears at a given
  simulated time (worker crash, network partition);
* :class:`LoadShift` — a machine's effective speed is permanently
  multiplied by a factor at a given time (the paper's "permanently
  shifted band": a new resident workload);
* :class:`CommFault` — the next ``failures`` dispatch attempts to a
  machine fail (transient network errors exercised by the runtime's
  retry path).

:class:`FaultScript` bundles events; :class:`FaultInjector` is its
mutable per-run cursor used by the emulated-cluster runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..exceptions import ConfigurationError

__all__ = [
    "CommFault",
    "Dropout",
    "FaultInjector",
    "FaultScript",
    "InjectedCommError",
    "LoadShift",
]


class InjectedCommError(RuntimeError):
    """A scripted communication fault raised at dispatch time."""


@dataclass(frozen=True)
class Dropout:
    """Machine ``machine`` dies permanently at simulated time ``at_time``."""

    machine: int
    at_time: float = 0.0

    def __post_init__(self) -> None:
        if self.machine < 0 or self.at_time < 0:
            raise ConfigurationError(f"invalid dropout event {self!r}")


@dataclass(frozen=True)
class LoadShift:
    """Machine ``machine``'s speed is multiplied by ``factor`` from ``at_time`` on.

    ``factor`` in ``(0, 1)`` models a new permanent background workload
    (the paper's shifted band); ``factor > 1`` models load *removal*.

    ``above_size`` makes the shift a **band-shape** drift: the factor
    applies only to problem sizes ``>= above_size`` (a resident workload
    that evicts the large-problem working set — the paging region moves
    — while cache-resident sizes are untouched).  The default ``0.0``
    keeps the classic whole-band rescale, which an EWMA correction
    factor can capture; a positive ``above_size`` cannot be expressed as
    a rescale and requires the online refitter.
    """

    machine: int
    at_time: float
    factor: float
    above_size: float = 0.0

    def __post_init__(self) -> None:
        if self.machine < 0 or self.at_time < 0 or self.factor <= 0:
            raise ConfigurationError(f"invalid load-shift event {self!r}")
        if self.above_size < 0:
            raise ConfigurationError(f"invalid load-shift event {self!r}")

    def factor_at(self, size: float) -> float:
        """The effective speed factor at problem size ``size``."""
        return self.factor if size >= self.above_size else 1.0


@dataclass(frozen=True)
class CommFault:
    """The next ``failures`` dispatches to ``machine`` fail, from ``at_dispatch``.

    ``at_dispatch`` counts dispatch attempts to that machine (0-based),
    so a script is deterministic regardless of wall-clock timing.
    """

    machine: int
    failures: int = 1
    at_dispatch: int = 0

    def __post_init__(self) -> None:
        if self.machine < 0 or self.failures < 1 or self.at_dispatch < 0:
            raise ConfigurationError(f"invalid comm-fault event {self!r}")


@dataclass(frozen=True)
class FaultScript:
    """An immutable, ordered collection of scripted events."""

    events: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for e in self.events:
            if not isinstance(e, (Dropout, LoadShift, CommFault)):
                raise ConfigurationError(f"unknown fault event {e!r}")

    def dropouts(self) -> list[Dropout]:
        """Dropout events, ordered by time."""
        out = [e for e in self.events if isinstance(e, Dropout)]
        return sorted(out, key=lambda e: (e.at_time, e.machine))

    def load_shifts(self) -> list[LoadShift]:
        """Load-shift events, ordered by time."""
        out = [e for e in self.events if isinstance(e, LoadShift)]
        return sorted(out, key=lambda e: (e.at_time, e.machine))

    def comm_faults(self) -> list[CommFault]:
        """Communication faults in declaration order."""
        return [e for e in self.events if isinstance(e, CommFault)]

    def __iter__(self) -> Iterator:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class FaultInjector:
    """Mutable dispatch-time cursor over a script's communication faults.

    The runtime consults :meth:`check_dispatch` immediately before every
    task dispatch; a scripted fault surfaces as
    :class:`InjectedCommError`, which the retry machinery treats exactly
    like a real transport error.  Machines listed in :class:`Dropout`
    events (with any ``at_time``) fail *every* dispatch from their
    ``at_dispatch``-th onward — for the runtime, a dropout is simply a
    comm fault that never heals.
    """

    def __init__(self, script: FaultScript | Sequence | None = None):
        if script is None:
            script = FaultScript()
        elif not isinstance(script, FaultScript):
            script = FaultScript(tuple(script))
        self._script = script
        self._dispatches: dict[int, int] = {}
        self._dead: set[int] = set()

    @property
    def script(self) -> FaultScript:
        return self._script

    @property
    def dead_machines(self) -> frozenset[int]:
        """Machines that have permanently dropped out so far."""
        return frozenset(self._dead)

    def check_dispatch(self, machine: int) -> None:
        """Raise :class:`InjectedCommError` if this dispatch is scripted to fail."""
        attempt = self._dispatches.get(machine, 0)
        self._dispatches[machine] = attempt + 1
        if machine in self._dead:
            raise InjectedCommError(f"machine {machine} has dropped out")
        for e in self._script.comm_faults():
            if e.machine == machine and e.at_dispatch <= attempt < e.at_dispatch + e.failures:
                raise InjectedCommError(
                    f"scripted comm fault on machine {machine} "
                    f"(dispatch {attempt})"
                )
        for d in self._script.dropouts():
            if d.machine == machine:
                self._dead.add(machine)
                raise InjectedCommError(f"machine {machine} has dropped out")

    def dispatches(self, machine: int) -> int:
        """Dispatch attempts seen for a machine so far."""
        return self._dispatches.get(machine, 0)

"""Adaptive simulated execution of the striped matrix multiplication.

The static simulator (:func:`~repro.simulate.executor.simulate_striped_matmul`)
charges each stripe its whole compute time in one step, so nothing can be
observed — or corrected — mid-run.  This module re-executes the same
multiplication in small time quanta (``dt`` seconds) against a *live*
environment: per-machine Ornstein-Uhlenbeck background load, scripted
permanent load shifts, and scripted dropouts.  Each quantum yields an
effective-speed observation that feeds the
:class:`~repro.adapt.detector.DriftDetector`; confirmed drifts hand the
remaining work to the :class:`~repro.adapt.replanner.Replanner`, whose
accepted migrations stall the machines for the modelled transfer time and
then continue under the new allocation.

With ``policy=DISABLED``, no background load, and an empty fault script
the function delegates to the static simulator verbatim — the disabled
path adds nothing but that check, and its output is bit-identical to
today's executor (asserted by the test-suite and the perf guard).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import obs
from ..core.band import SpeedBand
from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError, InfeasiblePartitionError
from ..kernels.flops import mm_slice_flops
from ..kernels.striped import elements_from_rows, rows_from_elements
from ..machines.comm import CommModel
from ..machines.dynamic import ou_load_trace
from ..simulate.executor import MMSimulation, simulate_striped_matmul
from .detector import DriftDetector
from .faults import Dropout, FaultScript, LoadShift
from .replanner import DISABLED, AdaptivePolicy, Replanner

__all__ = ["AdaptiveMMSimulation", "simulate_striped_matmul_adaptive"]

_ELEMENT_BYTES = 8

#: Shared empty script so the hot disabled path allocates nothing.
_EMPTY_SCRIPT = FaultScript()

#: OU streams are generated in chunks of this many quanta per machine.
_CHUNK = 512


@dataclass
class AdaptiveMMSimulation:
    """Result of one adaptive (or statically degraded) striped run.

    ``finish_seconds`` holds each machine's completion time (0 for
    machines that never had work, ``inf`` never occurs — dropouts hand
    their work over before the run can end).  ``base`` carries the plain
    :class:`~repro.simulate.executor.MMSimulation` when the run took the
    bit-identical delegation path.
    """

    n: int
    initial_elements: np.ndarray
    final_elements: np.ndarray
    finish_seconds: np.ndarray
    comm_seconds: float
    stall_seconds: float
    drifts: int
    replans: int
    migrated_elements: int
    dropouts_survived: int
    events: list[str] = field(default_factory=list)
    base: MMSimulation | None = None

    @property
    def makespan(self) -> float:
        if self.base is not None:
            return self.base.makespan
        compute = float(self.finish_seconds.max()) if self.finish_seconds.size else 0.0
        return compute + self.comm_seconds

    @property
    def p(self) -> int:
        return int(self.initial_elements.size)


def _default_dt(
    n: int, elements: np.ndarray, sfs: Sequence[SpeedFunction]
) -> float:
    """A quantum resolving the run into roughly 200 observation rounds."""
    worst = 0.0
    for sf, x in zip(sfs, elements):
        if x <= 0:
            continue
        s = float(sf.speed(min(float(x), sf.max_size)))
        if s > 0:
            worst = max(worst, mm_slice_flops(float(x), n) / (1e6 * s))
    return max(worst / 200.0, 1e-9)


class _LoadStreams:
    """Chunked, per-machine OU load traces with a deterministic seed tree."""

    def __init__(
        self, p: int, seed: int, dt: float,
        mean: float, sigma: float, tau: float,
    ):
        self._active = mean > 0 or sigma > 0
        self._dt = dt
        self._mean, self._sigma, self._tau = mean, sigma, tau
        self._rngs = [np.random.default_rng([int(seed), 7919, i]) for i in range(p)]
        self._chunks: list[np.ndarray] = [np.zeros(0) for _ in range(p)]
        self._offset = [0] * p

    def load(self, machine: int, step: int) -> float:
        if not self._active:
            return 0.0
        chunk = self._chunks[machine]
        while step >= self._offset[machine] + chunk.size:
            self._offset[machine] += chunk.size
            chunk = ou_load_trace(
                self._rngs[machine], _CHUNK, self._dt,
                mean=self._mean, sigma=self._sigma, tau=self._tau,
            )
            self._chunks[machine] = chunk
        return float(chunk[step - self._offset[machine]])


def simulate_striped_matmul_adaptive(
    n: int,
    allocation: Sequence[int],
    truth_speed_functions: Sequence[SpeedFunction],
    *,
    model_speed_functions: Sequence[SpeedFunction] | None = None,
    bands: Sequence[SpeedBand] | None = None,
    policy: AdaptivePolicy | None = None,
    script: FaultScript | None = None,
    seed: int = 0,
    load_mean: float = 0.0,
    load_sigma: float = 0.0,
    load_tau: float = 5.0,
    dt: float | None = None,
    comm: CommModel | None = None,
    max_steps: int = 10_000_000,
) -> AdaptiveMMSimulation:
    """Simulate the striped multiplication under faults and drifting load.

    Parameters
    ----------
    n, allocation, truth_speed_functions, comm:
        As in :func:`~repro.simulate.executor.simulate_striped_matmul`;
        the truth functions drive what *actually* happens each quantum.
    model_speed_functions:
        The (possibly wrong) model the plan was derived from — drift is
        judged against it, and replans rescale it by observed factors.
        Defaults to the truth functions.
    bands:
        Explicit detection envelopes; defaults to bands of relative
        width ``policy.band_width`` around the model functions.
    policy:
        :class:`~repro.adapt.replanner.AdaptivePolicy`; pass
        :data:`~repro.adapt.replanner.DISABLED` for the static baseline
        (faults still happen; recovery degrades to naive failover onto
        the fastest survivor, with no functional replanning).
    script:
        Scripted :class:`~repro.adapt.faults.Dropout` /
        :class:`~repro.adapt.faults.LoadShift` events.
    seed, load_mean, load_sigma, load_tau:
        The per-machine OU background-load environment (deterministic in
        the seed; ``load_sigma = load_mean = 0`` disables it).
    dt:
        Observation quantum in seconds (default: ~1/200 of the modelled
        makespan).
    """
    policy = policy if policy is not None else AdaptivePolicy()
    script = script if script is not None else _EMPTY_SCRIPT
    p = len(truth_speed_functions)
    if len(allocation) != p:
        raise ConfigurationError(
            f"allocation has {len(allocation)} entries for {p} processors"
        )
    if model_speed_functions is not None and len(model_speed_functions) != p:
        raise ConfigurationError(
            f"got {len(model_speed_functions)} model functions for {p} processors"
        )
    clean = (
        len(script) == 0 and load_mean == 0.0 and load_sigma == 0.0
    )
    if not policy.enabled and clean:
        base = simulate_striped_matmul(
            n, allocation, truth_speed_functions, comm=comm
        )
        # The arrays alias the base result: both are immutable outputs,
        # and the delegation path must stay overhead-free.
        return AdaptiveMMSimulation(
            n=n,
            initial_elements=base.elements,
            final_elements=base.elements,
            finish_seconds=base.compute_seconds,
            comm_seconds=base.comm_seconds,
            stall_seconds=0.0,
            drifts=0, replans=0, migrated_elements=0, dropouts_survived=0,
            base=base,
        )

    model = (
        tuple(model_speed_functions)
        if model_speed_functions is not None
        else tuple(truth_speed_functions)
    )

    rows = rows_from_elements(allocation, n)
    elements = elements_from_rows(rows, n)
    flops_per_element = mm_slice_flops(1.0, n)
    if dt is None:
        dt = _default_dt(n, elements, truth_speed_functions)
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive, got {dt!r}")

    detector = DriftDetector(
        bands if bands is not None else model,
        slack=policy.slack,
        patience=policy.patience,
        smoothing=policy.smoothing,
        default_width=policy.band_width,
    )
    replanner = Replanner(
        model, policy=policy, comm=comm,
        work=lambda x: mm_slice_flops(x, n),
    )
    streams = _LoadStreams(p, seed, dt, load_mean, load_sigma, load_tau)
    dropouts = list(script.dropouts())
    shifts = list(script.load_shifts())

    held = elements.astype(np.int64)          # data each machine holds
    remaining = held.astype(float)            # elements left to compute
    shift_factor = np.ones(p, dtype=float)    # permanent scripted load shifts
    size_shifts: list[list] = [[] for _ in range(p)]  # band-shape shifts
    alive = np.ones(p, dtype=bool)
    finish = np.zeros(p, dtype=float)
    stall_until = 0.0
    stall_total = 0.0
    cooldown_until_step = 0
    dropouts_survived = 0
    migrated_total = 0
    events: list[str] = []

    def rounded_remaining() -> np.ndarray:
        return np.ceil(remaining).astype(np.int64)

    def apply_allocation(new_alloc: np.ndarray) -> None:
        nonlocal held
        for i in range(p):
            remaining[i] = float(new_alloc[i]) if alive[i] else 0.0
        held = np.where(alive, new_alloc, 0).astype(np.int64)

    step = 0
    while alive.any() and np.any(remaining[alive] > 1e-9):
        if step >= max_steps:
            raise ConfigurationError(
                f"adaptive simulation exceeded {max_steps} quanta; "
                "check dt against the problem size"
            )
        t = step * dt
        # -- scripted permanent load shifts --------------------------------
        while shifts and shifts[0].at_time <= t:
            ev = shifts.pop(0)
            if ev.machine < p:
                if ev.above_size > 0.0:
                    # A band-*shape* shift: only sizes >= above_size slow
                    # down, which no scalar factor can express.
                    size_shifts[ev.machine].append(ev)
                    events.append(
                        f"t={t:.4g}: load shift x{ev.factor:g} on machine "
                        f"{ev.machine} above size {ev.above_size:g}"
                    )
                else:
                    shift_factor[ev.machine] *= ev.factor
                    events.append(
                        f"t={t:.4g}: load shift x{ev.factor:g} on machine {ev.machine}"
                    )
        # -- scripted dropouts ---------------------------------------------
        while dropouts and dropouts[0].at_time <= t:
            ev = dropouts.pop(0)
            i = ev.machine
            if i >= p or not alive[i]:
                continue
            alive[i] = False
            finish[i] = t
            orphaned = rounded_remaining()
            survivors = np.nonzero(alive)[0]
            if orphaned[i] > 0 and survivors.size == 0:
                raise InfeasiblePartitionError(
                    "every machine has dropped out with work remaining"
                )
            if orphaned[i] > 0:
                if policy.enabled:
                    decision = replanner.recover_dropout(
                        orphaned, [i], factors=detector.factors(),
                    )
                    new_alloc = decision.allocation
                    cost = decision.migration.cost_seconds
                    moved = decision.migration.total_elements
                else:
                    # Static failover: dump everything on the machine the
                    # *model* calls fastest, no functional replanning.
                    new_alloc = orphaned.copy()
                    best = max(
                        survivors,
                        key=lambda j: float(
                            model[j].speed(min(float(max(held[j], 1)), model[j].max_size))
                        ),
                    )
                    new_alloc[best] += int(new_alloc[i])
                    new_alloc[i] = 0
                    moved = int(orphaned[i])
                    cost = moved * _ELEMENT_BYTES / (100e6 / 8.0)
                    if obs.is_enabled():
                        obs.record_adapt(
                            dropouts=1, migrated_elements=moved
                        )
                apply_allocation(new_alloc)
                stall_until = max(stall_until, t) + cost
                stall_total += cost
                dropouts_survived += 1
                migrated_total += moved
                events.append(
                    f"t={t:.4g}: machine {i} dropped out; {moved} elements "
                    f"redistributed ({cost:.4g}s migration)"
                )
            else:
                remaining[i] = 0.0
        if not alive.any():
            break
        # -- one quantum of computation ------------------------------------
        drift_event = None
        if t >= stall_until:
            for i in range(p):
                if not alive[i] or remaining[i] <= 1e-9:
                    continue
                size = float(max(held[i], 1))
                sf = truth_speed_functions[i]
                base_speed = float(sf.speed(min(size, sf.max_size)))
                lam = streams.load(i, step)
                factor = float(shift_factor[i])
                for ev in size_shifts[i]:
                    factor *= ev.factor_at(size)
                observed = base_speed * (1.0 - lam) * factor
                if observed <= 0:
                    continue
                rate = observed * 1e6 / flops_per_element  # elements/second
                if policy.enabled and step >= cooldown_until_step:
                    ev = detector.observe(i, size, observed, time=t)
                    if ev is not None and drift_event is None:
                        drift_event = ev
                if rate * dt >= remaining[i]:
                    finish[i] = t + remaining[i] / rate
                    remaining[i] = 0.0
                else:
                    remaining[i] -= rate * dt
        # -- drift-triggered replanning ------------------------------------
        if drift_event is not None and np.any(remaining[alive] > 1e-9):
            current = rounded_remaining()
            current[~alive] = 0
            decision = replanner.consider(current, detector.factors())
            if decision.apply:
                apply_allocation(decision.allocation)
                cost = decision.migration.cost_seconds
                stall_until = max(stall_until, (step + 1) * dt) + cost
                stall_total += cost
                cooldown_until_step = step + 1 + policy.cooldown_steps
                migrated_total += decision.migration.total_elements
                detector.reset_streaks()
                events.append(
                    f"t={drift_event.time:.4g}: drift on machine "
                    f"{drift_event.machine} (factor {drift_event.factor:.3f}); "
                    f"replanned, moved {decision.migration.total_elements} "
                    f"elements ({cost:.4g}s migration)"
                )
            else:
                events.append(
                    f"t={drift_event.time:.4g}: drift on machine "
                    f"{drift_event.machine} not acted on: {decision.reason}"
                )
        step += 1

    comm_s = 0.0
    if comm is not None:
        stripe_bytes = rows.astype(float) * n * _ELEMENT_BYTES
        comm_s = comm.allgather(stripe_bytes.tolist())
    if obs.is_enabled():
        compute_max = float(finish.max()) if p else 0.0
        obs.record(
            "adapt.mm",
            compute_max + comm_s,
            attrs={"n": n, "p": p, "replans": replanner.replans_applied},
        )
        obs.get_registry().counter("adapt.mm.calls").inc()
    return AdaptiveMMSimulation(
        n=n,
        initial_elements=elements,
        final_elements=held.copy(),
        finish_seconds=finish,
        comm_seconds=comm_s,
        stall_seconds=stall_total,
        drifts=detector.drifts,
        replans=replanner.replans_applied,
        migrated_elements=migrated_total,
        dropouts_survived=dropouts_survived,
        events=events,
    )

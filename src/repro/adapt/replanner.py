"""Replanning: rebuild the fleet from observed speeds and weigh a migration.

When the :class:`~repro.adapt.detector.DriftDetector` confirms that a
machine has left its performance band, the model the current plan was
derived from is wrong.  The :class:`Replanner` then

1. rescales every machine's model speed function by the detector's
   smoothed observed/predicted factor (exact knot scaling for piecewise
   representations, so the rescaled fleet stays packable);
2. asks a warm-started :class:`~repro.planner.Planner` for the optimal
   partition of the *remaining* work over the rescaled fleet;
3. derives the minimal :class:`~repro.adapt.migration.MigrationPlan` and
   applies the decision rule — **replan only when the projected makespan
   savings exceed the modelled migration cost** (scaled by
   ``AdaptivePolicy.min_savings_factor``).

Failure handling rides the same machinery: :meth:`Replanner.recover_dropout`
redistributes a dead processor's elements over the survivors with
:func:`~repro.core.bounded.partition_bounded` (bounds = each survivor's
residual memory), touching none of the data the survivors already hold.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..core.bounded import partition_bounded
from ..core.result import PartitionResult
from ..core.speed_function import (
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
    SpeedFunction,
)
from ..exceptions import ConfigurationError, InfeasiblePartitionError
from ..machines.comm import CommModel
from ..planner.fleet import Fleet
from ..planner.planner import Planner
from .migration import EMPTY_PLAN, MigrationPlan, plan_migration

__all__ = [
    "DISABLED",
    "AdaptivePolicy",
    "ReplanDecision",
    "Replanner",
    "scale_speed_function",
]


@dataclass(frozen=True)
class AdaptivePolicy:
    """Knobs of the adaptive execution layer, in one frozen bundle.

    Attributes
    ----------
    enabled:
        Master switch.  When false, executors take the static path:
        drift is never checked and replanning never happens (failure
        recovery still degrades gracefully, just without the functional
        model).
    slack / patience / smoothing / band_width:
        Forwarded to the :class:`~repro.adapt.detector.DriftDetector`.
    min_savings_factor:
        A replan is applied only when the projected makespan savings
        exceed ``min_savings_factor`` times the modelled migration cost.
        Raise it to make migration more reluctant; 0 migrates on any
        projected improvement.
    max_replans:
        Hard cap on applied replans per execution (runaway guard).
    cooldown_steps:
        Steps after an applied replan during which drift checks are
        suspended (the new plan needs time to show its behaviour).
    """

    enabled: bool = True
    slack: float = 0.05
    patience: int = 3
    smoothing: float = 0.5
    band_width: float = 0.10
    min_savings_factor: float = 1.0
    max_replans: int = 8
    cooldown_steps: int = 2

    def __post_init__(self) -> None:
        if self.slack < 0 or self.min_savings_factor < 0:
            raise ConfigurationError(f"invalid adaptive policy {self!r}")
        if self.patience < 1 or self.max_replans < 0 or self.cooldown_steps < 0:
            raise ConfigurationError(f"invalid adaptive policy {self!r}")
        if not (0 < self.smoothing <= 1) or not (0 <= self.band_width < 1):
            raise ConfigurationError(f"invalid adaptive policy {self!r}")


#: The static-execution policy: no drift detection, no replanning.
DISABLED = AdaptivePolicy(enabled=False)


@dataclass(frozen=True)
class ReplanDecision:
    """Outcome of one replan consideration.

    ``apply`` is the decision; ``projected_current`` / ``projected_new``
    are the modelled remaining makespans of keeping versus migrating
    (both evaluated under the *observed* speeds); ``migration`` carries
    the moves and their cost; ``allocation`` is the post-migration
    allocation when ``apply`` (otherwise ``None``).
    """

    apply: bool
    reason: str
    projected_current: float
    projected_new: float
    migration: MigrationPlan
    allocation: np.ndarray | None = None
    result: PartitionResult | None = None

    @property
    def savings(self) -> float:
        return self.projected_current - self.projected_new


def scale_speed_function(sf: SpeedFunction, factor: float) -> SpeedFunction:
    """``sf`` with every speed multiplied by ``factor``.

    Piecewise-linear and constant representations are rebuilt exactly
    (scaling preserves the single-intersection invariant), so a rescaled
    fleet packs and fingerprints like the original; opaque
    representations fall back to the generic
    :meth:`~repro.core.speed_function.SpeedFunction.scaled` wrapper.
    """
    if factor <= 0 or not math.isfinite(factor):
        raise ConfigurationError(f"scale factor must be positive finite, got {factor!r}")
    if factor == 1.0:
        return sf
    if type(sf) is PiecewiseLinearSpeedFunction:
        return PiecewiseLinearSpeedFunction(sf.knot_sizes, sf.knot_speeds * factor)
    if type(sf) is ConstantSpeedFunction:
        return ConstantSpeedFunction(sf.value * factor, sf.max_size)
    return sf.scaled(factor)


def _projected_finish(
    allocation: np.ndarray,
    speed_functions: Sequence[SpeedFunction],
    work: Callable[[float], float],
) -> float:
    """Remaining makespan of an allocation under the given speeds."""
    worst = 0.0
    for sf, x in zip(speed_functions, allocation):
        x = float(x)
        if x <= 0:
            continue
        speed = float(sf.speed(min(x, sf.max_size)))
        if speed <= 0:
            return float("inf")
        worst = max(worst, work(x) / (1e6 * speed))
    return worst


class Replanner:
    """Observed-speed replanning over a base model fleet.

    Parameters
    ----------
    speed_functions:
        The *model* speed functions the original plan was derived from.
    policy:
        The :class:`AdaptivePolicy` (defaults to an enabled policy).
    algorithm / mode / refine:
        Forwarded to the underlying :class:`~repro.planner.Planner`.
    comm:
        Optional link model pricing migrations; without one a flat
        Ethernet rate is assumed (see :mod:`repro.adapt.migration`).
    work:
        Maps an element count to the flops it represents (identity by
        default); executors pass their kernel's cost function so the
        savings-versus-cost comparison is in real seconds.
    """

    def __init__(
        self,
        speed_functions: Sequence[SpeedFunction],
        *,
        policy: AdaptivePolicy | None = None,
        algorithm: str = "bisection",
        mode: str = "tangent",
        refine: str = "greedy",
        comm: CommModel | None = None,
        work: Callable[[float], float] | None = None,
        max_fleets: int = 8,
    ):
        self._base = tuple(speed_functions)
        if not self._base:
            raise ConfigurationError("at least one speed function is required")
        self.policy = policy if policy is not None else AdaptivePolicy()
        self._algorithm = algorithm
        self._mode = mode
        self._refine = refine
        self._comm = comm
        self._work = work if work is not None else (lambda x: x)
        self._max_fleets = max(int(max_fleets), 1)
        #: The unit-factor fleet, packed once; every observed-speed regime
        #: derives from it through :meth:`Fleet.rescaled` (an O(p)
        #: scale-vector clone of the shared pack), so drift corrections
        #: never pay the O(p*m) repack again.
        self._base_fleet = Fleet(self._base, name="adapt")
        #: fleet-factor key -> warm-started Planner (LRU).
        self._planners: OrderedDict[tuple, Planner] = OrderedDict()
        self.replans_applied = 0
        self.replans_considered = 0
        self.refits_applied = 0

    @property
    def p(self) -> int:
        return len(self._base)

    # -- fleet management ----------------------------------------------
    @staticmethod
    def _factor_key(factors: Sequence[float] | None, p: int) -> tuple[float, ...]:
        if factors is None:
            return (1.0,) * p
        if len(factors) != p:
            raise ConfigurationError(
                f"got {len(factors)} factors for {p} processors"
            )
        # Rounding keeps the planner cache effective across the tiny EWMA
        # jitter between consecutive observations of the same regime.
        return tuple(round(float(f), 6) for f in factors)

    def scaled_speed_functions(
        self, factors: Sequence[float] | None = None
    ) -> tuple[SpeedFunction, ...]:
        key = self._factor_key(factors, self.p)
        return tuple(
            scale_speed_function(sf, f) for sf, f in zip(self._base, key)
        )

    def planner_for(self, factors: Sequence[float] | None = None) -> Planner:
        """The warm-started planner for one observed-speed regime (cached)."""
        key = self._factor_key(factors, self.p)
        planner = self._planners.get(key)
        if planner is None:
            if all(f == 1.0 for f in key):
                fleet = self._base_fleet
            else:
                fleet = self._base_fleet.rescaled(np.asarray(key, dtype=float))
            planner = Planner(
                fleet,
                algorithm=self._algorithm,
                mode=self._mode,
                refine=self._refine,
            )
            self._planners[key] = planner
            while len(self._planners) > self._max_fleets:
                self._planners.popitem(last=False)
        else:
            self._planners.move_to_end(key)
        return planner

    def plan(
        self, n: int, factors: Sequence[float] | None = None
    ) -> PartitionResult:
        """Optimal partition of ``n`` elements under the observed speeds."""
        return self.planner_for(factors).plan(n)

    def apply_refit(self, refit) -> bool:
        """Adopt an online band refit as the new base model.

        ``refit`` is a :class:`repro.model.FleetRefit` (duck-typed: any
        object with ``changed`` / ``shape_changed`` / ``functions`` /
        ``fleet``).  The refit is adopted only when the band **shape**
        drifted — a scale-only drift is already captured, cheaper, by
        the EWMA correction factors feeding :meth:`planner_for`, so
        swapping the base fleet (and dropping every warm planner) would
        cost more than it buys.  Returns whether the refit was applied.
        """
        if not getattr(refit, "changed", False):
            return False
        if not getattr(refit, "shape_changed", True):
            return False
        functions = tuple(refit.functions)
        if len(functions) != self.p:
            raise ConfigurationError(
                f"refit carries {len(functions)} functions for {self.p} processors"
            )
        self._base = functions
        self._base_fleet = refit.fleet
        self._planners.clear()
        self.refits_applied += 1
        return True

    # -- decisions ------------------------------------------------------
    def consider(
        self,
        current_allocation: Sequence[int],
        factors: Sequence[float],
        *,
        work: Callable[[float], float] | None = None,
    ) -> ReplanDecision:
        """Weigh migrating the remaining work against keeping the plan.

        ``current_allocation`` is the *remaining* element count per
        processor; ``factors`` the detector's smoothed observed/predicted
        speed ratios.  The new allocation comes from the warm-started
        planner over the rescaled fleet; the decision applies the
        savings-versus-migration-cost rule and, when positive, is counted
        on the ``adapt.replans`` / ``adapt.migrated.elements`` metrics.
        """
        self.replans_considered += 1
        work = work if work is not None else self._work
        old = np.asarray(current_allocation, dtype=np.int64)
        n_remaining = int(old.sum())
        scaled = self.scaled_speed_functions(factors)
        projected_current = _projected_finish(old, scaled, work)
        if n_remaining <= 0:
            return ReplanDecision(
                apply=False, reason="nothing left to distribute",
                projected_current=projected_current,
                projected_new=projected_current, migration=EMPTY_PLAN,
            )
        if self.replans_applied >= self.policy.max_replans:
            return ReplanDecision(
                apply=False, reason="replan budget exhausted",
                projected_current=projected_current,
                projected_new=projected_current, migration=EMPTY_PLAN,
            )
        result = self.plan(n_remaining, factors)
        migration = plan_migration(old, result.allocation, comm=self._comm)
        finish_new = _projected_finish(result.allocation, scaled, work)
        projected_new = finish_new + migration.cost_seconds
        # The rule of the module docstring: gross savings must exceed the
        # migration cost (scaled by the policy's reluctance factor).
        savings = projected_current - finish_new
        threshold = self.policy.min_savings_factor * migration.cost_seconds
        if migration.empty or savings <= threshold:
            reason = (
                "new plan identical" if migration.empty
                else f"savings {savings:.3g}s below threshold {threshold:.3g}s"
            )
            return ReplanDecision(
                apply=False, reason=reason,
                projected_current=projected_current,
                projected_new=projected_new,
                migration=migration, result=result,
            )
        self.replans_applied += 1
        if obs.is_enabled():
            obs.record_adapt(
                replans=1, migrated_elements=migration.total_elements
            )
        return ReplanDecision(
            apply=True,
            reason=f"projected savings {savings:.3g}s over migration cost",
            projected_current=projected_current,
            projected_new=projected_new,
            migration=migration,
            allocation=result.allocation.copy(),
            result=result,
        )

    def recover_dropout(
        self,
        current_allocation: Sequence[int],
        dead: Sequence[int],
        factors: Sequence[float] | None = None,
        *,
        work: Callable[[float], float] | None = None,
    ) -> ReplanDecision:
        """Redistribute dead processors' remaining elements over survivors.

        Survivors keep everything they already hold — only the dead
        processors' elements move, split over the survivors by
        :func:`~repro.core.bounded.partition_bounded` with each
        survivor's *residual* memory as its bound, the rescaled model
        evaluated at each survivor's new total size.  Raises
        :class:`~repro.exceptions.InfeasiblePartitionError` when the
        survivors cannot absorb the load.
        """
        work = work if work is not None else self._work
        old = np.asarray(current_allocation, dtype=np.int64)
        dead_set = sorted({int(d) for d in dead})
        for d in dead_set:
            if not (0 <= d < self.p):
                raise ConfigurationError(
                    f"no processor {d} in a {self.p}-processor replanner"
                )
        survivors = [i for i in range(self.p) if i not in dead_set]
        if not survivors:
            raise InfeasiblePartitionError("no survivors to redistribute over")
        scaled = self.scaled_speed_functions(factors)
        orphaned = int(old[dead_set].sum())
        new = old.copy()
        new[dead_set] = 0
        if orphaned > 0:
            # A survivor's speed function is shifted by what it already
            # holds: the extra elements land on top of its existing
            # stripe, so the bound is its residual capacity.
            survivor_sfs = [scaled[i] for i in survivors]
            bounds = [
                max(scaled[i].max_size - float(old[i]), 0.0) for i in survivors
            ]
            extra = partition_bounded(orphaned, survivor_sfs, bounds)
            for j, i in enumerate(survivors):
                new[i] += int(extra.allocation[j])
        migration = plan_migration(old, new, comm=self._comm)
        projected_current = float("inf")  # a dead processor never finishes
        projected_new = (
            _projected_finish(new, scaled, work) + migration.cost_seconds
        )
        self.replans_applied += 1
        if obs.is_enabled():
            obs.record_adapt(
                replans=1,
                dropouts=len(dead_set),
                migrated_elements=migration.total_elements,
            )
        return ReplanDecision(
            apply=True,
            reason=f"dropout of processor(s) {dead_set}",
            projected_current=projected_current,
            projected_new=projected_new,
            migration=migration,
            allocation=new,
        )

"""Retry with exponential backoff and timeouts for task dispatch.

The emulated-cluster runtime dispatches real work to worker processes;
transient failures (scripted comm faults, worker hiccups) are absorbed
by retrying with exponential backoff, and a hung worker is bounded by a
per-attempt timeout.  The policy is a frozen dataclass so fault
scenarios are reproducible, and the backoff schedule is deterministic
(no jitter) for the same reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from .. import obs
from ..exceptions import ConfigurationError

__all__ = ["RetryPolicy", "RetryExhaustedError", "call_with_retry"]

T = TypeVar("T")


class RetryExhaustedError(RuntimeError):
    """Every attempt allowed by a :class:`RetryPolicy` failed.

    ``last`` carries the final attempt's exception; ``attempts`` the
    number of attempts made.
    """

    def __init__(self, message: str, *, attempts: int, last: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry schedule for one dispatch.

    Attributes
    ----------
    retries:
        Retries *after* the first attempt (``retries=3`` means up to 4
        attempts in total).
    base_delay:
        Backoff before the first retry (seconds).
    factor:
        Multiplier applied per retry (``delay_k = base_delay * factor**k``).
    max_delay:
        Cap on any single backoff.
    timeout:
        Per-attempt timeout (seconds) handed to future ``.result()``
        calls; ``None`` waits for ever.
    """

    retries: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    timeout: float | None = 30.0

    def __post_init__(self) -> None:
        if self.retries < 0 or self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError(f"invalid retry policy {self!r}")
        if self.factor < 1.0:
            raise ConfigurationError(f"backoff factor must be >= 1, got {self.factor!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout!r}")

    def delays(self) -> list[float]:
        """The deterministic backoff schedule, one entry per retry."""
        return [
            min(self.base_delay * self.factor**k, self.max_delay)
            for k in range(self.retries)
        ]


#: A policy that never retries and never waits — for tests and tight loops.
NO_RETRY = RetryPolicy(retries=0, base_delay=0.0, timeout=None)


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    description: str = "task",
    sleep: Callable[[float], None] = time.sleep,
    retryable: tuple[type[BaseException], ...] = (Exception,),
) -> T:
    """Run ``fn`` under the policy; return its value or raise after exhaustion.

    Every failed attempt is counted on the ``adapt.retries`` metric; when
    the budget is exhausted a :class:`RetryExhaustedError` wrapping the
    last exception is raised, which callers treat as a permanent failure
    of the target (worker dead → graceful degradation).
    """
    delays = policy.delays()
    attempts = 0
    while True:
        try:
            return fn()
        except retryable as exc:
            attempts += 1
            if obs.is_enabled():
                obs.record_adapt(retries=1)
            if attempts > len(delays):
                raise RetryExhaustedError(
                    f"{description} failed after {attempts} attempt(s): {exc}",
                    attempts=attempts,
                    last=exc,
                ) from exc
            backoff = delays[attempts - 1]
            if backoff > 0:
                sleep(backoff)

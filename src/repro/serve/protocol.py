"""The planning service's versioned JSON request/response protocol.

One request or response per frame; a frame is one JSON object encoded in
UTF-8 and terminated by ``\\n`` (newline-delimited JSON).  The same
objects travel over the raw TCP listener, the HTTP ``POST /v1/rpc``
endpoint and straight into :meth:`~repro.serve.service.PlanningService.handle`
in tests — the protocol layer is transport-agnostic.

Requests::

    {"v": 1, "id": 7, "op": "plan", "fleet": "<fingerprint>", "n": 1000000,
     "timeout_ms": 50, "allocation": false}
    {"v": 1, "id": 8, "op": "plan_many", "fleet": "<fp>", "ns": [1, 2, 3]}
    {"v": 1, "id": 9, "op": "register_fleet", "name": "testbed",
     "speed_functions": [...], "algorithm": "bisection",
     "options": {"mode": "tangent", "refine": "greedy"}}
    {"v": 1, "id": 10, "op": "health"}
    {"v": 1, "id": 11, "op": "stats"}
    {"v": 1, "id": 12, "op": "observe", "fleet": "<fp>",
     "observations": [{"machine": 0, "size": 1e6, "speed": 81.5,
                       "timestamp": 12.5, "source": "step"}, ...]}

``plan`` and ``plan_many`` accept an optional ``trace`` object
(``{"trace_id": "<hex>", "span_id": "<hex>"}``) carrying a
client-supplied distributed-tracing identity; the response then echoes
that ``trace_id`` and the flight recorder files the request under it.
Requests without it get a server-generated trace id.

``plan`` and ``plan_many`` also accept an optional ``tenant`` string
(the quota and fair-queueing identity; absent means the shared default
tenant) and an optional ``idempotency_key`` (a retry carrying the same
key within the server's dedup window is answered with the original
response, solved exactly once).  Both fields are additive: legacy v1
frames without them behave exactly as before.

Responses echo ``v`` and ``id`` and carry either ``"ok": true`` plus a
``result`` object, or ``"ok": false`` plus an ``error`` object with a
machine-readable ``code`` (one of :data:`ERROR_CODES`) and a human
``message``.  Speed functions ride in the same JSON records as the
:mod:`repro.io` model files, so a fleet registered over the wire gets the
**same fingerprint** as one built locally from the same models — cache
keys survive service restarts (covered by the fingerprint-stability
tests).

Validation reuses the library's option typing: ``options`` keys must be
:class:`~repro.core.options.PartitionOptions` fields, and violations
raise :class:`ProtocolError`, a :class:`~repro.exceptions.ConfigurationError`
subtype carrying the wire-level error code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..core.options import PartitionOptions
from ..exceptions import (
    ConfigurationError,
    InfeasiblePartitionError,
    InvalidSpeedFunctionError,
)
from ..io import speed_function_from_dict, speed_function_to_dict
from ..obs.context import TraceContext

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ERROR_CODES",
    "ProtocolError",
    "PlanRequest",
    "PlanManyRequest",
    "RegisterFleetRequest",
    "ObserveRequest",
    "HealthRequest",
    "StatsRequest",
    "parse_request",
    "encode_frame",
    "decode_frame",
    "ok_response",
    "error_response",
    "error_code_for",
    "fleet_spec_from_speed_functions",
    "speed_functions_from_fleet_spec",
]

#: Current wire protocol version.  Responses always carry the server's
#: version; requests for other versions are rejected with
#: ``unsupported_version``.
PROTOCOL_VERSION = 1

#: Upper bound on one frame (a p=10⁴ fleet registration is ~2 MB; 32 MB
#: leaves headroom while still bounding a hostile client's allocation).
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Machine-readable error codes a response may carry.
ERROR_CODES = frozenset(
    {
        "invalid_request",  # malformed frame / bad fields / bad options
        "unsupported_version",  # protocol version mismatch
        "unknown_op",  # op not in the table below
        "unknown_fleet",  # fingerprint never registered
        "infeasible",  # n exceeds fleet capacity (or n < 0)
        "overloaded",  # load shed: shard queue full
        "deadline_exceeded",  # request expired before a worker reached it
        "shutting_down",  # server draining; no new work accepted
        "internal",  # unexpected failure inside a worker
        "unavailable",  # cluster router: no live replica could answer
        "throttled",  # the tenant's token-bucket quota is exhausted
    }
)

#: Length caps on the optional multi-tenancy identity fields — long
#: enough for any real naming scheme, short enough to bound hostile
#: frames.
MAX_TENANT_LEN = 128
MAX_IDEMPOTENCY_KEY_LEN = 256

#: Option fields a fleet registration may set (the serialisable subset
#: of :class:`PartitionOptions` — rich objects like ``region``/``pack``
#: are planner-internal and never cross the wire).
_WIRE_OPTION_FIELDS = frozenset({"mode", "refine"})

_PLANNER_ALGORITHMS = frozenset({"bisection", "combined", "modified"})


class ProtocolError(ConfigurationError):
    """A request that cannot be served, tagged with its wire error code."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code


def error_code_for(exc: BaseException) -> str:
    """The wire code describing a library exception."""
    if isinstance(exc, ProtocolError):
        return exc.code
    if isinstance(exc, InfeasiblePartitionError):
        return "infeasible"
    if isinstance(exc, (ConfigurationError, InvalidSpeedFunctionError)):
        return "invalid_request"
    return "internal"


# ---------------------------------------------------------------------------
# Typed requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanRequest:
    id: Any
    fleet: str
    n: int
    timeout_ms: float | None = None
    allocation: bool = True
    trace: TraceContext | None = None
    tenant: str = ""
    idempotency_key: str | None = None

    op = "plan"


@dataclass(frozen=True)
class PlanManyRequest:
    id: Any
    fleet: str
    ns: tuple[int, ...]
    timeout_ms: float | None = None
    allocation: bool = True
    trace: TraceContext | None = None
    tenant: str = ""
    idempotency_key: str | None = None

    op = "plan_many"


@dataclass(frozen=True)
class RegisterFleetRequest:
    id: Any
    name: str
    speed_functions: tuple[Mapping, ...]
    algorithm: str = "bisection"
    options: PartitionOptions = field(default_factory=PartitionOptions)
    cache_size: int = 1024

    op = "register_fleet"


@dataclass(frozen=True)
class ObserveRequest:
    """Feed observed ``(machine, size, speed)`` telemetry to one fleet.

    Each observation is a wire mapping for
    :class:`repro.adapt.Observation`; the service validates the values
    (sizes positive, speeds finite, ...) so a malformed record answers
    ``invalid_request`` instead of poisoning the sink.
    """

    id: Any
    fleet: str
    observations: tuple[Mapping, ...]

    op = "observe"


@dataclass(frozen=True)
class HealthRequest:
    id: Any

    op = "health"


@dataclass(frozen=True)
class StatsRequest:
    id: Any

    op = "stats"


Request = (
    PlanRequest
    | PlanManyRequest
    | RegisterFleetRequest
    | ObserveRequest
    | HealthRequest
    | StatsRequest
)


def _require(raw: Mapping, key: str, kinds: type | tuple, what: str) -> Any:
    try:
        value = raw[key]
    except KeyError:
        raise ProtocolError(
            "invalid_request", f"{what} request is missing the {key!r} field"
        ) from None
    if not isinstance(value, kinds):
        raise ProtocolError(
            "invalid_request",
            f"{what} request field {key!r} must be "
            f"{kinds if isinstance(kinds, type) else '/'.join(k.__name__ for k in kinds)}, "
            f"got {type(value).__name__}",
        )
    return value


def _as_size(value: Any, what: str) -> int:
    # bool is an int subclass; a boolean problem size is always a bug.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            "invalid_request", f"{what} must be a number, got {type(value).__name__}"
        )
    return int(value)


def _parse_trace(raw: Mapping) -> TraceContext | None:
    """The request's optional ``trace`` object as a typed context.

    ``{"trace": {"trace_id": "...", "span_id": "..."}}`` lets a client
    (or an upstream proxy speaking another tracing system) thread its own
    identity through the service — the response and the flight recorder
    carry the client's trace id instead of a server-generated one.  The
    field is new in protocol v1 and optional, so v1 clients that never
    send it are unaffected.
    """
    rec = raw.get("trace")
    if rec is None:
        return None
    if not isinstance(rec, Mapping):
        raise ProtocolError(
            "invalid_request", f"trace must be an object, got {type(rec).__name__}"
        )
    try:
        return TraceContext.from_dict(rec)
    except ValueError as exc:
        raise ProtocolError("invalid_request", str(exc)) from exc


def _parse_tenant(raw: Mapping) -> str:
    """The request's optional ``tenant`` field (``""`` when absent).

    New in protocol v1 and optional: frames without it share the ``""``
    tenant and behave exactly as before tenancy existed.
    """
    tenant = raw.get("tenant", "")
    if not isinstance(tenant, str):
        raise ProtocolError(
            "invalid_request",
            f"tenant must be a string, got {type(tenant).__name__}",
        )
    if len(tenant) > MAX_TENANT_LEN:
        raise ProtocolError(
            "invalid_request", f"tenant exceeds {MAX_TENANT_LEN} characters"
        )
    return tenant


def _parse_idempotency_key(raw: Mapping) -> str | None:
    """The request's optional ``idempotency_key`` (``None`` when absent).

    A retry carrying the same key within the server's dedup window gets
    the original response back without a second solve.
    """
    key = raw.get("idempotency_key")
    if key is None:
        return None
    if not isinstance(key, str) or not key:
        raise ProtocolError(
            "invalid_request", "idempotency_key must be a non-empty string"
        )
    if len(key) > MAX_IDEMPOTENCY_KEY_LEN:
        raise ProtocolError(
            "invalid_request",
            f"idempotency_key exceeds {MAX_IDEMPOTENCY_KEY_LEN} characters",
        )
    return key


def _parse_timeout(raw: Mapping) -> float | None:
    timeout = raw.get("timeout_ms")
    if timeout is None:
        return None
    if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
        raise ProtocolError(
            "invalid_request",
            f"timeout_ms must be a number, got {type(timeout).__name__}",
        )
    if timeout <= 0:
        raise ProtocolError("invalid_request", f"timeout_ms must be positive, got {timeout}")
    return float(timeout)


def parse_options(raw_options: Any) -> PartitionOptions:
    """A typed :class:`PartitionOptions` from a request's option mapping.

    Keys must be option fields *and* members of the serialisable subset;
    anything else raises a :class:`ProtocolError` naming the field, in
    the spirit of :func:`~repro.core.options.reject_unknown_options`.
    """
    if raw_options is None:
        return PartitionOptions()
    if not isinstance(raw_options, Mapping):
        raise ProtocolError(
            "invalid_request",
            f"options must be an object, got {type(raw_options).__name__}",
        )
    known = PartitionOptions.field_names()
    for name in raw_options:
        if name not in known:
            raise ProtocolError(
                "invalid_request", f"unknown partition option {name!r}"
            )
        if name not in _WIRE_OPTION_FIELDS:
            raise ProtocolError(
                "invalid_request",
                f"partition option {name!r} cannot be set over the wire",
            )
    options = PartitionOptions(**dict(raw_options))
    # Reject bad values at the front door: a typo'd mode/refine would
    # otherwise surface per-item inside the first solved batch.
    if options.mode not in ("tangent", "angle"):
        raise ProtocolError(
            "invalid_request", f"unknown bisection mode {options.mode!r}"
        )
    if options.refine not in ("greedy", "paper"):
        raise ProtocolError(
            "invalid_request", f"unknown refine procedure {options.refine!r}"
        )
    return options


def parse_request(raw: Any) -> Request:
    """Validate one decoded frame into a typed request.

    Raises :class:`ProtocolError` (never a bare ``KeyError``/``TypeError``)
    on anything malformed, so transports can turn any failure into a
    well-formed error response.
    """
    if not isinstance(raw, Mapping):
        raise ProtocolError(
            "invalid_request", f"a request must be a JSON object, got {type(raw).__name__}"
        )
    version = raw.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported_version",
            f"protocol version {version!r} is not supported (server speaks "
            f"{PROTOCOL_VERSION})",
        )
    req_id = raw.get("id")
    op = raw.get("op")
    if not isinstance(op, str):
        raise ProtocolError("invalid_request", "request is missing the 'op' field")

    if op == "plan":
        return PlanRequest(
            id=req_id,
            fleet=_require(raw, "fleet", str, "plan"),
            n=_as_size(_require(raw, "n", (int, float), "plan"), "n"),
            timeout_ms=_parse_timeout(raw),
            allocation=bool(raw.get("allocation", True)),
            trace=_parse_trace(raw),
            tenant=_parse_tenant(raw),
            idempotency_key=_parse_idempotency_key(raw),
        )
    if op == "plan_many":
        ns = _require(raw, "ns", (list, tuple), "plan_many")
        return PlanManyRequest(
            id=req_id,
            fleet=_require(raw, "fleet", str, "plan_many"),
            ns=tuple(_as_size(n, "ns entries") for n in ns),
            timeout_ms=_parse_timeout(raw),
            allocation=bool(raw.get("allocation", True)),
            trace=_parse_trace(raw),
            tenant=_parse_tenant(raw),
            idempotency_key=_parse_idempotency_key(raw),
        )
    if op == "register_fleet":
        sfs = _require(raw, "speed_functions", (list, tuple), "register_fleet")
        if not sfs:
            raise ProtocolError(
                "invalid_request", "register_fleet needs at least one speed function"
            )
        for i, rec in enumerate(sfs):
            if not isinstance(rec, Mapping):
                raise ProtocolError(
                    "invalid_request",
                    f"speed_functions[{i}] must be an object, got {type(rec).__name__}",
                )
        algorithm = raw.get("algorithm", "bisection")
        if algorithm not in _PLANNER_ALGORITHMS:
            raise ProtocolError(
                "invalid_request",
                f"unknown planner algorithm {algorithm!r}; expected one of "
                f"{sorted(_PLANNER_ALGORITHMS)}",
            )
        cache_size = raw.get("cache_size", 1024)
        if isinstance(cache_size, bool) or not isinstance(cache_size, int) or cache_size <= 0:
            raise ProtocolError(
                "invalid_request", f"cache_size must be a positive integer, got {cache_size!r}"
            )
        name = raw.get("name", "")
        if not isinstance(name, str):
            raise ProtocolError(
                "invalid_request", f"name must be a string, got {type(name).__name__}"
            )
        return RegisterFleetRequest(
            id=req_id,
            name=name,
            speed_functions=tuple(sfs),
            algorithm=algorithm,
            options=parse_options(raw.get("options")),
            cache_size=cache_size,
        )
    if op == "observe":
        recs = _require(raw, "observations", (list, tuple), "observe")
        if not recs:
            raise ProtocolError(
                "invalid_request", "observe needs at least one observation"
            )
        for i, rec in enumerate(recs):
            if not isinstance(rec, Mapping):
                raise ProtocolError(
                    "invalid_request",
                    f"observations[{i}] must be an object, got {type(rec).__name__}",
                )
        return ObserveRequest(
            id=req_id,
            fleet=_require(raw, "fleet", str, "observe"),
            observations=tuple(recs),
        )
    if op == "health":
        return HealthRequest(id=req_id)
    if op == "stats":
        return StatsRequest(id=req_id)
    raise ProtocolError("unknown_op", f"unknown operation {op!r}")


# ---------------------------------------------------------------------------
# Framing and response builders
# ---------------------------------------------------------------------------


def encode_frame(obj: Mapping) -> bytes:
    """One JSON object as a newline-terminated UTF-8 frame."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes | str) -> dict:
    """Decode one frame; malformed JSON raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                "invalid_request", f"frame exceeds {MAX_FRAME_BYTES} bytes"
            )
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("invalid_request", f"malformed JSON frame: {exc}") from exc
    except RecursionError as exc:
        # Pathologically nested JSON overflows the parser's stack; answer
        # with a typed error instead of letting the handler task die.
        raise ProtocolError("invalid_request", "frame nests too deeply") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            "invalid_request", f"a frame must hold a JSON object, got {type(obj).__name__}"
        )
    return obj


def ok_response(req_id: Any, result: Mapping, *, trace_id: str | None = None) -> dict:
    out = {"v": PROTOCOL_VERSION, "id": req_id, "ok": True, "result": dict(result)}
    if trace_id:
        out["trace_id"] = trace_id
    return out


def error_response(
    req_id: Any, code: str, message: str, *, trace_id: str | None = None
) -> dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    out = {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "ok": False,
        "error": {"code": code, "message": str(message)},
    }
    if trace_id:
        out["trace_id"] = trace_id
    return out


# ---------------------------------------------------------------------------
# Fleet specs: how a fleet's models travel between client, front-end and
# worker shards.  Reuses the repro.io JSON records verbatim, which is what
# makes wire-registered fleets fingerprint-identical to locally built ones.
# ---------------------------------------------------------------------------


def fleet_spec_from_speed_functions(
    speed_functions: Sequence,
    *,
    name: str = "",
    algorithm: str = "bisection",
    options: PartitionOptions | None = None,
    cache_size: int = 1024,
) -> dict:
    """A picklable/JSON-able spec for shipping a fleet to workers."""
    options = options or PartitionOptions()
    return {
        "name": name,
        "algorithm": algorithm,
        "mode": options.mode,
        "refine": options.refine,
        "cache_size": int(cache_size),
        "speed_functions": [speed_function_to_dict(sf) for sf in speed_functions],
    }


def speed_functions_from_fleet_spec(spec: Mapping) -> list:
    """Rebuild the speed-function objects named by a fleet spec."""
    return [speed_function_from_dict(rec) for rec in spec["speed_functions"]]

"""repro.serve — a concurrent partition-planning service.

The paper's partitioner is a *query*: given a fleet's speed functions
and a problem size ``n``, return an optimal allocation.  Schedulers ask
that question thousands of times per second, so this package wraps the
:mod:`repro.planner` query layer in a production-shaped service:

* :mod:`repro.serve.protocol` — a versioned JSON request/response
  protocol (``plan``, ``plan_many``, ``register_fleet``, ``observe``,
  ``health``, ``stats``) with typed validation reusing
  :class:`~repro.core.options.PartitionOptions` and the library's
  :class:`~repro.exceptions.ConfigurationError` conventions;
* :mod:`repro.serve.hashring` — the consistent-hash ring that pins each
  fleet fingerprint to one worker shard;
* :mod:`repro.serve.shard` — the sharded worker pool (threads or
  ``multiprocessing``): each shard owns the :class:`~repro.planner.Planner`
  instances for its fingerprints, so plan caches and warm-started slope
  regions stay shard-local and lock-free;
* :mod:`repro.serve.service` — micro-batching (concurrent ``plan``
  requests for one fleet coalesce into a single
  :meth:`~repro.planner.Planner.plan_many` sweep), admission control
  (bounded per-shard queues, deadlines, explicit ``overloaded``
  shedding) and graceful drain;
* :mod:`repro.serve.server` — the asyncio front-end: newline-delimited
  JSON over TCP plus an optional stdlib-only HTTP/1.1 listener serving
  ``/metrics`` (Prometheus), ``/health``, ``/stats`` and ``POST /v1/rpc``;
* :mod:`repro.serve.client` — a blocking client, an asyncio load
  generator, and the latency/throughput report used by
  ``benchmarks/bench_serve_throughput.py`` and ``make serve-smoke``.

Quick tour::

    from repro.serve import ServeConfig, start_in_thread, ServeClient

    handle = start_in_thread(ServeConfig(shards=2))
    with ServeClient(handle.host, handle.port) as client:
        fp = client.register_fleet(speed_functions, name="testbed")
        result = client.plan(fp, 10_000_000)
    handle.stop()
"""

from __future__ import annotations

from .client import AsyncServeClient, LoadReport, ServeClient, ServeError, run_load
from .hashring import HashRing
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    fleet_spec_from_speed_functions,
    ok_response,
    parse_request,
    speed_functions_from_fleet_spec,
)
from .service import OnlineRefitConfig, PlanningService, ServeConfig
from .server import PlanServer, ServerHandle, start_in_thread
from .shard import ShardPool
from .tenancy import QuotaManager, TenancyConfig, TenantQuota, TokenBucket, WFQueue

__all__ = [
    "AsyncServeClient",
    "HashRing",
    "LoadReport",
    "OnlineRefitConfig",
    "PROTOCOL_VERSION",
    "PlanServer",
    "PlanningService",
    "ProtocolError",
    "QuotaManager",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "ShardPool",
    "TenancyConfig",
    "TenantQuota",
    "TokenBucket",
    "WFQueue",
    "decode_frame",
    "encode_frame",
    "error_response",
    "fleet_spec_from_speed_functions",
    "ok_response",
    "parse_request",
    "run_load",
    "speed_functions_from_fleet_spec",
    "start_in_thread",
]

"""Multi-tenant admission: token-bucket quotas and weighted fair queueing.

One planning service, many tenants, heavy skew — the operational shape
ROADMAP item 4 names.  Two mechanisms keep a zipfian-heavy tenant from
degrading everyone else:

* **Quotas** (:class:`QuotaManager`): a classic token bucket per tenant.
  A tenant whose sustained request rate exceeds its configured budget is
  answered with the typed ``throttled`` wire code *before* its work
  touches a shard queue.  Quotas are policy, so ``throttled`` is **not**
  retryable at the router — a replica would enforce the same budget.

* **Weighted fair queueing** (:class:`WFQueue`): the shard inboxes
  schedule queued jobs by *start-time fair queueing* (SFQ) virtual
  finish times instead of FIFO arrival order.  Each job of cost ``c``
  submitted by tenant ``t`` with weight ``w`` is stamped

      ``start  = max(V, last_finish[t])``
      ``finish = start + c / w``

  where ``V`` is the queue's virtual time (the largest finish time ever
  dequeued).  ``get`` always pops the globally minimal finish time, so
  backlogged tenants drain in proportion to their weights and a light
  tenant's next job overtakes at most a bounded amount of heavy-tenant
  work (see ``tests/serve/test_wfq_properties.py`` for the machine-checked
  statements).  Admission stays bounded, but **per tenant**: each tenant
  owns ``maxsize`` slots, so a flooding tenant sheds only itself.

Both pieces are dependency-free and clock-injectable, which is what the
property suites lean on.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..exceptions import ConfigurationError

__all__ = [
    "TenantQuota",
    "TenancyConfig",
    "TokenBucket",
    "QuotaManager",
    "WFQueue",
]

#: Reserved tenant name for control-plane traffic (register/refit/stats).
#: It has its own per-tenant admission slots, so a data-plane flood can
#: never lock out fleet registrations — strictly better than the shared
#: FIFO bound it replaces.
CONTROL_TENANT = "\x00control"


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's scheduling weight and (optional) rate budget.

    ``weight`` scales the tenant's fair share of shard time (2.0 drains
    twice as fast as 1.0 under contention).  ``rate`` is a sustained
    budget in plans per second enforced by a token bucket holding at
    most ``burst`` tokens (defaults to ``max(rate, 1)``); ``rate=None``
    means unmetered.
    """

    weight: float = 1.0
    rate: float | None = None
    burst: float | None = None

    def __post_init__(self):
        if not self.weight > 0:
            raise ConfigurationError(
                f"tenant weight must be positive, got {self.weight!r}"
            )
        if self.rate is not None and not self.rate > 0:
            raise ConfigurationError(
                f"tenant rate must be positive, got {self.rate!r}"
            )
        if self.burst is not None and not self.burst > 0:
            raise ConfigurationError(
                f"tenant burst must be positive, got {self.burst!r}"
            )


@dataclass(frozen=True)
class TenancyConfig:
    """Per-tenant quota table plus the default applied to unknown tenants.

    Requests that carry no ``tenant`` field share the ``""`` tenant (and
    therefore the default quota) — exactly the pre-tenancy behavior.
    """

    tenants: Mapping[str, TenantQuota] = field(default_factory=dict)
    default: TenantQuota = field(default_factory=TenantQuota)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.tenants.get(tenant, self.default)


class TokenBucket:
    """Thread-safe token bucket with an injectable monotonic clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not rate > 0:
            raise ConfigurationError(f"rate must be positive, got {rate!r}")
        if not burst > 0:
            raise ConfigurationError(f"burst must be positive, got {burst!r}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self._burst, self._tokens + (now - self._stamp) * self._rate
            )
            self._stamp = now
            if self._tokens + 1e-12 >= cost:
                self._tokens -= cost
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            now = self._clock()
            return min(
                self._burst, self._tokens + (now - self._stamp) * self._rate
            )


class QuotaManager:
    """Lazy per-tenant token buckets over a :class:`TenancyConfig`.

    With ``config=None`` every tenant is unmetered at weight 1.0 — the
    single-tenant fast path stays a couple of dictionary lookups.
    """

    def __init__(
        self,
        config: TenancyConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._config = config
        self._clock = clock
        self._buckets: dict[str, TokenBucket | None] = {}
        self._lock = threading.Lock()

    @property
    def config(self) -> TenancyConfig | None:
        return self._config

    def quota_for(self, tenant: str) -> TenantQuota:
        if self._config is None:
            return TenantQuota()
        return self._config.quota_for(tenant)

    def weight_for(self, tenant: str) -> float:
        return self.quota_for(tenant).weight

    def _bucket(self, tenant: str) -> TokenBucket | None:
        try:
            return self._buckets[tenant]
        except KeyError:
            pass
        quota = self.quota_for(tenant)
        with self._lock:
            if tenant not in self._buckets:
                self._buckets[tenant] = (
                    None
                    if quota.rate is None
                    else TokenBucket(
                        quota.rate,
                        quota.burst if quota.burst is not None
                        else max(quota.rate, 1.0),
                        clock=self._clock,
                    )
                )
            return self._buckets[tenant]

    def try_acquire(self, tenant: str, cost: float = 1.0) -> bool:
        """Charge ``cost`` plans against the tenant's budget (if any)."""
        bucket = self._bucket(tenant)
        return True if bucket is None else bucket.try_acquire(cost)


class _TenantLane:
    """One tenant's FIFO backlog plus its SFQ bookkeeping."""

    __slots__ = ("items", "last_finish")

    def __init__(self):
        self.items: deque = deque()  # (finish, seq, cost, payload)
        self.last_finish = 0.0


class WFQueue:
    """Bounded multi-tenant queue with start-time fair queueing order.

    ``maxsize`` bounds each **tenant's** backlog (the shed contract the
    service layer turns into ``overloaded``); total occupancy is at most
    ``maxsize × active tenants`` and ``0`` means unbounded, matching
    :class:`queue.Queue`.  Within a tenant, order is FIFO; across
    tenants, :meth:`get` pops the minimal virtual finish time with the
    global enqueue sequence as a deterministic tie-break.

    Three delivery classes exist besides normal items:

    * :meth:`put_urgent` items jump ahead of everything queued (used for
      shard restart markers);
    * :meth:`put_sentinel` items are delivered only once everything else
      has drained (the pool's ``None`` close sentinel);
    * control-plane :meth:`put` calls block for space in their own
      tenant lane instead of shedding.
    """

    def __init__(self, maxsize: int):
        if maxsize < 0:
            raise ConfigurationError(
                f"maxsize must be >= 0 (0 = unbounded), got {maxsize}"
            )
        self._maxsize = int(maxsize) or float("inf")
        self._lanes: dict[str, _TenantLane] = {}
        self._heads: list[tuple[float, int, str]] = []  # (finish, seq, tenant)
        self._urgent: deque = deque()
        self._sentinels: deque = deque()
        self._vtime = 0.0
        self._seq = itertools.count()
        self._size = 0  # normal items only
        self._cond = threading.Condition()

    # -- enqueue --------------------------------------------------------
    def _stamp_locked(
        self, item: Any, tenant: str, weight: float, cost: float
    ) -> None:
        if not weight > 0:
            raise ConfigurationError(f"weight must be positive, got {weight!r}")
        if cost < 0:
            raise ConfigurationError(f"cost must be >= 0, got {cost!r}")
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = _TenantLane()
        start = max(self._vtime, lane.last_finish)
        finish = start + cost / weight
        lane.last_finish = finish
        seq = next(self._seq)
        lane.items.append((finish, seq, cost, item))
        if len(lane.items) == 1:
            heapq.heappush(self._heads, (finish, seq, tenant))
        self._size += 1
        self._cond.notify()

    def put_nowait(
        self,
        item: Any,
        *,
        tenant: str = "",
        weight: float = 1.0,
        cost: float = 1.0,
    ) -> None:
        """Enqueue or raise :class:`queue.Full` on the tenant's own bound."""
        with self._cond:
            lane = self._lanes.get(tenant)
            if lane is not None and len(lane.items) >= self._maxsize:
                raise queue.Full
            self._stamp_locked(item, tenant, weight, cost)

    def put(
        self,
        item: Any,
        *,
        tenant: str = "",
        weight: float = 1.0,
        cost: float = 1.0,
        timeout: float | None = None,
    ) -> None:
        """Blocking enqueue (control plane); :class:`queue.Full` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                lane = self._lanes.get(tenant)
                if lane is None or len(lane.items) < self._maxsize:
                    break
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise queue.Full
                self._cond.wait(remaining)
            self._stamp_locked(item, tenant, weight, cost)

    def put_urgent(self, item: Any) -> None:
        """Enqueue ahead of every queued item (never bounded)."""
        with self._cond:
            self._urgent.append(item)
            self._cond.notify()

    def put_sentinel(self, item: Any) -> None:
        """Enqueue behind every current *and future* normal item."""
        with self._cond:
            self._sentinels.append(item)
            self._cond.notify()

    # -- dequeue --------------------------------------------------------
    def get(self, timeout: float | None = None) -> Any:
        """Pop the next scheduled item; blocks (``queue.Empty`` on timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                try:
                    return self._try_pop_locked()
                except queue.Empty:
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise
                    self._cond.wait(remaining)

    def get_nowait(self) -> Any:
        with self._cond:
            return self._try_pop_locked()

    def _try_pop_locked(self) -> Any:
        if self._urgent:
            return self._urgent.popleft()
        while self._heads:
            finish, seq, tenant = self._heads[0]
            lane = self._lanes.get(tenant)
            if lane is None or not lane.items or lane.items[0][1] != seq:
                heapq.heappop(self._heads)
                if lane is not None and lane.items:
                    f2, s2, _, _ = lane.items[0]
                    heapq.heappush(self._heads, (f2, s2, tenant))
                continue
            entry = lane.items.popleft()
            heapq.heappop(self._heads)
            if lane.items:
                f2, s2, _, _ = lane.items[0]
                heapq.heappush(self._heads, (f2, s2, tenant))
            elif lane.last_finish <= self._vtime:
                del self._lanes[tenant]
            self._vtime = max(self._vtime, entry[0])
            self._size -= 1
            self._cond.notify()
            return entry[3]
        if self._sentinels:
            return self._sentinels.popleft()
        raise queue.Empty

    # -- introspection --------------------------------------------------
    def qsize(self) -> int:
        """Queued normal items (sentinels and urgent markers excluded)."""
        with self._cond:
            return self._size

    def backlog(self, tenant: str = "") -> int:
        with self._cond:
            lane = self._lanes.get(tenant)
            return 0 if lane is None else len(lane.items)

    def backlogs(self) -> dict[str, int]:
        """Per-tenant queued item counts (empty lanes omitted)."""
        with self._cond:
            return {
                t: len(lane.items)
                for t, lane in self._lanes.items()
                if lane.items
            }

    @property
    def vtime(self) -> float:
        with self._cond:
            return self._vtime

    def drain_pending(self) -> list:
        """Remove and return every queued normal item (abandon path)."""
        with self._cond:
            items = []
            for lane in self._lanes.values():
                items.extend(entry[3] for entry in lane.items)
                lane.items.clear()
            self._lanes.clear()
            self._heads.clear()
            self._size = 0
            self._cond.notify_all()
            return items

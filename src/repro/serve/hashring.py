"""Consistent hashing: pinning fleet fingerprints to worker shards.

Every fleet fingerprint must be answered by exactly one shard, because
that shard's process-local :class:`~repro.planner.Planner` holds the
fleet's plan cache and warm-started slope regions — routing the same
fingerprint to two shards would halve the cache hit rate and double the
memory.  A plain ``hash(fp) % shards`` would do for a fixed pool, but it
reshuffles *every* fingerprint when the pool is resized; the classic
consistent-hash ring moves only ``~1/shards`` of the keyspace per
added/removed shard, so a resized service keeps most of its warm caches.

The ring is built from :func:`hashlib.blake2b` digests, never from
Python's randomised ``hash()``, so the fingerprint→shard mapping is
stable across processes and restarts — a requirement for the worker
processes, which must agree with the front-end about ownership.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Sequence

__all__ = ["HashRing"]


def _point(data: str) -> int:
    """A stable 64-bit ring coordinate for ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring mapping string keys to member nodes.

    Parameters
    ----------
    nodes:
        Initial members (any hashable labels; the shard pool uses shard
        indices).
    replicas:
        Virtual points per node.  More points smooth the keyspace split
        (the default 64 keeps the max/min shard share within ~20% for
        typical pool sizes) at a small O(replicas log replicas) build
        cost per node.
    """

    def __init__(self, nodes: Iterable[Hashable] = (), *, replicas: int = 64):
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self._replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, Hashable] = {}
        self._nodes: set[Hashable] = set()
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------
    def add(self, node: Hashable) -> None:
        """Add a node (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self._replicas):
            point = _point(f"{node!r}#{v}")
            # blake2b collisions across distinct labels are practically
            # impossible; keep the first owner if one ever happens.
            if point not in self._owners:
                bisect.insort(self._points, point)
                self._owners[point] = node

    def remove(self, node: Hashable) -> None:
        """Remove a node (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for v in range(self._replicas):
            point = _point(f"{node!r}#{v}")
            if self._owners.get(point) == node:
                del self._owners[point]
                idx = bisect.bisect_left(self._points, point)
                del self._points[idx]

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    # -- lookups --------------------------------------------------------
    def node_for(self, key: str) -> Hashable:
        """The node owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise ValueError("cannot route on an empty ring")
        idx = bisect.bisect_right(self._points, _point(str(key)))
        if idx == len(self._points):
            idx = 0
        return self._owners[self._points[idx]]

    def nodes_for(self, key: str, count: int) -> list[Hashable]:
        """Up to ``count`` distinct nodes for ``key``: owner, then successors.

        The first entry is always :meth:`node_for`'s answer; the rest are
        the next distinct owners walking the ring clockwise — the replica
        set the cluster router falls back across.  Two stability
        properties make this safe to use for replication (asserted by the
        Hypothesis suite): a node that is not in the set owns no ring
        point before the set's last pick, so removing it never changes
        the set; and adding a node either leaves the set alone or inserts
        the new node, displacing only the tail.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if not self._points:
            raise ValueError("cannot route on an empty ring")
        idx = bisect.bisect_right(self._points, _point(str(key)))
        out: list[Hashable] = []
        seen: set[Hashable] = set()
        for k in range(len(self._points)):
            owner = self._owners[self._points[(idx + k) % len(self._points)]]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == count:
                    break
        return out

    def distribution(self, keys: Sequence[str]) -> dict[Hashable, int]:
        """How many of ``keys`` each node owns (diagnostics)."""
        out: dict[Hashable, int] = {node: 0 for node in self._nodes}
        for key in keys:
            out[self.node_for(key)] += 1
        return out

"""Clients for the planning service, and the load-generating harness.

* :class:`ServeClient` — a blocking, one-request-at-a-time client over a
  single TCP connection.  The right tool for scripts, the CLI and the
  smoke target.
* :class:`AsyncServeClient` — an asyncio client that pipelines: requests
  are written as they come and responses are matched back by ``id``, so
  one connection can keep many requests in flight — which is exactly
  what feeds the server's micro-batcher.
* :func:`run_load` — the measurement harness behind
  ``benchmarks/bench_serve_throughput.py`` and ``make serve-smoke``:
  ``concurrency`` workers drain a shared size list through a handful of
  pipelined connections and the resulting :class:`LoadReport` carries
  sustained plans/sec plus p50/p99 latency and a per-error-code census.

Errors: the convenience methods raise :class:`ServeError` (carrying the
wire ``code``) for envelope-level failures; ``plan_many`` returns its
per-item verdicts untouched so callers can do partial-failure handling.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import statistics
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..exceptions import ReproError
from ..io import speed_function_to_dict
from .protocol import PROTOCOL_VERSION, decode_frame, encode_frame

__all__ = ["ServeError", "ServeClient", "AsyncServeClient", "LoadReport", "run_load"]


class ServeError(ReproError):
    """An error response from the planning service."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


def _records(speed_functions: Sequence) -> list[dict]:
    """Accept speed-function objects or ready-made JSON records."""
    out = []
    for sf in speed_functions:
        out.append(dict(sf) if isinstance(sf, Mapping) else speed_function_to_dict(sf))
    return out


def _unwrap(response: Mapping) -> dict:
    if response.get("ok"):
        return response["result"]
    err = response.get("error") or {}
    raise ServeError(err.get("code", "internal"), err.get("message", "unknown error"))


class ServeClient:
    """Blocking NDJSON client (thread-safe; one request in flight)."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._seq = itertools.count(1)
        self._lock = threading.Lock()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def call(self, op: str, **fields: Any) -> dict:
        """One raw protocol round-trip; returns the full response dict."""
        with self._lock:
            req_id = next(self._seq)
            frame = {"v": PROTOCOL_VERSION, "id": req_id, "op": op, **fields}
            self._sock.sendall(encode_frame(frame))
            line = self._reader.readline()
            if not line:
                raise ConnectionError("the server closed the connection")
            response = decode_frame(line)
        if response.get("id") not in (req_id, None):
            raise ServeError(
                "internal", f"response id {response.get('id')!r} != {req_id}"
            )
        return response

    # -- convenience ----------------------------------------------------
    def register_fleet(
        self,
        speed_functions: Sequence,
        *,
        name: str = "",
        algorithm: str = "bisection",
        options: Mapping | None = None,
        cache_size: int = 1024,
    ) -> dict:
        """Register a fleet; returns ``{fingerprint, p, capacity, ...}``."""
        return _unwrap(
            self.call(
                "register_fleet",
                name=name,
                speed_functions=_records(speed_functions),
                algorithm=algorithm,
                options=dict(options) if options else {},
                cache_size=cache_size,
            )
        )

    def plan(
        self,
        fingerprint: str,
        n: int,
        *,
        timeout_ms: float | None = None,
        allocation: bool = True,
        trace: Mapping | None = None,
        tenant: str = "",
        idempotency_key: str | None = None,
    ) -> dict:
        """One plan; returns the result item or raises :class:`ServeError`.

        ``trace`` is an optional client-supplied trace context
        (``{"trace_id": ..., "span_id": ...}``, e.g. from
        :meth:`repro.obs.TraceContext.to_dict`); the server threads it
        through its span tree and files the request under that id.
        ``tenant`` selects the server-side fair-queueing lane and quota
        bucket; ``idempotency_key`` makes retries of the same logical
        request return the original response without re-solving.
        """
        fields: dict[str, Any] = {
            "fleet": fingerprint, "n": int(n), "allocation": allocation,
        }
        if timeout_ms is not None:
            fields["timeout_ms"] = timeout_ms
        if trace is not None:
            fields["trace"] = dict(trace)
        if tenant:
            fields["tenant"] = tenant
        if idempotency_key is not None:
            fields["idempotency_key"] = idempotency_key
        return _unwrap(self.call("plan", **fields))

    def plan_many(
        self,
        fingerprint: str,
        ns: Sequence[int],
        *,
        timeout_ms: float | None = None,
        allocation: bool = True,
        trace: Mapping | None = None,
        tenant: str = "",
        idempotency_key: str | None = None,
    ) -> list[dict]:
        """A batch; returns per-item verdicts (ok or error dicts)."""
        fields: dict[str, Any] = {
            "fleet": fingerprint,
            "ns": [int(n) for n in ns],
            "allocation": allocation,
        }
        if timeout_ms is not None:
            fields["timeout_ms"] = timeout_ms
        if trace is not None:
            fields["trace"] = dict(trace)
        if tenant:
            fields["tenant"] = tenant
        if idempotency_key is not None:
            fields["idempotency_key"] = idempotency_key
        return _unwrap(self.call("plan_many", **fields))["results"]

    def observe(self, fingerprint: str, observations: Sequence) -> dict:
        """Report observed ``(machine, size, speed)`` step timings.

        Accepts :class:`repro.Observation` objects or ready-made wire
        dicts.  Returns ``{"accepted": k, "refit": None | {...}}`` — the
        ``refit`` document appears when this call tipped the server into
        re-fitting the fleet's speed model (see
        ``ServeConfig.online_refit``).
        """
        records = [
            o.to_wire() if hasattr(o, "to_wire") else dict(o) for o in observations
        ]
        return _unwrap(
            self.call("observe", fleet=fingerprint, observations=records)
        )

    def health(self) -> dict:
        return _unwrap(self.call("health"))

    def stats(self) -> dict:
        return _unwrap(self.call("stats"))


class AsyncServeClient:
    """Pipelining asyncio client: many requests in flight per connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._seq = itertools.count(1)
        self._pending: dict[Any, asyncio.Future] = {}
        self._read_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServeClient":
        from .protocol import MAX_FRAME_BYTES

        reader, writer = await asyncio.open_connection(host, port, limit=MAX_FRAME_BYTES)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = decode_frame(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("the server closed the connection")
                    )
            self._pending.clear()

    @property
    def connected(self) -> bool:
        """False once the server closed the connection (or we did).

        A dead connection's read loop has exited, so a request written
        now would never be answered — callers holding pooled clients
        check this to redial instead of parking a future forever.
        """
        return not self._read_task.done() and not self._writer.is_closing()

    async def call(self, op: str, **fields: Any) -> dict:
        if not self.connected:
            raise ConnectionError("the connection is closed")
        req_id = next(self._seq)
        frame = {"v": PROTOCOL_VERSION, "id": req_id, "op": op, **fields}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        return await future

    async def plan(
        self,
        fingerprint: str,
        n: int,
        *,
        timeout_ms: float | None = None,
        allocation: bool = True,
        trace: Mapping | None = None,
        tenant: str = "",
        idempotency_key: str | None = None,
    ) -> dict:
        fields: dict[str, Any] = {
            "fleet": fingerprint, "n": int(n), "allocation": allocation,
        }
        if timeout_ms is not None:
            fields["timeout_ms"] = timeout_ms
        if trace is not None:
            fields["trace"] = dict(trace)
        if tenant:
            fields["tenant"] = tenant
        if idempotency_key is not None:
            fields["idempotency_key"] = idempotency_key
        return _unwrap(await self.call("plan", **fields))

    async def plan_many(
        self,
        fingerprint: str,
        ns: Sequence[int],
        *,
        allocation: bool = True,
        tenant: str = "",
        idempotency_key: str | None = None,
    ) -> list[dict]:
        fields: dict[str, Any] = {
            "fleet": fingerprint,
            "ns": [int(n) for n in ns],
            "allocation": allocation,
        }
        if tenant:
            fields["tenant"] = tenant
        if idempotency_key is not None:
            fields["idempotency_key"] = idempotency_key
        return _unwrap(await self.call("plan_many", **fields))["results"]

    async def close(self) -> None:
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Load generation
# ---------------------------------------------------------------------------


@dataclass
class LoadReport:
    """What a load run did, and how fast the service answered."""

    requests: int
    ok: int
    errors: dict[str, int] = field(default_factory=dict)
    duration_seconds: float = 0.0
    latencies_seconds: list[float] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return sum(self.errors.values())

    @property
    def plans_per_second(self) -> float:
        return self.ok / self.duration_seconds if self.duration_seconds > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        """The q-quantile of observed request latencies (0 when idle)."""
        if not self.latencies_seconds:
            return 0.0
        ordered = sorted(self.latencies_seconds)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def p50(self) -> float:
        return self.latency_quantile(0.50)

    @property
    def p99(self) -> float:
        return self.latency_quantile(0.99)

    @property
    def mean_latency(self) -> float:
        if not self.latencies_seconds:
            return 0.0
        return statistics.fmean(self.latencies_seconds)

    def summary(self) -> str:
        errs = (
            " ".join(f"{code}={count}" for code, count in sorted(self.errors.items()))
            or "none"
        )
        return (
            f"{self.ok}/{self.requests} ok in {self.duration_seconds:.3f}s "
            f"({self.plans_per_second:.0f} plans/s), "
            f"p50={self.p50 * 1e3:.2f}ms p99={self.p99 * 1e3:.2f}ms, errors: {errs}"
        )


async def _run_load_async(
    host: str,
    port: int,
    fingerprint: str,
    sizes: Sequence[int],
    *,
    concurrency: int,
    connections: int,
    allocation: bool,
    timeout_ms: float | None,
    tenant: str,
) -> LoadReport:
    connections = max(1, min(connections, concurrency))
    clients = [
        await AsyncServeClient.connect(host, port) for _ in range(connections)
    ]
    report = LoadReport(requests=len(sizes), ok=0)
    queue: asyncio.Queue[int] = asyncio.Queue()
    for n in sizes:
        queue.put_nowait(int(n))

    async def worker(idx: int) -> None:
        client = clients[idx % len(clients)]
        while True:
            try:
                n = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            begin = time.perf_counter()
            fields: dict[str, Any] = {
                "fleet": fingerprint, "n": n, "allocation": allocation,
            }
            if timeout_ms is not None:
                fields["timeout_ms"] = timeout_ms
            if tenant:
                fields["tenant"] = tenant
            response = await client.call("plan", **fields)
            report.latencies_seconds.append(time.perf_counter() - begin)
            if response.get("ok"):
                report.ok += 1
            else:
                code = (response.get("error") or {}).get("code", "internal")
                report.errors[code] = report.errors.get(code, 0) + 1

    started = time.perf_counter()
    try:
        await asyncio.gather(*(worker(i) for i in range(concurrency)))
    finally:
        report.duration_seconds = time.perf_counter() - started
        for client in clients:
            await client.close()
    return report


def run_load(
    host: str,
    port: int,
    fingerprint: str,
    sizes: Sequence[int],
    *,
    concurrency: int = 32,
    connections: int = 8,
    allocation: bool = False,
    timeout_ms: float | None = None,
    tenant: str = "",
) -> LoadReport:
    """Drive the service with ``concurrency`` workers; return the report.

    ``sizes`` is consumed exactly once (one ``plan`` request per entry)
    by workers multiplexed over ``connections`` pipelined TCP
    connections.  All requests carry ``tenant`` when set, so a
    multi-tenant scenario is just several ``run_load`` calls in threads.
    Runs its own event loop, so call it from ordinary synchronous code
    (benchmarks, ``make serve-smoke``).
    """
    return asyncio.run(
        _run_load_async(
            host,
            port,
            fingerprint,
            sizes,
            concurrency=concurrency,
            connections=connections,
            allocation=allocation,
            timeout_ms=timeout_ms,
            tenant=tenant,
        )
    )

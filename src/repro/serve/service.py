"""The planning service: batching, admission control, op dispatch.

:class:`PlanningService` is the transport-agnostic heart of
:mod:`repro.serve`.  The TCP and HTTP listeners, the smoke target and the
unit tests all feed decoded request objects into :meth:`PlanningService.handle`
and get response dicts back; everything below that call is this module:

**Micro-batching.**  Concurrent ``plan`` requests for the same fleet
fingerprint are coalesced: the first arrival opens a batching window
(``batch_window`` seconds, scheduled on the event loop), later arrivals
append, and the window closing — or the batch reaching ``max_batch`` —
flushes the whole group to the owning shard as *one*
:meth:`~repro.planner.Planner.plan_many` job.  The planner solves the
batch in a single monotone slope sweep, so a window of k concurrent
queries costs roughly one warm solve plus k−1 bracket repairs instead of
k independent solves.  ``plan_many`` requests are already batches and
bypass the window.

**Admission control.**  Shard inboxes are bounded; when the owning
shard's queue is full the whole flushed batch is shed immediately with
``overloaded`` item responses — queue depth, not latency, is the
backpressure signal.  Requests carry optional deadlines which workers
check at dequeue time, so a backlog never wastes solves on expired work.
During drain, new requests are refused with ``shutting_down`` while
every in-flight batch completes.

All of it is observable: per-op request counters and latency histograms,
batch-size histograms, shed counters and queue-depth gauges land in the
global :mod:`repro.obs` registry and flow out of the HTTP ``/metrics``
endpoint via the existing Prometheus exporter.
"""

from __future__ import annotations

import asyncio
import functools
import logging
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .. import obs
from ..core.options import PartitionOptions
from ..exceptions import ReproError
from ..planner import Fleet
from .protocol import (
    HealthRequest,
    PlanManyRequest,
    PlanRequest,
    ProtocolError,
    RegisterFleetRequest,
    StatsRequest,
    error_code_for,
    error_response,
    fleet_spec_from_speed_functions,
    ok_response,
    parse_request,
    speed_functions_from_fleet_spec,
)
from .shard import ShardPool

__all__ = ["ServeConfig", "PlanningService"]

logger = logging.getLogger(__name__)

#: Batch-size histogram buckets (requests per flushed batch).
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for the planning service (see ``docs/serving.md``).

    Attributes
    ----------
    shards:
        Worker count.  Each fleet lives on exactly one shard, so shards
        scale *fleet* parallelism, not single-fleet throughput.
    worker_mode:
        ``"thread"`` or ``"process"`` shard workers.
    batch_window:
        Seconds the first request of a batch waits for company.  ``0``
        still coalesces requests that arrive in the same event-loop
        tick; larger windows trade p50 latency for throughput.
    max_batch:
        Flush early once a window holds this many requests.
    queue_depth:
        Per-shard inbox bound in jobs — the admission limit.
    default_timeout_ms:
        Deadline applied to requests that do not carry their own
        ``timeout_ms`` (``None`` = no deadline).
    host / port / http_port:
        Listener addresses for :class:`~repro.serve.server.PlanServer`
        (``port=0`` picks an ephemeral port; ``http_port=None`` disables
        the HTTP listener).
    """

    shards: int = 2
    worker_mode: str = "thread"
    batch_window: float = 0.002
    max_batch: int = 64
    queue_depth: int = 128
    default_timeout_ms: float | None = None
    host: str = "127.0.0.1"
    port: int = 0
    http_port: int | None = None


class _Pending:
    """One plan request waiting inside a batching window."""

    __slots__ = ("n", "deadline", "allocation", "future")

    def __init__(self, n: int, deadline: float | None, allocation: bool, future):
        self.n = n
        self.deadline = deadline
        self.allocation = allocation
        self.future = future


class _BatchState:
    """The open batching window for one fleet fingerprint."""

    __slots__ = ("items", "timer")

    def __init__(self):
        self.items: list[_Pending] = []
        self.timer = None


def _item_error(code: str, message: str) -> dict:
    return {"ok": False, "code": code, "message": message}


class PlanningService:
    """Async service answering protocol requests over a shard pool.

    Construct, then ``await start()`` from the event loop that will call
    :meth:`handle`.  All batching state is touched only from that loop,
    so it needs no locks; the shard pool does its own synchronisation.
    """

    def __init__(self, config: ServeConfig | None = None):
        self._config = config or ServeConfig()
        self._pool: ShardPool | None = None
        self._fleets: dict[str, dict] = {}
        self._batches: dict[str, _BatchState] = {}
        self._inflight: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._started_at = time.time()

        registry = obs.get_registry()
        self._latency = {
            op: registry.histogram(
                "serve.request.seconds",
                labels={"op": op},
                help="front-end latency per request, by operation",
            )
            for op in (
                "plan", "plan_many", "register_fleet", "health", "stats", "invalid",
            )
        }
        self._requests = registry.counter(
            "serve.requests", help="requests received, all operations"
        )
        self._responses_ok = registry.counter(
            "serve.responses", labels={"status": "ok"}, help="responses by status"
        )
        self._responses_err = registry.counter(
            "serve.responses", labels={"status": "error"}, help="responses by status"
        )
        self._shed = registry.counter(
            "serve.shed", help="plan requests shed with an overloaded response"
        )
        self._batch_size = registry.histogram(
            "serve.batch.size",
            buckets=_BATCH_BUCKETS,
            help="plan requests per flushed micro-batch",
        )
        self._batches_flushed = registry.counter(
            "serve.batches", help="micro-batches flushed to shards"
        )

    # -- lifecycle ------------------------------------------------------
    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pool(self) -> ShardPool:
        if self._pool is None:
            raise RuntimeError("the service has not been started")
        return self._pool

    async def start(self) -> None:
        """Spin up the shard pool; must run on the serving event loop."""
        if self._pool is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._started_at = time.time()
        cfg = self._config
        self._pool = ShardPool(
            cfg.shards, mode=cfg.worker_mode, queue_depth=cfg.queue_depth
        )
        logger.info(
            "planning service started",
            extra={
                "shards": cfg.shards, "mode": cfg.worker_mode,
                "batch_window": cfg.batch_window, "queue_depth": cfg.queue_depth,
            },
        )

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight batches.

        Every request admitted before the drain started gets a real
        response; the shard pool is then closed with ``drain=True`` so
        queued jobs complete before the workers exit.
        """
        if self._pool is None or self._draining:
            self._draining = True
            return
        self._draining = True
        for fingerprint in list(self._batches):
            self._flush(fingerprint)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        pool = self._pool
        assert self._loop is not None
        await self._loop.run_in_executor(
            None, functools.partial(pool.close, drain=True)
        )
        logger.info("planning service drained")

    # -- fleet registry -------------------------------------------------
    async def register_fleet(
        self,
        speed_functions: Sequence | None = None,
        *,
        spec: Mapping | None = None,
        name: str = "",
        algorithm: str = "bisection",
        options: PartitionOptions | None = None,
        cache_size: int = 1024,
    ) -> dict:
        """Register a fleet (from objects or a wire spec) on its shard.

        The fleet is built here first — validating the models and fixing
        the content fingerprint — then shipped to the owning worker,
        which must arrive at the *same* fingerprint (the protocol's JSON
        records preserve knot content exactly).  Re-registering an
        existing fingerprint is idempotent unless the planner options
        changed, in which case the shard's planner is rebuilt.
        """
        if self._draining:
            raise ProtocolError("shutting_down", "the service is draining")
        if spec is None:
            if speed_functions is None:
                raise ProtocolError(
                    "invalid_request", "register_fleet needs speed functions"
                )
            spec = fleet_spec_from_speed_functions(
                speed_functions,
                name=name,
                algorithm=algorithm,
                options=options,
                cache_size=cache_size,
            )
        fleet = Fleet(
            speed_functions_from_fleet_spec(spec), name=spec.get("name") or None
        )
        known = self._fleets.get(fleet.fingerprint)
        if known is not None and known["spec"] == dict(spec):
            return dict(known["info"])
        future = self.pool.register(spec, fleet.fingerprint)
        payload = await asyncio.wrap_future(future)
        if not payload.get("ok"):
            raise ProtocolError(
                payload.get("code", "internal"),
                payload.get("message", "fleet registration failed"),
            )
        if payload["fingerprint"] != fleet.fingerprint:  # pragma: no cover
            raise ProtocolError(
                "internal",
                "worker fingerprint mismatch: "
                f"{payload['fingerprint']} != {fleet.fingerprint}",
            )
        info = {
            "fingerprint": fleet.fingerprint,
            "name": fleet.name,
            "p": fleet.p,
            "capacity": fleet.capacity,
            "algorithm": spec.get("algorithm", "bisection"),
            "shard": self.pool.shard_for(fleet.fingerprint),
        }
        self._fleets[fleet.fingerprint] = {"spec": dict(spec), "info": info}
        logger.info(
            "fleet registered",
            extra={"fingerprint": fleet.fingerprint, "p": fleet.p,
                   "shard": info["shard"]},
        )
        return dict(info)

    def _deadline_for(self, timeout_ms: float | None) -> float | None:
        if timeout_ms is None:
            timeout_ms = self._config.default_timeout_ms
        if timeout_ms is None:
            return None
        return time.time() + timeout_ms / 1000.0

    # -- plan paths -----------------------------------------------------
    async def plan(
        self,
        fingerprint: str,
        n: int,
        *,
        timeout_ms: float | None = None,
        allocation: bool = True,
    ) -> dict:
        """One plan query through the micro-batcher (an item dict back)."""
        if self._draining:
            return _item_error("shutting_down", "the service is draining")
        if fingerprint not in self._fleets:
            return _item_error(
                "unknown_fleet", f"fleet {fingerprint!r} is not registered"
            )
        assert self._loop is not None
        pending = _Pending(
            int(n), self._deadline_for(timeout_ms), allocation,
            self._loop.create_future(),
        )
        state = self._batches.get(fingerprint)
        if state is None:
            state = _BatchState()
            self._batches[fingerprint] = state
            state.timer = self._loop.call_later(
                self._config.batch_window, self._flush, fingerprint
            )
        state.items.append(pending)
        if len(state.items) >= self._config.max_batch:
            self._flush(fingerprint)
        return await pending.future

    async def plan_many(
        self,
        fingerprint: str,
        ns: Sequence[int],
        *,
        timeout_ms: float | None = None,
        allocation: bool = True,
    ) -> list[dict]:
        """A caller-assembled batch: dispatched directly, no window."""
        if self._draining:
            return [_item_error("shutting_down", "the service is draining")] * len(ns)
        if fingerprint not in self._fleets:
            return [
                _item_error("unknown_fleet", f"fleet {fingerprint!r} is not registered")
            ] * len(ns)
        deadline = self._deadline_for(timeout_ms)
        assert self._loop is not None
        pendings = [
            _Pending(int(n), deadline, allocation, self._loop.create_future())
            for n in ns
        ]
        self._dispatch(fingerprint, pendings)
        return list(await asyncio.gather(*(p.future for p in pendings)))

    def _flush(self, fingerprint: str) -> None:
        state = self._batches.pop(fingerprint, None)
        if state is None:
            return
        if state.timer is not None:
            state.timer.cancel()
        self._dispatch(fingerprint, state.items)

    def _dispatch(self, fingerprint: str, pendings: list[_Pending]) -> None:
        """Hand one batch to the owning shard (or shed it, all at once)."""
        if not pendings:
            return
        items = [
            {"n": p.n, "deadline": p.deadline, "allocation": p.allocation}
            for p in pendings
        ]
        try:
            future = self.pool.submit_batch(fingerprint, items)
        except ReproError as exc:
            err = _item_error("shutting_down", str(exc))
            for p in pendings:
                if not p.future.done():
                    p.future.set_result(dict(err))
            return
        if future is None:
            self._shed.inc(len(pendings))
            err = _item_error(
                "overloaded",
                f"shard {self.pool.shard_for(fingerprint)} queue is full "
                f"(depth {self.pool.queue_depth})",
            )
            for p in pendings:
                if not p.future.done():
                    p.future.set_result(dict(err))
            return
        self._batches_flushed.inc()
        self._batch_size.observe(len(pendings))
        task = asyncio.ensure_future(self._deliver(future, pendings))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _deliver(self, future, pendings: list[_Pending]) -> None:
        payload = await asyncio.wrap_future(future)
        results = payload.get("results") if payload.get("ok") else None
        if results is None or len(results) != len(pendings):
            err = _item_error(
                payload.get("code", "internal"),
                payload.get("message", "malformed worker payload"),
            )
            results = [dict(err) for _ in pendings]
        for p, result in zip(pendings, results):
            if not p.future.done():
                p.future.set_result(result)

    # -- health / stats -------------------------------------------------
    def health(self) -> dict:
        """Cheap liveness summary (no worker round-trip)."""
        pool = self._pool
        return {
            "status": "draining" if self._draining else "ok",
            "shards": 0 if pool is None else pool.shards,
            "worker_mode": self._config.worker_mode,
            "fleets": len(self._fleets),
            "queue_depths": [] if pool is None else pool.queue_depths(),
            "uptime_seconds": max(0.0, time.time() - self._started_at),
        }

    async def stats(self) -> dict:
        """Front-end counters plus per-shard planner/cache counters."""
        shards = []
        if self._pool is not None and not self._pool.closed:
            payloads = await asyncio.gather(
                *(asyncio.wrap_future(f) for f in self._pool.stats_all())
            )
            shards = [p for p in payloads if p.get("ok")]
        return {
            "requests": int(self._requests.value),
            "responses_ok": int(self._responses_ok.value),
            "responses_error": int(self._responses_err.value),
            "shed": int(self._shed.value),
            "batches": int(self._batches_flushed.value),
            "fleets": {
                fp: dict(entry["info"]) for fp, entry in self._fleets.items()
            },
            "shards": shards,
            "queue_depths": [] if self._pool is None else self._pool.queue_depths(),
        }

    # -- protocol dispatch ----------------------------------------------
    async def handle(self, raw: Any) -> dict:
        """One decoded frame in, one response dict out (never raises)."""
        self._requests.inc()
        req_id = raw.get("id") if isinstance(raw, Mapping) else None
        started = time.perf_counter()
        op = "invalid"
        try:
            request = parse_request(raw)
            op = request.op
            if isinstance(request, PlanRequest):
                item = await self.plan(
                    request.fleet,
                    request.n,
                    timeout_ms=request.timeout_ms,
                    allocation=request.allocation,
                )
                if item.get("ok"):
                    response = ok_response(request.id, item)
                else:
                    response = error_response(
                        request.id, item["code"], item["message"]
                    )
            elif isinstance(request, PlanManyRequest):
                items = await self.plan_many(
                    request.fleet,
                    request.ns,
                    timeout_ms=request.timeout_ms,
                    allocation=request.allocation,
                )
                # Batch responses are always ok at the envelope level;
                # each item carries its own verdict.
                response = ok_response(request.id, {"results": items})
            elif isinstance(request, RegisterFleetRequest):
                info = await self.register_fleet(
                    spec=fleet_spec_from_speed_functions(
                        speed_functions_from_fleet_spec(
                            {"speed_functions": request.speed_functions}
                        ),
                        name=request.name,
                        algorithm=request.algorithm,
                        options=request.options,
                        cache_size=request.cache_size,
                    )
                )
                response = ok_response(request.id, info)
            elif isinstance(request, StatsRequest):
                response = ok_response(request.id, await self.stats())
            else:
                assert isinstance(request, HealthRequest)
                response = ok_response(request.id, self.health())
        except ProtocolError as exc:
            response = error_response(req_id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - the envelope must not leak
            logger.exception("request handling failed")
            response = error_response(req_id, error_code_for(exc), str(exc))
        if obs.is_enabled():
            self._latency[op if op in self._latency else "invalid"].observe(
                time.perf_counter() - started
            )
        (self._responses_ok if response["ok"] else self._responses_err).inc()
        return response

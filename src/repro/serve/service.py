"""The planning service: batching, admission control, op dispatch.

:class:`PlanningService` is the transport-agnostic heart of
:mod:`repro.serve`.  The TCP and HTTP listeners, the smoke target and the
unit tests all feed decoded request objects into :meth:`PlanningService.handle`
and get response dicts back; everything below that call is this module:

**Micro-batching.**  Concurrent ``plan`` requests for the same fleet
fingerprint are coalesced: the first arrival opens a batching window
(``batch_window`` seconds, scheduled on the event loop), later arrivals
append, and the window closing — or the batch reaching ``max_batch`` —
flushes the whole group to the owning shard as *one*
:meth:`~repro.planner.Planner.plan_many` job.  The planner solves the
batch in a single monotone slope sweep, so a window of k concurrent
queries costs roughly one warm solve plus k−1 bracket repairs instead of
k independent solves.  ``plan_many`` requests are already batches and
bypass the window.

**Admission control.**  Shard inboxes are bounded; when the owning
shard's queue is full the whole flushed batch is shed immediately with
``overloaded`` item responses — queue depth, not latency, is the
backpressure signal.  Requests carry optional deadlines which workers
check at dequeue time, so a backlog never wastes solves on expired work.
During drain, new requests are refused with ``shutting_down`` while
every in-flight batch completes.

All of it is observable: per-op request counters and latency histograms,
batch-size histograms, shed counters and queue-depth gauges land in the
global :mod:`repro.obs` registry and flow out of the HTTP ``/metrics``
endpoint via the existing Prometheus exporter.
"""

from __future__ import annotations

import asyncio
import copy
import functools
import logging
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from .. import obs
from ..core.options import PartitionOptions
from ..exceptions import ConfigurationError, ReproError
from ..model.builder import DEFAULT_EPSILON, ModelBuildOptions
from ..model.online import OnlineBandRefitter
from ..obs.context import TraceContext
from ..obs.flight import FlightRecorder, RequestTrace
from ..obs.sink import FleetTelemetrySink, Observation
from ..obs.spans import Span
from ..planner import Fleet
from .protocol import (
    HealthRequest,
    ObserveRequest,
    PlanManyRequest,
    PlanRequest,
    ProtocolError,
    RegisterFleetRequest,
    StatsRequest,
    error_code_for,
    error_response,
    fleet_spec_from_speed_functions,
    ok_response,
    parse_request,
    speed_functions_from_fleet_spec,
)
from .shard import ShardPool
from .tenancy import QuotaManager, TenancyConfig

__all__ = ["OnlineRefitConfig", "ServeConfig", "PlanningService"]

logger = logging.getLogger(__name__)

#: Batch-size histogram buckets (requests per flushed batch).
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class OnlineRefitConfig:
    """Knobs of the serve layer's online band re-fitting.

    Attributes
    ----------
    eps:
        Half-width of the acceptance band observations are judged
        against (the paper's 5 %).
    min_observations:
        A fleet's refit check runs once at least this many step
        observations accumulated since the last check (amortises the
        refit pass; the telemetry sink's recent deque bounds how many a
        pass can see).
    min_escaped:
        A band segment is re-fitted only once at least this many
        observations escaped it (noise patience, forwarded to
        :class:`repro.model.OnlineBandRefitter`).
    """

    eps: float = DEFAULT_EPSILON
    min_observations: int = 128
    min_escaped: int = 3

    def __post_init__(self) -> None:
        if not (0 < self.eps < 1):
            raise ConfigurationError(f"eps must be in (0, 1), got {self.eps!r}")
        if self.min_observations < 1:
            raise ConfigurationError(
                f"min_observations must be at least 1, got {self.min_observations!r}"
            )
        if self.min_escaped < 1:
            raise ConfigurationError(
                f"min_escaped must be at least 1, got {self.min_escaped!r}"
            )


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for the planning service (see ``docs/serving.md``).

    Attributes
    ----------
    shards:
        Worker count.  Each fleet lives on exactly one shard, so shards
        scale *fleet* parallelism, not single-fleet throughput.
    worker_mode:
        ``"thread"`` or ``"process"`` shard workers.
    batch_window:
        Seconds the first request of a batch waits for company.  ``0``
        still coalesces requests that arrive in the same event-loop
        tick; larger windows trade p50 latency for throughput.
    max_batch:
        Flush early once a window holds this many requests.
    queue_depth:
        Per-shard inbox bound in jobs — the admission limit.
    default_timeout_ms:
        Deadline applied to requests that do not carry their own
        ``timeout_ms`` (``None`` = no deadline).
    host / port / http_port:
        Listener addresses for :class:`~repro.serve.server.PlanServer`
        (``port=0`` picks an ephemeral port; ``http_port=None`` disables
        the HTTP listener).
    node_id:
        Optional member name when this server runs as one node of a
        :mod:`repro.cluster` deployment; surfaced in ``health`` and
        ``stats`` so the router and the aggregating CLI can label
        per-node columns.  Empty for a standalone server.
    tracing:
        Per-request distributed tracing (independent of the global
        :func:`repro.obs.enable` switch): every ``plan`` / ``plan_many``
        request gets a trace id, a span tree stitched across the shard
        boundary, a latency exemplar, and a flight-recorder entry.  Off,
        requests are counted as *sampled* and only client-supplied trace
        ids are echoed.
    flight_capacity / flight_retain / flight_slow_k:
        Flight-recorder bounds: recent-trace ring size, always-retain
        (error/shed/deadline) store cap, and top-K-slowest store size.
    online_refit:
        When set, ``observe`` requests feed an
        :class:`repro.model.OnlineBandRefitter` per fleet: observed
        ``(size, speed)`` points that escape a registered model's ±eps
        band trigger a re-fit of exactly the escaped size intervals, the
        owning shard swaps the refreshed model in, and only that fleet's
        cached plans are invalidated.  ``None`` (the default) still
        accepts ``observe`` requests but only records telemetry.
    tenancy:
        Per-tenant quotas and fair-queueing weights
        (:class:`~repro.serve.tenancy.TenancyConfig`).  ``None`` (the
        default) leaves every tenant unmetered at weight 1.0 — the shard
        inboxes still schedule fairly *across* whatever tenant names
        requests carry, and requests without a ``tenant`` field share
        one default lane, exactly like the FIFO they replaced.
    idempotency_window:
        How many completed ``plan``/``plan_many`` responses to remember
        per server for ``idempotency_key`` dedup (0 disables).  Within
        the window a retried key returns the original response without a
        second solve; concurrent duplicates coalesce onto one solve.
    warm_tier / warm_tier_size:
        Keep a pool-wide warm plan store behind every shard's LRU (see
        :class:`~repro.planner.tiered.TieredPlanCache`), so shard
        restarts and rebalances re-warm instead of cold-starting;
        ``warm_tier_size`` bounds its entries.
    """

    shards: int = 2
    worker_mode: str = "thread"
    batch_window: float = 0.002
    max_batch: int = 64
    queue_depth: int = 128
    default_timeout_ms: float | None = None
    host: str = "127.0.0.1"
    port: int = 0
    http_port: int | None = None
    node_id: str = ""
    tracing: bool = True
    flight_capacity: int = 256
    flight_retain: int = 1024
    flight_slow_k: int = 16
    online_refit: OnlineRefitConfig | None = None
    tenancy: TenancyConfig | None = None
    idempotency_window: int = 1024
    warm_tier: bool = True
    warm_tier_size: int = 4096


class _Pending:
    """One plan request waiting inside a batching window.

    ``trace`` / ``span`` are the request's distributed-tracing identity
    and its listener-side root span; both are ``None`` when serve-level
    tracing is off.  A whole ``plan_many`` request shares one span
    object across its pendings (the batch subtree attaches once).
    """

    __slots__ = ("n", "deadline", "allocation", "future", "trace", "span")

    def __init__(
        self,
        n: int,
        deadline: float | None,
        allocation: bool,
        future,
        trace: TraceContext | None = None,
        span: Span | None = None,
    ):
        self.n = n
        self.deadline = deadline
        self.allocation = allocation
        self.future = future
        self.trace = trace
        self.span = span


class _BatchState:
    """The open batching window for one ``(fingerprint, tenant)`` pair.

    Windows are per tenant so every flushed batch is single-tenant —
    the unit the shard inbox's weighted fair queue schedules.
    """

    __slots__ = ("items", "timer")

    def __init__(self):
        self.items: list[_Pending] = []
        self.timer = None


class _IdempotencyWindow:
    """Bounded dedup window for ``idempotency_key`` requests.

    Event-loop confined (no locks): ``lookup`` and ``reserve`` run
    back-to-back with no ``await`` between them, so check-then-reserve
    is atomic.  Completed **ok** responses are remembered (LRU, at most
    ``capacity``); in-flight keys hold a future concurrent duplicates
    coalesce onto.  Error responses complete waiters but are *not*
    remembered — a retry after a transient failure gets a fresh attempt.
    """

    def __init__(self, capacity: int):
        self._capacity = int(capacity)
        self._done: OrderedDict[Hashable, Any] = OrderedDict()
        self._pending: dict[Hashable, asyncio.Future] = {}
        registry = obs.get_registry()
        self._hits = registry.counter(
            "serve.idempotent.hits",
            help="requests answered from the completed-response window",
        )
        self._coalesced = registry.counter(
            "serve.idempotent.coalesced",
            help="concurrent duplicates attached to an in-flight solve",
        )
        self._misses = registry.counter(
            "serve.idempotent.misses",
            help="idempotency keys that started a fresh solve",
        )
        self._evictions = registry.counter(
            "serve.idempotent.evictions",
            help="remembered responses aged out of the window",
        )

    @property
    def enabled(self) -> bool:
        return self._capacity > 0

    def lookup(self, key: Hashable):
        """``("done", value)``, ``("pending", future)`` or ``None``."""
        if key in self._done:
            self._done.move_to_end(key)
            self._hits.inc()
            return ("done", self._done[key])
        fut = self._pending.get(key)
        if fut is not None:
            self._coalesced.inc()
            return ("pending", fut)
        return None

    def reserve(self, key: Hashable, loop: asyncio.AbstractEventLoop) -> None:
        self._misses.inc()
        self._pending[key] = loop.create_future()

    def complete(self, key: Hashable, value: Any, *, ok: bool) -> None:
        fut = self._pending.pop(key, None)
        if fut is not None and not fut.done():
            fut.set_result(value)
        if ok:
            self._done[key] = value
            self._done.move_to_end(key)
            while len(self._done) > self._capacity:
                self._done.popitem(last=False)
                self._evictions.inc()

    def stats(self) -> dict:
        return {
            "window": self._capacity,
            "remembered": len(self._done),
            "in_flight": len(self._pending),
            "hits": int(self._hits.value),
            "coalesced": int(self._coalesced.value),
            "misses": int(self._misses.value),
            "evictions": int(self._evictions.value),
        }


class _RefitState:
    """Online-refit bookkeeping for one registered fleet.

    The fleet keeps its *serving* fingerprint (clients and the shard
    hash ring keep addressing it by the fingerprint it registered
    under); ``model_fingerprint`` tracks the model actually planning,
    and moves every time a refit lands.
    """

    __slots__ = ("refitter", "model_fingerprint", "pending", "busy",
                 "refits", "invalidated")

    def __init__(self, refitter: OnlineBandRefitter, model_fingerprint: str):
        self.refitter = refitter
        self.model_fingerprint = model_fingerprint
        self.pending = 0          # observations since the last refit check
        self.busy = False         # a refit check/swap is in flight
        self.refits = 0           # refits applied to this fleet
        self.invalidated = 0      # cached plans dropped by those refits


def _item_error(code: str, message: str) -> dict:
    return {"ok": False, "code": code, "message": message}


class PlanningService:
    """Async service answering protocol requests over a shard pool.

    Construct, then ``await start()`` from the event loop that will call
    :meth:`handle`.  All batching state is touched only from that loop,
    so it needs no locks; the shard pool does its own synchronisation.
    """

    def __init__(self, config: ServeConfig | None = None):
        self._config = config or ServeConfig()
        self._pool: ShardPool | None = None
        self._fleets: dict[str, dict] = {}
        self._refits: dict[str, _RefitState] = {}
        self._batches: dict[tuple[str, str], _BatchState] = {}
        self._inflight: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._started_at = time.time()

        registry = obs.get_registry()
        self._latency = {
            op: registry.histogram(
                "serve.request.seconds",
                labels={"op": op},
                help="front-end latency per request, by operation",
            )
            for op in (
                "plan", "plan_many", "register_fleet", "observe", "health",
                "stats", "invalid",
            )
        }
        self._requests = registry.counter(
            "serve.requests", help="requests received, all operations"
        )
        self._responses_ok = registry.counter(
            "serve.responses", labels={"status": "ok"}, help="responses by status"
        )
        self._responses_err = registry.counter(
            "serve.responses", labels={"status": "error"}, help="responses by status"
        )
        self._shed = registry.counter(
            "serve.shed", help="plan requests shed with an overloaded response"
        )
        self._batch_size = registry.histogram(
            "serve.batch.size",
            buckets=_BATCH_BUCKETS,
            help="plan requests per flushed micro-batch",
        )
        self._batches_flushed = registry.counter(
            "serve.batches", help="micro-batches flushed to shards"
        )
        self._quotas = QuotaManager(self._config.tenancy)
        self._idem = _IdempotencyWindow(self._config.idempotency_window)
        self._tenant_counters: dict[tuple[str, str], Any] = {}

        cfg = self._config
        self._tracing = bool(cfg.tracing)
        # The recorder and sink exist even with tracing off, so the
        # /debug/traces route and the stats shape stay stable (the
        # recorder then only counts sampled-away requests).
        self._recorder = FlightRecorder(
            cfg.flight_capacity,
            retain_capacity=cfg.flight_retain,
            slow_k=cfg.flight_slow_k,
        )
        self._sink = FleetTelemetrySink()

    # -- lifecycle ------------------------------------------------------
    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pool(self) -> ShardPool:
        if self._pool is None:
            raise RuntimeError("the service has not been started")
        return self._pool

    @property
    def recorder(self) -> FlightRecorder:
        """The flight recorder holding recently completed request traces."""
        return self._recorder

    @property
    def sink(self) -> FleetTelemetrySink:
        """The per-fleet telemetry sink of observed solve timings."""
        return self._sink

    async def start(self) -> None:
        """Spin up the shard pool; must run on the serving event loop."""
        if self._pool is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._started_at = time.time()
        cfg = self._config
        self._pool = ShardPool(
            cfg.shards,
            mode=cfg.worker_mode,
            queue_depth=cfg.queue_depth,
            warm_tier=cfg.warm_tier,
            warm_tier_size=cfg.warm_tier_size,
        )
        logger.info(
            "planning service started",
            extra={
                "shards": cfg.shards, "mode": cfg.worker_mode,
                "batch_window": cfg.batch_window, "queue_depth": cfg.queue_depth,
            },
        )

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight batches.

        Every request admitted before the drain started gets a real
        response; the shard pool is then closed with ``drain=True`` so
        queued jobs complete before the workers exit.
        """
        if self._pool is None or self._draining:
            self._draining = True
            return
        self._draining = True
        for key in list(self._batches):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        pool = self._pool
        assert self._loop is not None
        await self._loop.run_in_executor(
            None, functools.partial(pool.close, drain=True)
        )
        logger.info("planning service drained")

    # -- fleet registry -------------------------------------------------
    async def register_fleet(
        self,
        speed_functions: Sequence | None = None,
        *,
        spec: Mapping | None = None,
        name: str = "",
        algorithm: str = "bisection",
        options: PartitionOptions | None = None,
        cache_size: int = 1024,
    ) -> dict:
        """Register a fleet (from objects or a wire spec) on its shard.

        The fleet is built here first — validating the models and fixing
        the content fingerprint — then shipped to the owning worker,
        which must arrive at the *same* fingerprint (the protocol's JSON
        records preserve knot content exactly).  Re-registering an
        existing fingerprint is idempotent unless the planner options
        changed, in which case the shard's planner is rebuilt.
        """
        if self._draining:
            raise ProtocolError("shutting_down", "the service is draining")
        if spec is None:
            if speed_functions is None:
                raise ProtocolError(
                    "invalid_request", "register_fleet needs speed functions"
                )
            spec = fleet_spec_from_speed_functions(
                speed_functions,
                name=name,
                algorithm=algorithm,
                options=options,
                cache_size=cache_size,
            )
        fleet = Fleet(
            speed_functions_from_fleet_spec(spec), name=spec.get("name") or None
        )
        known = self._fleets.get(fleet.fingerprint)
        if known is not None and known["spec"] == dict(spec):
            return dict(known["info"])
        future = self.pool.register(spec, fleet.fingerprint)
        payload = await asyncio.wrap_future(future)
        if not payload.get("ok"):
            raise ProtocolError(
                payload.get("code", "internal"),
                payload.get("message", "fleet registration failed"),
            )
        if payload["fingerprint"] != fleet.fingerprint:  # pragma: no cover
            raise ProtocolError(
                "internal",
                "worker fingerprint mismatch: "
                f"{payload['fingerprint']} != {fleet.fingerprint}",
            )
        info = {
            "fingerprint": fleet.fingerprint,
            "name": fleet.name,
            "p": fleet.p,
            "capacity": fleet.capacity,
            "algorithm": spec.get("algorithm", "bisection"),
            "shard": self.pool.shard_for(fleet.fingerprint),
            "model_fingerprint": fleet.fingerprint,
        }
        self._fleets[fleet.fingerprint] = {"spec": dict(spec), "info": info}
        refit_cfg = self._config.online_refit
        if refit_cfg is not None:
            self._refits[fleet.fingerprint] = _RefitState(
                OnlineBandRefitter(
                    fleet.speed_functions,
                    options=ModelBuildOptions(eps=refit_cfg.eps),
                    min_escaped=refit_cfg.min_escaped,
                    name=fleet.name or "online-refit",
                ),
                fleet.fingerprint,
            )
        logger.info(
            "fleet registered",
            extra={"fingerprint": fleet.fingerprint, "p": fleet.p,
                   "shard": info["shard"]},
        )
        return dict(info)

    def _deadline_for(self, timeout_ms: float | None) -> float | None:
        if timeout_ms is None:
            timeout_ms = self._config.default_timeout_ms
        if timeout_ms is None:
            return None
        return time.time() + timeout_ms / 1000.0

    # -- tenancy --------------------------------------------------------
    def _tenant_counter(self, kind: str, tenant: str):
        """Lazy per-tenant counter (``serve.tenant.<kind>``)."""
        key = (kind, tenant)
        counter = self._tenant_counters.get(key)
        if counter is None:
            counter = obs.get_registry().counter(
                f"serve.tenant.{kind}",
                labels={"tenant": tenant or "default"},
                help=f"plan requests {kind} per tenant",
            )
            self._tenant_counters[key] = counter
        return counter

    def _throttle(self, tenant: str, cost: float) -> dict | None:
        """Charge ``cost`` against the tenant's bucket; an error item if broke."""
        self._tenant_counter("requests", tenant).inc()
        if self._quotas.try_acquire(tenant, cost):
            return None
        self._tenant_counter("throttled", tenant).inc()
        return _item_error(
            "throttled",
            f"tenant {tenant or 'default'!r} exceeded its request quota",
        )

    # -- plan paths -----------------------------------------------------
    async def plan(
        self,
        fingerprint: str,
        n: int,
        *,
        timeout_ms: float | None = None,
        allocation: bool = True,
        trace: TraceContext | None = None,
        span: Span | None = None,
        tenant: str = "",
        idempotency_key: str | None = None,
    ) -> dict:
        """One plan query through the micro-batcher (an item dict back).

        ``trace`` / ``span`` carry the request's tracing identity and
        listener-side root span through the batching window; the shard's
        captured subtree is stitched under ``span`` on delivery.
        ``tenant`` selects the fair-queueing lane and quota bucket;
        ``idempotency_key`` dedups retries within the server's window.
        """
        if self._draining:
            return _item_error("shutting_down", "the service is draining")
        if fingerprint not in self._fleets:
            return _item_error(
                "unknown_fleet", f"fleet {fingerprint!r} is not registered"
            )
        assert self._loop is not None
        idem_key = None
        if idempotency_key is not None and self._idem.enabled:
            idem_key = (fingerprint, "plan", tenant, idempotency_key)
            found = self._idem.lookup(idem_key)
            if found is not None:
                kind, value = found
                if kind == "pending":
                    value = await value
                return copy.deepcopy(value)
        throttled = self._throttle(tenant, 1.0)
        if throttled is not None:
            return throttled
        if idem_key is not None:
            self._idem.reserve(idem_key, self._loop)
        pending = _Pending(
            int(n), self._deadline_for(timeout_ms), allocation,
            self._loop.create_future(), trace, span,
        )
        key = (fingerprint, tenant)
        state = self._batches.get(key)
        if state is None:
            state = _BatchState()
            self._batches[key] = state
            state.timer = self._loop.call_later(
                self._config.batch_window, self._flush, key
            )
        state.items.append(pending)
        if len(state.items) >= self._config.max_batch:
            self._flush(key)
        item = _item_error("internal", "plan future abandoned")
        try:
            item = await pending.future
            return item
        finally:
            if idem_key is not None:
                self._idem.complete(
                    idem_key, copy.deepcopy(item), ok=bool(item.get("ok"))
                )

    async def plan_many(
        self,
        fingerprint: str,
        ns: Sequence[int],
        *,
        timeout_ms: float | None = None,
        allocation: bool = True,
        trace: TraceContext | None = None,
        span: Span | None = None,
        tenant: str = "",
        idempotency_key: str | None = None,
    ) -> list[dict]:
        """A caller-assembled batch: dispatched directly, no window."""
        if self._draining:
            return [_item_error("shutting_down", "the service is draining")] * len(ns)
        if fingerprint not in self._fleets:
            return [
                _item_error("unknown_fleet", f"fleet {fingerprint!r} is not registered")
            ] * len(ns)
        assert self._loop is not None
        idem_key = None
        if idempotency_key is not None and self._idem.enabled:
            idem_key = (fingerprint, "plan_many", tenant, idempotency_key)
            found = self._idem.lookup(idem_key)
            if found is not None:
                kind, value = found
                if kind == "pending":
                    value = await value
                return copy.deepcopy(value)
        throttled = self._throttle(tenant, float(len(ns)))
        if throttled is not None:
            return [dict(throttled) for _ in ns]
        if idem_key is not None:
            self._idem.reserve(idem_key, self._loop)
        deadline = self._deadline_for(timeout_ms)
        pendings = [
            _Pending(int(n), deadline, allocation, self._loop.create_future(),
                     trace, span)
            for n in ns
        ]
        self._dispatch((fingerprint, tenant), pendings)
        items = [_item_error("internal", "plan future abandoned")] * len(ns)
        try:
            items = list(await asyncio.gather(*(p.future for p in pendings)))
            return items
        finally:
            if idem_key is not None:
                self._idem.complete(
                    idem_key,
                    copy.deepcopy(items),
                    ok=all(it.get("ok") for it in items),
                )

    def _flush(self, key: tuple[str, str]) -> None:
        state = self._batches.pop(key, None)
        if state is None:
            return
        if state.timer is not None:
            state.timer.cancel()
        self._dispatch(key, state.items)

    def _dispatch(self, key: tuple[str, str], pendings: list[_Pending]) -> None:
        """Hand one single-tenant batch to the owning shard (or shed it)."""
        if not pendings:
            return
        fingerprint, tenant = key
        items = []
        for p in pendings:
            item = {"n": p.n, "deadline": p.deadline, "allocation": p.allocation}
            if p.trace is not None:
                item["span_id"] = p.trace.span_id
            items.append(item)
        # A micro-batch may coalesce requests from different traces; the
        # first traced request's context rides on the wire and the batch
        # subtree is re-tagged per request at fan-out (_deliver).
        batch_trace = next((p.trace for p in pendings if p.trace is not None), None)
        try:
            future = self.pool.submit_batch(
                fingerprint,
                items,
                trace=None if batch_trace is None else batch_trace.to_dict(),
                tenant=tenant,
                weight=self._quotas.weight_for(tenant),
            )
        except ReproError as exc:
            err = _item_error("shutting_down", str(exc))
            for p in pendings:
                if not p.future.done():
                    p.future.set_result(dict(err))
            return
        if future is None:
            self._shed.inc(len(pendings))
            self._tenant_counter("shed", tenant).inc(len(pendings))
            err = _item_error(
                "overloaded",
                f"shard {self.pool.shard_for(fingerprint)} queue is full "
                f"(depth {self.pool.queue_depth})",
            )
            for p in pendings:
                if not p.future.done():
                    p.future.set_result(dict(err))
            return
        self._batches_flushed.inc()
        self._batch_size.observe(len(pendings))
        task = asyncio.ensure_future(self._deliver(future, pendings))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _deliver(self, future, pendings: list[_Pending]) -> None:
        payload = await asyncio.wrap_future(future)
        results = payload.get("results") if payload.get("ok") else None
        if results is None or len(results) != len(pendings):
            err = _item_error(
                payload.get("code", "internal"),
                payload.get("message", "malformed worker payload"),
            )
            results = [dict(err) for _ in pendings]
        spans = payload.get("spans")
        attached: set[int] = set()
        for p, result in zip(pendings, results):
            if p.span is not None and spans is not None and id(p.span) not in attached:
                # Fan the shared batch subtree back out: every traced
                # request gets its own copy, re-tagged with its trace id
                # and re-rooted under its listener-side span (a
                # plan_many's pendings share one span — attach once).
                attached.add(id(p.span))
                subtree = Span.from_dict(spans)
                trace_id = p.trace.trace_id if p.trace is not None else p.span.trace_id
                for node in subtree.walk():
                    node.trace_id = trace_id
                subtree.parent_id = p.span.span_id
                p.span.children.append(subtree)
            if not p.future.done():
                p.future.set_result(result)

    # -- observe / online refit -----------------------------------------
    async def observe(
        self, fingerprint: str, observations: Sequence[Mapping]
    ) -> dict:
        """Ingest observed step timings for a fleet; maybe re-fit its model.

        Every record lands in the telemetry sink regardless of
        configuration.  With ``ServeConfig.online_refit`` set, once
        enough observations accumulate a refit check runs: the recent
        window is escape-tested against the fleet's current ±eps band
        and, if the model drifted, the owning shard swaps in the
        re-fitted model and drops exactly that fleet's cached plans.
        The response reports ``accepted`` and, when a refit landed this
        call, a ``refit`` document with the new model fingerprint.
        """
        if self._draining:
            raise ProtocolError("shutting_down", "the service is draining")
        if fingerprint not in self._fleets:
            raise ProtocolError(
                "unknown_fleet", f"fleet {fingerprint!r} is not registered"
            )
        parsed = []
        for i, raw in enumerate(observations):
            try:
                parsed.append(Observation.from_wire(raw))
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    "invalid_request", f"observations[{i}]: {exc}"
                ) from exc
        for rec in parsed:
            self._sink.observe(fingerprint, rec)
        refit_doc = None
        state = self._refits.get(fingerprint)
        if state is not None:
            state.pending += len(parsed)
            cfg = self._config.online_refit
            if cfg is not None and state.pending >= cfg.min_observations \
                    and not state.busy:
                refit_doc = await self._maybe_refit(fingerprint, state)
        return {"accepted": len(parsed), "refit": refit_doc}

    async def _maybe_refit(self, fingerprint: str, state: _RefitState) -> dict | None:
        """One refit check; returns a summary document if a refit landed.

        The escape test and trisection run off-loop (pure CPU over the
        recent-observation window); the model swap is one control-plane
        round-trip to the owning shard, which also invalidates exactly
        this fleet's cached plans before rebuilding its planner.
        """
        state.busy = True
        try:
            recent = self._sink.recent(fingerprint)
            state.pending = 0
            assert self._loop is not None
            refit = await self._loop.run_in_executor(
                None, state.refitter.refit, recent
            )
            if not refit.changed:
                return None
            entry = self._fleets[fingerprint]
            old_spec = entry["spec"]
            spec = fleet_spec_from_speed_functions(
                refit.functions,
                name=old_spec.get("name", ""),
                algorithm=old_spec.get("algorithm", "bisection"),
                options=PartitionOptions(
                    mode=old_spec.get("mode", PartitionOptions().mode),
                    refine=old_spec.get("refine", PartitionOptions().refine),
                ),
                cache_size=int(old_spec.get("cache_size", 1024)),
            )
            future = self.pool.refit(
                fingerprint, spec, old_fingerprint=state.model_fingerprint
            )
            payload = await asyncio.wrap_future(future)
            if not payload.get("ok"):
                raise ProtocolError(
                    payload.get("code", "internal"),
                    payload.get("message", "model refit failed"),
                )
            if payload["fingerprint"] != refit.fingerprint_after:  # pragma: no cover
                raise ProtocolError(
                    "internal",
                    "worker refit fingerprint mismatch: "
                    f"{payload['fingerprint']} != {refit.fingerprint_after}",
                )
            invalidated = int(payload.get("invalidated", 0))
            state.model_fingerprint = refit.fingerprint_after
            state.refits += 1
            state.invalidated += invalidated
            state.refitter = OnlineBandRefitter(
                refit.functions,
                options=state.refitter.options,
                min_escaped=state.refitter.min_escaped,
                name=entry["info"].get("name") or "online-refit",
            )
            entry["info"]["model_fingerprint"] = refit.fingerprint_after
            entry["spec"] = dict(spec)
            self._sink.clear_recent(fingerprint)
            logger.info(
                "fleet model refitted",
                extra={
                    "fingerprint": fingerprint,
                    "model_fingerprint": refit.fingerprint_after,
                    "machines": list(refit.refitted_machines),
                    "invalidated": invalidated,
                },
            )
            return {
                "fingerprint": refit.fingerprint_after,
                "machines": list(refit.refitted_machines),
                "invalidated": invalidated,
            }
        finally:
            state.busy = False

    # -- health / stats -------------------------------------------------
    def health(self) -> dict:
        """Cheap liveness summary (no worker round-trip)."""
        pool = self._pool
        return {
            "status": "draining" if self._draining else "ok",
            "node_id": self._config.node_id,
            "shards": 0 if pool is None else pool.shards,
            "worker_mode": self._config.worker_mode,
            "fleets": len(self._fleets),
            "queue_depths": [] if pool is None else pool.queue_depths(),
            "uptime_seconds": max(0.0, time.time() - self._started_at),
        }

    async def stats(self) -> dict:
        """Front-end counters plus per-shard planner/cache counters."""
        shards = []
        if self._pool is not None and not self._pool.closed:
            payloads = await asyncio.gather(
                *(asyncio.wrap_future(f) for f in self._pool.stats_all())
            )
            shards = [p for p in payloads if p.get("ok")]
        return {
            "node_id": self._config.node_id,
            "requests": int(self._requests.value),
            "responses_ok": int(self._responses_ok.value),
            "responses_error": int(self._responses_err.value),
            "shed": int(self._shed.value),
            "batches": int(self._batches_flushed.value),
            "fleets": {
                fp: dict(entry["info"]) for fp, entry in self._fleets.items()
            },
            "shards": shards,
            "queue_depths": [] if self._pool is None else self._pool.queue_depths(),
            "trace": self._recorder.stats(),
            "telemetry": {
                "cells": len(self._sink),
                "fingerprints": self._sink.fingerprints(),
            },
            "refit": self._refit_stats(),
            "tenancy": self._tenancy_stats(),
        }

    def _tenancy_stats(self) -> dict:
        """The stats() "tenancy" section: quotas, idempotency, warm tier."""
        tenants: dict[str, dict] = {}
        for (kind, tenant), counter in self._tenant_counters.items():
            tenants.setdefault(tenant or "default", {})[kind] = int(counter.value)
        pool = self._pool
        backlogs = {}
        if pool is not None and not pool.closed:
            backlogs = {
                tenant or "default": depth
                for tenant, depth in pool.tenant_backlogs().items()
            }
        return {
            "enabled": self._config.tenancy is not None,
            "tenants": tenants,
            "backlogs": backlogs,
            "idempotency": self._idem.stats(),
            "warm_tier": {"enabled": False} if pool is None or pool.closed
            else pool.warm_tier_stats(),
        }

    def _refit_stats(self) -> dict:
        """The stats() "refit" section: registry counters + per-fleet state."""
        registry = obs.get_registry()
        counters = {
            name: int(registry.counter(f"model.refit.{name}").value)
            for name in (
                "checks", "applied", "machines", "intervals",
                "observations", "measurements",
            )
        }
        return {
            "enabled": self._config.online_refit is not None,
            "counters": counters,
            "invalidated": sum(s.invalidated for s in self._refits.values()),
            "fleets": {
                fp: {
                    "refits": s.refits,
                    "invalidated": s.invalidated,
                    "model_fingerprint": s.model_fingerprint,
                    "pending": s.pending,
                }
                for fp, s in self._refits.items()
            },
        }

    # -- tracing --------------------------------------------------------
    def _open_trace(
        self, client: TraceContext | None, name: str, **attrs: Any
    ) -> tuple[TraceContext | None, Span | None]:
        """The request's own trace identity and listener-side root span.

        A client-supplied context stays the trace's identity (its span
        becomes our parent); otherwise a fresh trace is started.  With
        serve tracing off, no span is built — the request is counted as
        sampled and a client trace id is merely echoed.
        """
        if not self._tracing:
            self._recorder.note_sampled()
            return client, None
        ctx = client.child() if client is not None else TraceContext.new()
        root = Span(
            name=name,
            attrs=attrs,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id or "",
            started=time.time(),
        )
        return ctx, root

    def _close_trace(
        self,
        root: Span,
        op: str,
        status: str,
        fleet: str,
        n: int | None,
        started_wall: float,
        seconds: float,
    ) -> None:
        """Finish the request's root span and file it with the recorder."""
        root.seconds = seconds
        if status != "ok":
            root.status = "error"
            root.attrs["code"] = status
        self._recorder.record(
            RequestTrace(
                trace_id=root.trace_id,
                op=op,
                status=status,
                fleet=fleet,
                n=n,
                started=started_wall,
                seconds=seconds,
                root=root,
            )
        )
        if status == "ok" and fleet and n is not None:
            self._sink.observe_solve(fleet, n=n, seconds=seconds)

    # -- protocol dispatch ----------------------------------------------
    async def handle(self, raw: Any) -> dict:
        """One decoded frame in, one response dict out (never raises)."""
        self._requests.inc()
        req_id = raw.get("id") if isinstance(raw, Mapping) else None
        started = time.perf_counter()
        started_wall = time.time()
        op = "invalid"
        status = "ok"
        fleet, size = "", None
        trace_id: str | None = None
        root: Span | None = None
        try:
            request = parse_request(raw)
            op = request.op
            if isinstance(request, PlanRequest):
                fleet, size = request.fleet, request.n
                ctx, root = self._open_trace(request.trace, "serve.plan", n=request.n)
                trace_id = ctx.trace_id if ctx is not None else None
                item = await self.plan(
                    request.fleet,
                    request.n,
                    timeout_ms=request.timeout_ms,
                    allocation=request.allocation,
                    trace=ctx if root is not None else None,
                    span=root,
                    tenant=request.tenant,
                    idempotency_key=request.idempotency_key,
                )
                if item.get("ok"):
                    response = ok_response(request.id, item, trace_id=trace_id)
                else:
                    status = item["code"]
                    response = error_response(
                        request.id, item["code"], item["message"], trace_id=trace_id
                    )
            elif isinstance(request, PlanManyRequest):
                fleet = request.fleet
                ctx, root = self._open_trace(
                    request.trace, "serve.plan_many", count=len(request.ns)
                )
                trace_id = ctx.trace_id if ctx is not None else None
                items = await self.plan_many(
                    request.fleet,
                    request.ns,
                    timeout_ms=request.timeout_ms,
                    allocation=request.allocation,
                    trace=ctx if root is not None else None,
                    span=root,
                    tenant=request.tenant,
                    idempotency_key=request.idempotency_key,
                )
                # The envelope stays ok (each item carries its own
                # verdict); the recorder files the worst item code so
                # shed/expired batches land in the always-retain store.
                bad = next((it for it in items if not it.get("ok", False)), None)
                if bad is not None:
                    status = bad.get("code", "internal")
                response = ok_response(
                    request.id, {"results": items}, trace_id=trace_id
                )
            elif isinstance(request, RegisterFleetRequest):
                info = await self.register_fleet(
                    spec=fleet_spec_from_speed_functions(
                        speed_functions_from_fleet_spec(
                            {"speed_functions": request.speed_functions}
                        ),
                        name=request.name,
                        algorithm=request.algorithm,
                        options=request.options,
                        cache_size=request.cache_size,
                    )
                )
                response = ok_response(request.id, info)
            elif isinstance(request, ObserveRequest):
                fleet = request.fleet
                doc = await self.observe(request.fleet, request.observations)
                response = ok_response(request.id, doc)
            elif isinstance(request, StatsRequest):
                response = ok_response(request.id, await self.stats())
            else:
                assert isinstance(request, HealthRequest)
                response = ok_response(request.id, self.health())
        except ProtocolError as exc:
            status = exc.code
            response = error_response(req_id, exc.code, str(exc), trace_id=trace_id)
        except Exception as exc:  # noqa: BLE001 - the envelope must not leak
            logger.exception("request handling failed")
            status = error_code_for(exc)
            response = error_response(req_id, status, str(exc), trace_id=trace_id)
        elapsed = time.perf_counter() - started
        if obs.is_enabled() or root is not None:
            self._latency[op if op in self._latency else "invalid"].observe(
                elapsed, exemplar=trace_id
            )
        if root is not None:
            self._close_trace(root, op, status, fleet, size, started_wall, elapsed)
        (self._responses_ok if response["ok"] else self._responses_err).inc()
        return response

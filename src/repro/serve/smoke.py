"""End-to-end smoke: boot a server, fire mixed traffic, assert no errors.

``make serve-smoke`` runs this module (``python -m repro.serve.smoke``).
It boots a real server (TCP + HTTP listeners, threaded shards) on
ephemeral ports, registers the testbed fleet over the wire, fires a mix
of ``plan`` / ``plan_many`` / ``health`` / ``stats`` requests both
through the blocking client and the concurrent load generator, checks
every response against a directly computed plan *and* against the
independent optimality certificate (:mod:`repro.verify.certificate`),
scrapes ``/metrics``, and drains.  Exit code 0 means zero errors and
zero shed requests.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import urllib.request

import numpy as np

from ..experiments import build_network_models, tile_speed_functions
from ..machines import table2_network
from ..planner import Fleet, Planner
from ..verify import check_allocation
from .client import ServeClient, run_load
from .server import start_in_thread
from .service import ServeConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serve.smoke")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--p", type=int, default=24)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--flight-dump", default=os.environ.get("REPRO_FLIGHT_DUMP", ""),
        help="on failure, dump the flight recorder's traces to this NDJSON "
        "file (also read from $REPRO_FLIGHT_DUMP; CI uploads it as an "
        "artifact)",
    )
    args = parser.parse_args(argv)

    models = build_network_models(table2_network(), "matmul")
    sfs = tile_speed_functions(models, args.p)
    fleet = Fleet(sfs, name=f"smoke-p{args.p}")
    reference = Planner(fleet)

    config = ServeConfig(shards=args.shards, http_port=0, batch_window=0.001)
    failures = 0
    with start_in_thread(config) as handle:
        print(f"serve-smoke: listening on {handle.host}:{handle.port} "
              f"(http {handle.http_port})")
        with ServeClient(handle.host, handle.port) as client:
            info = client.register_fleet(sfs, name=fleet.name)
            fingerprint = info["fingerprint"]
            if fingerprint != fleet.fingerprint:
                print("FAIL: wire fingerprint differs from local fingerprint")
                failures += 1

            # Mixed sequential traffic through the blocking client.
            rng = np.random.default_rng(0)
            sizes = [int(n) for n in rng.integers(1e5, int(fleet.capacity), 16)]
            for n in sizes[:4]:
                got = client.plan(fingerprint, n)
                want = reference.plan(n)
                if got["makespan"] != float(want.makespan) or got[
                    "allocation"
                ] != [int(x) for x in want.allocation]:
                    print(f"FAIL: plan({n}) differs from the direct planner")
                    failures += 1
                # Independent optimality certificate for every served plan.
                cert = check_allocation(
                    got["allocation"], sfs, n=n, makespan=got["makespan"]
                )
                if not cert.ok:
                    print(f"FAIL: plan({n}) certificate: {cert.summary()}")
                    failures += 1
            batch = client.plan_many(fingerprint, sizes)
            bad = [item for item in batch if not item.get("ok")]
            if bad:
                print(f"FAIL: plan_many returned {len(bad)} item errors: {bad[:2]}")
                failures += 1
            for n, item in zip(sizes, batch):
                if not item.get("ok"):
                    continue
                cert = check_allocation(
                    item["allocation"], sfs, n=n, makespan=item["makespan"]
                )
                if not cert.ok:
                    print(f"FAIL: plan_many({n}) certificate: {cert.summary()}")
                    failures += 1
            if client.health()["status"] != "ok":
                print("FAIL: health is not ok")
                failures += 1

            # Concurrent mixed load through the pipelined generator.
            load_sizes = [sizes[i % len(sizes)] for i in range(args.requests)]
            report = run_load(
                handle.host, handle.port, fingerprint, load_sizes,
                concurrency=args.concurrency,
            )
            print(f"serve-smoke: load {report.summary()}")
            if report.error_count or report.ok != args.requests:
                print("FAIL: load run saw errors or missing responses")
                failures += 1

            stats = client.stats()
            if stats["shed"] != 0:
                print(f"FAIL: {stats['shed']} requests were shed")
                failures += 1

        # The HTTP plane: health + Prometheus metrics.
        base = f"http://{handle.host}:{handle.http_port}"
        health = json.loads(urllib.request.urlopen(f"{base}/health").read())
        if health["fleets"] != 1:
            print(f"FAIL: http health reports {health['fleets']} fleets")
            failures += 1
        metrics = urllib.request.urlopen(f"{base}/metrics").read().decode()
        for family in ("serve_requests_total", "serve_shard_queue_depth"):
            if family not in metrics:
                print(f"FAIL: /metrics is missing {family}")
                failures += 1

        # The tracing plane: every served request leaves a retained trace
        # with a connected span tree reachable by id.
        traces = json.loads(
            urllib.request.urlopen(f"{base}/debug/traces?limit=1").read()
        )
        recorded = traces["stats"]["recorded"]
        if recorded < args.requests:
            print(f"FAIL: flight recorder saw {recorded} traces "
                  f"< {args.requests} load requests")
            failures += 1
        if traces["traces"]:
            tid = traces["traces"][0]["trace_id"]
            detail = json.loads(
                urllib.request.urlopen(f"{base}/debug/traces?id={tid}").read()
            )
            span_names = set()
            stack = [detail.get("spans") or {}]
            while stack:
                node = stack.pop()
                span_names.add(node.get("name"))
                stack.extend(node.get("children", []))
            if "serve.shard.batch" not in span_names:
                print(f"FAIL: trace {tid} has no shard-side spans: {span_names}")
                failures += 1
        else:
            print("FAIL: /debug/traces returned no traces")
            failures += 1

        if failures and args.flight_dump:
            parent = os.path.dirname(args.flight_dump)
            if parent:
                os.makedirs(parent, exist_ok=True)
            count = handle.service.recorder.dump(args.flight_dump)
            print(f"serve-smoke: dumped {count} traces to {args.flight_dump}")

    if failures:
        print(f"serve-smoke: FAILED ({failures} checks)")
        return 1
    print("serve-smoke: OK (zero errors, zero shed, drained cleanly)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

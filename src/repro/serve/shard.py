"""The sharded worker pool: process-local planners, bounded inboxes.

Each worker shard owns the :class:`~repro.planner.Planner` instances for
the fleet fingerprints the :class:`~repro.serve.hashring.HashRing`
assigns to it.  Ownership is exclusive, which is the whole point: a
planner's LRU plan cache and warm-started slope regions are only useful
when every query for a fleet lands on the *same* planner, and keeping
each planner single-owner makes the hot path lock-free in practice (the
planner's internal locks never contend).

Two worker flavours share one loop (:func:`worker_loop`):

* ``mode="thread"`` — shards are daemon threads with ``queue.Queue``
  inboxes.  Planners live in the serving process; right for tests, the
  smoke target and CPU-light deployments (NumPy releases the GIL for
  the large-array work that dominates big fleets).
* ``mode="process"`` — shards are ``multiprocessing`` processes with
  ``mp.Queue`` inboxes.  Fleet models travel as the JSON-able specs of
  :func:`~repro.serve.protocol.fleet_spec_from_speed_functions`; each
  child rebuilds its fleets and keeps planners fully process-local.

Admission control lives at the inbox: every shard's queue is a bounded
:class:`~repro.serve.tenancy.WFQueue` — jobs are scheduled by weighted
fair queueing across tenants instead of FIFO arrival order, and the
bound applies **per tenant**, so a flooding tenant sheds only itself.
:meth:`ShardPool.submit_batch` uses a non-blocking put, and a full lane
returns ``None`` — the service layer turns that into explicit
``overloaded`` responses instead of queueing without bound.  Each request
carries its own deadline; a worker checks deadlines *when it dequeues* a
job, so requests that sat in a backlog past their deadline are answered
``deadline_exceeded`` without wasting a solve.  :meth:`ShardPool.close`
with ``drain=True`` seals the inboxes, lets the workers finish every
queued job, and joins them — in-flight work completes, nothing is lost.

Two durability features ride on the same structure:

* a pool-wide :class:`~repro.planner.tiered.WarmPlanStore` (a plain
  locked dict for thread pools, ``multiprocessing.Manager`` proxies for
  process pools) backs every shard planner's
  :class:`~repro.planner.tiered.TieredPlanCache`, so plans survive the
  workers that solved them;
* :meth:`ShardPool.restart_shard` recycles one worker in place — an
  urgent exit marker overtakes the queued backlog, the replacement
  re-registers the shard's fleet specs and drains the *same* inbox, and
  its planners re-warm from the shared store (queued jobs and their
  futures are preserved across the swap).
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing as mp
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Mapping, Sequence

from .. import obs
from ..exceptions import ConfigurationError
from ..obs.context import new_span_id
from ..obs.spans import Span
from ..planner.tiered import TieredPlanCache, WarmPlanStore
from .hashring import HashRing
from .protocol import error_code_for, speed_functions_from_fleet_spec
from .tenancy import CONTROL_TENANT, WFQueue

__all__ = ["ShardPool", "worker_loop", "result_to_dict"]

logger = logging.getLogger(__name__)

#: Message kinds travelling through a shard inbox (tuples pickle cleanly
#: across the multiprocessing boundary).
_KIND_REGISTER = "register"
_KIND_BATCH = "batch"
_KIND_STATS = "stats"
_KIND_REFIT = "refit"

#: Restart marker: the worker returns *without* emitting the collector's
#: exit marker (a replacement is about to take over its inbox).
_KIND_EXIT = "__worker_exit__"

#: Collector-internal marker a worker emits as it exits.
_SHARD_EXIT = "__shard_exit__"


def result_to_dict(result, *, allocation: bool = True) -> dict:
    """A :class:`~repro.core.result.PartitionResult` as a wire object."""
    out = {
        "ok": True,
        "n": int(result.n),
        "p": int(result.p),
        "makespan": float(result.makespan),
        "iterations": int(result.iterations),
        "slope": None if result.slope is None else float(result.slope),
    }
    if allocation:
        out["allocation"] = [int(x) for x in result.allocation]
    return out


def _item_error(code: str, message: str) -> dict:
    return {"ok": False, "code": code, "message": message}


def _build_planner(spec: Mapping, warm: WarmPlanStore | None):
    """One shard-local planner (and its fleet) from a wire spec.

    With a shared warm store the planner gets a
    :class:`~repro.planner.tiered.TieredPlanCache` in front of it, so a
    freshly (re)built worker re-warms from plans its predecessors — or
    sibling processes — already solved.
    """
    # Imported here (not at module top) so a spawned child pays the import
    # once and fork-mode children reuse the parent's modules either way.
    from ..planner import Fleet, Planner

    sfs = speed_functions_from_fleet_spec(spec)
    fleet = Fleet(sfs, name=spec.get("name") or None)
    cache_size = int(spec.get("cache_size", 1024))
    cache = (
        None
        if warm is None
        else TieredPlanCache(cache_size, warm=warm)
    )
    planner = Planner(
        fleet,
        algorithm=spec.get("algorithm", "bisection"),
        mode=spec.get("mode", "tangent"),
        refine=spec.get("refine", "greedy"),
        cache_size=cache_size,
        cache=cache,
    )
    return fleet, planner


def _close_caches(planners: Mapping) -> None:
    """Stop the tiered caches' writer threads on worker exit/restart."""
    for planner in planners.values():
        cache = planner.cache
        if isinstance(cache, TieredPlanCache):
            cache.close()


def worker_loop(
    shard_id: int,
    inbox,
    outbox,
    warm: WarmPlanStore | None = None,
    initial_specs: Sequence[tuple[str, Mapping]] = (),
) -> None:
    """One shard's request loop (runs in a thread or a child process).

    Reads ``(kind, job_id, ...)`` tuples from ``inbox`` until the ``None``
    sentinel, answering each with ``(job_id, payload)`` on ``outbox``.
    All fleet state — planners, capacities — is local to this function
    invocation, so nothing here needs a lock.

    ``warm`` is the pool's shared plan store (may be ``None``);
    ``initial_specs`` is the ``(serving fingerprint, spec)`` list a
    *restarted* worker re-registers before touching the queue, so jobs
    that survived its predecessor in the inbox still find their fleets.
    """
    planners: dict = {}
    capacities: dict[str, float] = {}
    # Plans invalidated by refits, per serving fingerprint: a refit swaps
    # in a fresh planner (and a fresh cache), so this is carried here to
    # keep the fleet's lifetime invalidation count in its stats row.
    refit_invalidations: dict[str, int] = {}
    for serving_fp, spec in initial_specs:
        try:
            fleet, planner = _build_planner(spec, warm)
        except Exception:  # noqa: BLE001 - a bad spec must not kill the shard
            logger.exception("shard %d could not rebuild fleet %s", shard_id, serving_fp)
            continue
        planners[serving_fp] = planner
        capacities[serving_fp] = fleet.capacity
    while True:
        msg = inbox.get()
        if msg is None:
            _close_caches(planners)
            outbox.put((_SHARD_EXIT, shard_id))
            return
        kind, job_id = msg[0], msg[1]
        if kind == _KIND_EXIT:
            # Restart marker: leave quietly — a replacement worker owns
            # the inbox next, so the collector's exit count must not move.
            _close_caches(planners)
            return
        try:
            if kind == _KIND_REGISTER:
                spec: Mapping = msg[2]
                fleet, planner = _build_planner(spec, warm)
                planners[fleet.fingerprint] = planner
                capacities[fleet.fingerprint] = fleet.capacity
                outbox.put(
                    (
                        job_id,
                        {
                            "ok": True,
                            "fingerprint": fleet.fingerprint,
                            "name": fleet.name,
                            "p": fleet.p,
                            "capacity": fleet.capacity,
                        },
                    )
                )
            elif kind == _KIND_BATCH:
                fingerprint, items = msg[2], msg[3]
                # Older 4-tuple messages (no trace element) stay valid.
                trace = msg[4] if len(msg) > 4 else None
                if trace is None:
                    outbox.put(
                        (job_id, _solve_batch(planners, capacities, fingerprint, items))
                    )
                else:
                    # Capture a detached span subtree for this batch: the
                    # worker runs in another thread (or process), so spans
                    # attached to the local tracer would never reach the
                    # listener — instead the subtree rides home inside the
                    # response payload and is re-rooted per request.
                    tracer = obs.get_tracer()
                    with tracer.capture(
                        "serve.shard.batch", shard=shard_id, items=len(items)
                    ) as batch_span:
                        batch_span.trace_id = str(trace.get("trace_id") or "")
                        batch_span.parent_id = str(trace.get("span_id") or "")
                        batch_span.span_id = new_span_id()
                        payload = _solve_batch(
                            planners, capacities, fingerprint, items,
                            batch_span=batch_span,
                        )
                    payload["spans"] = batch_span.to_dict()
                    outbox.put((job_id, payload))
            elif kind == _KIND_REFIT:
                # An online refit retires a fleet's old model: invalidate
                # exactly the stale fingerprint's plan-cache entries (via
                # the public PlanCache.invalidate — no blanket flush) and
                # rebuild the planner over the refitted spec, keeping the
                # serving fingerprint clients address the fleet by.
                serving_fp, spec, old_fp = msg[2], msg[3], msg[4]
                old_planner = planners.get(serving_fp)
                if old_planner is None:
                    outbox.put(
                        (
                            job_id,
                            _item_error(
                                "unknown_fleet",
                                f"fleet {serving_fp!r} is not registered",
                            ),
                        )
                    )
                    continue
                invalidated = old_planner.cache.invalidate(old_fp)
                refit_invalidations[serving_fp] = (
                    refit_invalidations.get(serving_fp, 0) + invalidated
                )
                if isinstance(old_planner.cache, TieredPlanCache):
                    old_planner.cache.close()
                fleet, planner = _build_planner(spec, warm)
                planners[serving_fp] = planner
                capacities[serving_fp] = fleet.capacity
                outbox.put(
                    (
                        job_id,
                        {
                            "ok": True,
                            "fingerprint": fleet.fingerprint,
                            "invalidated": invalidated,
                            "p": fleet.p,
                            "capacity": fleet.capacity,
                        },
                    )
                )
            elif kind == _KIND_STATS:
                fleets = {}
                for fp, planner in planners.items():
                    stats = planner.stats()
                    fleets[fp] = {
                        "name": planner.fleet.name,
                        "p": planner.fleet.p,
                        "algorithm": planner.algorithm,
                        "model_fingerprint": planner.fleet.fingerprint,
                        "cold_plans": stats.cold_plans,
                        "warm_plans": stats.warm_plans,
                        "cache_hits": stats.cache.hits,
                        "cache_misses": stats.cache.misses,
                        "cache_evictions": stats.cache.evictions,
                        "cache_invalidations": stats.cache.invalidations
                        + refit_invalidations.get(fp, 0),
                        "cache_size": stats.cache.size,
                    }
                    if isinstance(planner.cache, TieredPlanCache):
                        fleets[fp]["warm"] = planner.cache.warm_stats()
                outbox.put((job_id, {"ok": True, "shard": shard_id, "fleets": fleets}))
            else:
                outbox.put((job_id, _item_error("internal", f"unknown job kind {kind!r}")))
        except Exception as exc:  # noqa: BLE001 - a shard must never die mid-serve
            logger.exception("shard %d job failed", shard_id)
            outbox.put((job_id, _item_error(error_code_for(exc), str(exc))))


def _solve_batch(
    planners,
    capacities,
    fingerprint: str,
    items: Sequence[Mapping],
    *,
    batch_span: Span | None = None,
) -> dict:
    """Answer one coalesced batch; every item gets an independent verdict.

    With ``batch_span`` the worker also files one child span per item
    (verdict, size, the request's own span id) plus a solve span timing
    the shared sweep — the structure the listener fans back out to each
    request's trace.
    """
    planner = planners.get(fingerprint)
    if planner is None:
        err = _item_error("unknown_fleet", f"fleet {fingerprint!r} is not registered")
        results = [dict(err) for _ in items]
        if batch_span is not None:
            _add_item_spans(batch_span, items, results)
        return {"ok": True, "results": results}
    capacity = capacities[fingerprint]
    now = time.time()
    results: list[dict | None] = [None] * len(items)
    solvable: list[int] = []
    for i, item in enumerate(items):
        deadline = item.get("deadline")
        n = item["n"]
        if deadline is not None and now > deadline:
            results[i] = _item_error(
                "deadline_exceeded", f"request for n={n} expired in the shard queue"
            )
        elif n < 0 or n > capacity:
            results[i] = _item_error(
                "infeasible",
                f"n={n} is outside the fleet's feasible range [0, {capacity:g}]",
            )
        else:
            solvable.append(i)
    if solvable:
        # One monotone slope sweep answers the whole batch; items needing
        # allocations keep them, the rest stay summary-only on the wire.
        t0 = time.perf_counter()
        try:
            plans = planner.plan_many([items[i]["n"] for i in solvable])
        except Exception as exc:  # noqa: BLE001 - pre-validation should prevent this
            code, message = error_code_for(exc), str(exc)
            for i in solvable:
                results[i] = _item_error(code, message)
        else:
            for i, plan in zip(solvable, plans):
                results[i] = result_to_dict(
                    plan, allocation=bool(items[i].get("allocation", True))
                )
        if batch_span is not None:
            batch_span.children.append(
                Span(
                    name="serve.shard.solve",
                    seconds=time.perf_counter() - t0,
                    attrs={"sizes": len(solvable)},
                    span_id=new_span_id(),
                    parent_id=batch_span.span_id,
                    trace_id=batch_span.trace_id,
                )
            )
    if batch_span is not None:
        _add_item_spans(batch_span, items, results)
    return {"ok": True, "results": results}


def _add_item_spans(batch_span: Span, items: Sequence[Mapping], results) -> None:
    """One verdict span per batch item, tagged with the request's span id.

    The listener uses ``request_span_id`` to fan the shared batch subtree
    back out: each request keeps the whole batch context (queueing peers
    explain latency) but can identify its own item at a glance.
    """
    for item, result in zip(items, results):
        child = Span(
            name="serve.shard.item",
            attrs={"n": item.get("n")},
            span_id=new_span_id(),
            parent_id=batch_span.span_id,
            trace_id=batch_span.trace_id,
        )
        rid = item.get("span_id")
        if rid:
            child.attrs["request_span_id"] = rid
        if result and not result.get("ok", False):
            child.status = "error"
            child.attrs["code"] = result.get("code", "internal")
        batch_span.children.append(child)


class _ShardInbox:
    """One shard's admission front: a weighted-fair queue, parent-side.

    Thread workers read the :class:`WFQueue` directly.  Process workers
    cannot (the scheduler state lives in the parent), so a feeder thread
    pumps scheduled jobs into a 1-slot ``mp.Queue`` transport — the WFQ
    order is preserved up to that single slot of reordering slack, and
    the admission bound still lives entirely in the WFQ.
    """

    def __init__(self, shard_id: int, depth: int, *, transport=None):
        self.wfq = WFQueue(depth)
        self._transport = transport
        self._feeder = None
        if transport is not None:
            self._feeder = threading.Thread(
                target=self._feed,
                name=f"repro-serve-feeder-{shard_id}",
                daemon=True,
            )
            self._feeder.start()

    @property
    def worker_end(self):
        """What the worker's ``inbox.get()`` reads from."""
        return self._transport if self._transport is not None else self.wfq

    def _feed(self) -> None:
        while True:
            item = self.wfq.get()
            self._transport.put(item)
            if item is None:
                return

    def put_nowait(self, msg, *, tenant: str = "", weight: float = 1.0, cost: float = 1.0) -> None:
        self.wfq.put_nowait(msg, tenant=tenant, weight=weight, cost=cost)

    def put_control(self, msg, *, timeout: float | None = None) -> None:
        """Blocking control-plane put on the reserved control lane.

        Control traffic has its own per-tenant slots, so a data-plane
        flood can never starve a registration out of admission.
        """
        self.wfq.put(msg, tenant=CONTROL_TENANT, cost=0.0, timeout=timeout)

    def put_urgent(self, msg) -> None:
        self.wfq.put_urgent(msg)

    def put_sentinel(self) -> None:
        self.wfq.put_sentinel(None)

    def qsize(self) -> int:
        depth = self.wfq.qsize()
        if self._transport is not None:
            try:
                depth += self._transport.qsize()
            except NotImplementedError:  # pragma: no cover - macOS mp.Queue
                pass
        return depth

    def backlogs(self) -> dict[str, int]:
        return self.wfq.backlogs()

    def drain_pending(self) -> list:
        return self.wfq.drain_pending()


class ShardPool:
    """Fixed pool of worker shards behind bounded, fair inboxes.

    Parameters
    ----------
    shards:
        Number of workers.  Fingerprints are assigned by consistent
        hashing, so a future resize moves only ``~1/shards`` of them.
    mode:
        ``"thread"`` (default) or ``"process"`` — see the module notes.
    queue_depth:
        Per-shard, **per-tenant** inbox bound, in *jobs* (a job is one
        coalesced batch).  This is the admission limit: a tenant's
        submissions beyond it are shed; other tenants are unaffected.
    warm_tier:
        Keep a pool-wide :class:`~repro.planner.tiered.WarmPlanStore`
        behind every shard's plan cache (on by default), so restarts and
        rebalances re-warm instead of cold-starting.
    warm_tier_size:
        Entry bound of that shared store.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        mode: str = "thread",
        queue_depth: int = 128,
        warm_tier: bool = True,
        warm_tier_size: int = 4096,
    ):
        if shards <= 0:
            raise ConfigurationError(f"shards must be positive, got {shards}")
        if queue_depth <= 0:
            raise ConfigurationError(f"queue_depth must be positive, got {queue_depth}")
        if mode not in ("thread", "process"):
            raise ConfigurationError(
                f"unknown shard mode {mode!r}; expected 'thread' or 'process'"
            )
        self._mode = mode
        self._shards = shards
        self._queue_depth = queue_depth
        self._ring = HashRing(range(shards))
        self._job_seq = itertools.count(1)
        self._futures: dict[int, Future] = {}
        self._futures_lock = threading.Lock()
        self._closed = False
        self._submit_lock = threading.Lock()
        # Serving fingerprint -> latest spec, for rebuilding a restarted
        # worker's planners (register/refit keep it current).
        self._specs: dict[str, dict] = {}
        self._manager = None

        registry = obs.get_registry()
        self._depth_gauges = [
            registry.gauge(
                "serve.shard.queue_depth",
                labels={"shard": str(i)},
                help="jobs waiting in this shard's inbox",
            )
            for i in range(shards)
        ]
        self._jobs_counter = registry.counter(
            "serve.shard.jobs", help="jobs accepted across all shards"
        )
        self._restarts_counter = registry.counter(
            "serve.shard.restarts", help="in-place worker restarts"
        )

        if mode == "thread":
            self._warm = WarmPlanStore.local(warm_tier_size) if warm_tier else None
            self._inboxes: list[_ShardInbox] = [
                _ShardInbox(i, queue_depth) for i in range(shards)
            ]
            self._outbox: Any = queue.Queue()
            self._ctx = None
        else:
            ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
            self._ctx = ctx
            if warm_tier:
                self._manager = ctx.Manager()
                self._warm = WarmPlanStore.shared(self._manager, warm_tier_size)
            else:
                self._warm = None
            self._inboxes = [
                _ShardInbox(i, queue_depth, transport=ctx.Queue(maxsize=1))
                for i in range(shards)
            ]
            self._outbox = ctx.Queue()
        self._workers: list[Any] = [
            self._spawn_worker(i, initial_specs=[]) for i in range(shards)
        ]
        self._collector = threading.Thread(
            target=self._collect, name="repro-serve-collector", daemon=True
        )
        self._collector.start()

    def _spawn_worker(self, shard: int, *, initial_specs: list) -> Any:
        args = (
            shard,
            self._inboxes[shard].worker_end,
            self._outbox,
            self._warm,
            initial_specs,
        )
        if self._mode == "thread":
            worker = threading.Thread(
                target=worker_loop,
                args=args,
                name=f"repro-serve-shard-{shard}",
                daemon=True,
            )
        else:
            worker = self._ctx.Process(
                target=worker_loop,
                args=args,
                name=f"repro-serve-shard-{shard}",
                daemon=True,
            )
        worker.start()
        return worker

    # -- routing --------------------------------------------------------
    @property
    def shards(self) -> int:
        return self._shards

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def queue_depth(self) -> int:
        return self._queue_depth

    def shard_for(self, fingerprint: str) -> int:
        """The shard owning a fleet fingerprint (stable across restarts)."""
        return int(self._ring.node_for(fingerprint))

    def queue_depths(self) -> list[int]:
        """Approximate jobs waiting per shard (for gauges and health)."""
        depths = []
        for i, inbox in enumerate(self._inboxes):
            try:
                depth = inbox.qsize()
            except NotImplementedError:  # pragma: no cover - macOS mp.Queue
                depth = -1
            depths.append(depth)
            self._depth_gauges[i].set(max(depth, 0))
        return depths

    # -- submission -----------------------------------------------------
    def _new_job(self) -> tuple[int, Future]:
        job_id = next(self._job_seq)
        fut: Future = Future()
        with self._futures_lock:
            self._futures[job_id] = fut
        return job_id, fut

    def _drop_job(self, job_id: int) -> None:
        with self._futures_lock:
            self._futures.pop(job_id, None)

    def submit_batch(
        self,
        fingerprint: str,
        items: Sequence[Mapping],
        *,
        trace: Mapping | None = None,
        tenant: str = "",
        weight: float = 1.0,
    ) -> Future | None:
        """Enqueue one coalesced batch on the owning shard.

        Returns a :class:`concurrent.futures.Future` resolving to the
        worker's batch payload, or ``None`` when the *tenant's* lane in
        the shard inbox is full — the caller sheds the batch with
        ``overloaded`` responses.  Raises :class:`ConfigurationError`
        once the pool is closed.

        ``tenant``/``weight`` place the job in the weighted fair queue
        (cost = batch size, so fairness is measured in plans, not jobs).
        ``trace`` is an optional serialized trace context (the wire dict
        of :class:`~repro.obs.context.TraceContext`); when set, the
        worker captures its span subtree and ships it back inside the
        batch payload under ``"spans"``.
        """
        if self._closed:
            raise ConfigurationError("the shard pool is closed")
        shard = self.shard_for(fingerprint)
        job_id, fut = self._new_job()
        msg = (_KIND_BATCH, job_id, fingerprint, [dict(it) for it in items])
        if trace is not None:
            msg = msg + (dict(trace),)
        try:
            self._inboxes[shard].put_nowait(
                msg,
                tenant=tenant,
                weight=weight,
                cost=float(max(1, len(items))),
            )
        except queue.Full:
            self._drop_job(job_id)
            return None
        self._jobs_counter.inc()
        self._depth_gauges[shard].set(max(self._safe_depth(shard), 0))
        return fut

    def register(self, spec: Mapping, fingerprint: str, *, timeout: float = 30.0) -> Future:
        """Ship a fleet spec to the shard owning ``fingerprint``.

        Registration is control-plane traffic: it blocks (up to
        ``timeout``) instead of shedding, because losing a registration
        would orphan every subsequent query for the fleet.
        """
        if self._closed:
            raise ConfigurationError("the shard pool is closed")
        shard = self.shard_for(fingerprint)
        job_id, fut = self._new_job()
        try:
            self._inboxes[shard].put_control(
                (_KIND_REGISTER, job_id, dict(spec)), timeout=timeout
            )
        except queue.Full:
            self._drop_job(job_id)
            raise ConfigurationError(
                f"shard {shard} did not accept a fleet registration within {timeout}s"
            ) from None
        self._specs[fingerprint] = dict(spec)
        return fut

    def refit(
        self,
        fingerprint: str,
        spec: Mapping,
        *,
        old_fingerprint: str,
        timeout: float = 30.0,
    ) -> Future:
        """Swap a served fleet's model for a refitted spec, in place.

        ``fingerprint`` is the *serving* fingerprint clients address the
        fleet by (routing stays put on its shard); ``old_fingerprint``
        names the retired model whose plan-cache entries the worker
        invalidates — exactly those, nothing else.  Control-plane
        traffic like :meth:`register`: blocks instead of shedding.
        """
        if self._closed:
            raise ConfigurationError("the shard pool is closed")
        shard = self.shard_for(fingerprint)
        job_id, fut = self._new_job()
        try:
            self._inboxes[shard].put_control(
                (_KIND_REFIT, job_id, str(fingerprint), dict(spec), str(old_fingerprint)),
                timeout=timeout,
            )
        except queue.Full:
            self._drop_job(job_id)
            raise ConfigurationError(
                f"shard {shard} did not accept a fleet refit within {timeout}s"
            ) from None
        self._specs[str(fingerprint)] = dict(spec)
        return fut

    def stats_all(self, *, timeout: float = 5.0) -> list[Future]:
        """One stats future per shard (planner/cache counters, shard-local)."""
        futures = []
        for shard in range(self._shards):
            job_id, fut = self._new_job()
            try:
                self._inboxes[shard].put_control((_KIND_STATS, job_id), timeout=timeout)
            except queue.Full:
                self._drop_job(job_id)
                failed: Future = Future()
                failed.set_result(
                    _item_error("overloaded", f"shard {shard} queue full for stats")
                )
                fut = failed
            futures.append(fut)
        return futures

    def _safe_depth(self, shard: int) -> int:
        try:
            return self._inboxes[shard].qsize()
        except NotImplementedError:  # pragma: no cover - macOS mp.Queue
            return 0

    # -- response collection --------------------------------------------
    def _collect(self) -> None:
        exits = 0
        while exits < self._shards:
            job_id, payload = self._outbox.get()
            if job_id == _SHARD_EXIT:
                exits += 1
                continue
            with self._futures_lock:
                fut = self._futures.pop(job_id, None)
            if fut is not None and not fut.done():
                fut.set_result(payload)

    # -- restart --------------------------------------------------------
    def restart_shard(self, shard: int, *, timeout: float = 30.0) -> None:
        """Recycle one worker in place, preserving its queued backlog.

        An urgent exit marker overtakes everything queued; the old worker
        finishes its in-flight job, sees the marker and leaves quietly
        (no collector exit).  The replacement re-registers the shard's
        current fleet specs, re-warms its plan caches from the shared
        store, and drains the *same* inbox — queued jobs and their
        futures survive the swap.
        """
        if not 0 <= shard < self._shards:
            raise ConfigurationError(f"no such shard {shard!r}")
        if self._closed:
            raise ConfigurationError("the shard pool is closed")
        old = self._workers[shard]
        self._inboxes[shard].put_urgent((_KIND_EXIT, 0))
        old.join(timeout=timeout)
        if old.is_alive():
            if self._mode == "process":  # pragma: no cover - wedged worker
                old.terminate()
                old.join(timeout=5.0)
            else:  # pragma: no cover - wedged worker
                raise ConfigurationError(
                    f"shard {shard} did not stop within {timeout}s"
                )
        specs = [
            (fp, dict(spec))
            for fp, spec in self._specs.items()
            if self.shard_for(fp) == shard
        ]
        self._workers[shard] = self._spawn_worker(shard, initial_specs=specs)
        self._restarts_counter.inc()

    def warm_tier_stats(self) -> dict:
        """Pool-level view of the shared warm store (for ``stats``)."""
        if self._warm is None:
            return {"enabled": False, "entries": 0}
        return {
            "enabled": True,
            "entries": len(self._warm),
            "maxsize": self._warm.maxsize,
        }

    @property
    def warm_store(self) -> WarmPlanStore | None:
        return self._warm

    def tenant_backlogs(self) -> dict[str, int]:
        """Queued jobs per tenant across every shard inbox."""
        totals: dict[str, int] = {}
        for inbox in self._inboxes:
            for tenant, depth in inbox.backlogs().items():
                if tenant == CONTROL_TENANT:
                    continue
                totals[tenant] = totals.get(tenant, 0) + depth
        return totals

    # -- lifecycle ------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.

        ``drain=True`` (the default) seals the inboxes, lets every queued
        job finish and joins the workers — in-flight futures resolve
        normally.  ``drain=False`` abandons queued work: pending futures
        are failed with a ``shutting_down`` payload and process workers
        are terminated.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            self._abandon()
        for inbox in self._inboxes:
            # The sentinel is delivered only after every queued job, which
            # is exactly the graceful-drain contract.
            inbox.put_sentinel()
        deadline = time.time() + timeout
        for w in self._workers:
            w.join(timeout=max(0.0, deadline - time.time()))
        self._collector.join(timeout=max(0.1, deadline - time.time()))
        if self._mode == "process":
            for w in self._workers:
                if w.is_alive():  # pragma: no cover - only on drain timeout
                    w.terminate()
        self._abandon()  # anything still unresolved (worker died) fails loudly
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

    def _abandon(self) -> None:
        with self._futures_lock:
            pending = list(self._futures.values())
            self._futures.clear()
        for fut in pending:
            if not fut.done():
                fut.set_result(
                    _item_error("shutting_down", "the shard pool was closed")
                )
        if self._mode == "thread":
            # Failed-fast shutdown: clear queued jobs so the sentinel is
            # reached immediately (their futures were just resolved).
            for inbox in self._inboxes:
                inbox.drain_pending()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

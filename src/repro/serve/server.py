"""Asyncio front-ends: NDJSON-over-TCP, and a minimal HTTP/1.1 listener.

The TCP listener speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol`.  Frames on one connection are handled
*concurrently* — a client may pipeline many requests without waiting —
which is what lets a single connection feed the service's micro-batcher.
Responses carry the request's ``id``, so ordering is the client's
problem (and the client in :mod:`repro.serve.client` solves it with an
id → future map).

The optional HTTP listener exists for operability, stdlib-only:

* ``GET /metrics`` — the process registry in Prometheus text format via
  the existing :func:`repro.obs.to_prometheus` exporter.  Scrapers that
  negotiate ``application/openmetrics-text`` via the ``Accept`` header
  get the OpenMetrics dialect instead — latency exemplars on histogram
  buckets and the mandatory ``# EOF`` terminator;
* ``GET /health`` / ``GET /stats`` — the service's JSON summaries;
* ``GET /debug/traces`` — flight-recorder trace summaries
  (``?errors=1`` / ``?slow=1`` / ``?limit=N`` filters), and
  ``GET /debug/traces?id=<trace_id>`` for one full span tree;
* ``POST /v1/rpc`` — one protocol request per POST body.

:func:`start_in_thread` boots a whole server (service, shard pool and
listeners) on a private event loop in a daemon thread and returns a
:class:`ServerHandle` — the entry point used by tests, the ``repro
serve`` CLI, ``make serve-smoke`` and the throughput benchmark.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from .. import obs
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
)
from .service import PlanningService, ServeConfig

__all__ = ["PlanServer", "ServerHandle", "start_in_thread"]

logger = logging.getLogger(__name__)


class PlanServer:
    """The listeners wrapped around one :class:`PlanningService`."""

    def __init__(self, service: PlanningService, config: ServeConfig | None = None):
        self._service = service
        self._config = config or service.config
        self._tcp_server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._stopped = False

    # -- addresses ------------------------------------------------------
    @property
    def host(self) -> str:
        return self._config.host

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the real one)."""
        if self._tcp_server is None or not self._tcp_server.sockets:
            raise RuntimeError("the server is not listening")
        return self._tcp_server.sockets[0].getsockname()[1]

    @property
    def http_port(self) -> int | None:
        if self._http_server is None or not self._http_server.sockets:
            return None
        return self._http_server.sockets[0].getsockname()[1]

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        await self._service.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_tcp,
            self._config.host,
            self._config.port,
            limit=MAX_FRAME_BYTES,
        )
        if self._config.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http,
                self._config.host,
                self._config.http_port,
                limit=MAX_FRAME_BYTES,
            )
        logger.info(
            "serve listening",
            extra={"host": self.host, "port": self.port, "http": self.http_port},
        )

    async def stop(self, *, drain: bool = True) -> None:
        """Stop listening, then drain (or abandon) in-flight work.

        With ``drain=True`` every request already read off a socket gets
        its response written before connections close; the shard pool
        then finishes its queued jobs and exits.
        """
        if self._stopped:
            return
        self._stopped = True
        # close() alone stops the accept loop; wait_closed() must come
        # *after* the drain — on 3.12+ it waits for connection handlers,
        # and those can't finish until drained responses are written.
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                server.close()
        if drain:
            await self._service.drain()
            if self._request_tasks:
                await asyncio.gather(
                    *list(self._request_tasks), return_exceptions=True
                )
        else:
            await self._service.drain()  # still refuses new work; pool drains fast
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                await server.wait_closed()
        logger.info("serve stopped")

    # -- TCP ------------------------------------------------------------
    async def _handle_tcp(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        local_requests: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    response = error_response(
                        None, "invalid_request",
                        f"frame exceeds {MAX_FRAME_BYTES} bytes",
                    )
                    async with write_lock:
                        writer.write(encode_frame(response))
                        await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                req_task = asyncio.ensure_future(
                    self._respond(line, writer, write_lock)
                )
                local_requests.add(req_task)
                self._request_tasks.add(req_task)
                req_task.add_done_callback(local_requests.discard)
                req_task.add_done_callback(self._request_tasks.discard)
            if local_requests:
                await asyncio.gather(*list(local_requests), return_exceptions=True)
        except asyncio.CancelledError:
            pass
        except ConnectionError:  # pragma: no cover - client vanished mid-read
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _respond(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        try:
            raw = decode_frame(line)
        except ProtocolError as exc:
            response = error_response(None, exc.code, str(exc))
        else:
            response = await self._service.handle(raw)
        try:
            async with write_lock:
                writer.write(encode_frame(response))
                await writer.drain()
        except ConnectionError:  # pragma: no cover - client vanished mid-write
            pass

    # -- HTTP -----------------------------------------------------------
    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if not parts:
                return  # client connected and hung up without a request
            if len(parts) < 2:
                doc = error_response(
                    None, "invalid_request", "malformed HTTP request line"
                )
                payload = json.dumps(doc).encode("utf-8")
                writer.write(
                    b"HTTP/1.1 400 Bad Request\r\n"
                    b"Content-Type: application/json; charset=utf-8\r\n"
                    + f"Content-Length: {len(payload)}\r\n".encode("latin-1")
                    + b"Connection: close\r\n\r\n" + payload
                )
                await writer.drain()
                return
            method, path = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                length = -1
            if 0 <= length <= MAX_FRAME_BYTES:
                body = await reader.readexactly(length) if length else b""
                status, content_type, payload = await self._route_http(
                    method, path, body, headers
                )
            else:
                doc = error_response(
                    None, "invalid_request",
                    f"content-length must be an integer in [0, {MAX_FRAME_BYTES}]",
                )
                status = "400 Bad Request"
                content_type = "application/json; charset=utf-8"
                payload = json.dumps(doc).encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (asyncio.CancelledError, asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _route_http(
        self, method: str, path: str, body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[str, str, bytes]:
        json_type = "application/json; charset=utf-8"
        headers = headers or {}
        split = urlsplit(path)
        path = split.path
        query = parse_qs(split.query)
        if method == "GET" and path == "/metrics":
            # Exemplars and the # EOF terminator are only legal in the
            # OpenMetrics dialect, so emit them only when the scraper
            # asked for it.
            accept = headers.get("accept", "")
            openmetrics = "application/openmetrics-text" in accept
            text = obs.to_prometheus(openmetrics=openmetrics)
            content_type = (
                obs.OPENMETRICS_CONTENT_TYPE if openmetrics
                else obs.PROMETHEUS_CONTENT_TYPE
            )
            return ("200 OK", content_type, text.encode("utf-8"))
        if method == "GET" and path == "/debug/traces":
            return self._route_traces(query, json_type)
        if method == "GET" and path == "/health":
            doc = self._service.health()
            status = "200 OK" if doc["status"] == "ok" else "503 Service Unavailable"
            return (status, json_type, json.dumps(doc).encode("utf-8"))
        if method == "GET" and path == "/stats":
            doc = await self._service.stats()
            return ("200 OK", json_type, json.dumps(doc).encode("utf-8"))
        if method == "POST" and path == "/v1/rpc":
            try:
                raw = decode_frame(body)
            except ProtocolError as exc:
                doc = error_response(None, exc.code, str(exc))
                return ("400 Bad Request", json_type, json.dumps(doc).encode("utf-8"))
            doc = await self._service.handle(raw)
            status = "200 OK" if doc["ok"] else "400 Bad Request"
            if not doc["ok"] and doc["error"]["code"] == "overloaded":
                status = "503 Service Unavailable"
            return (status, json_type, json.dumps(doc).encode("utf-8"))
        doc = {"error": f"no route for {method} {path}"}
        return ("404 Not Found", json_type, json.dumps(doc).encode("utf-8"))

    def _route_traces(
        self, query: Mapping[str, list], json_type: str
    ) -> tuple[str, str, bytes]:
        """The flight-recorder debug endpoint (summaries or one detail)."""
        recorder = self._service.recorder
        trace_id = (query.get("id") or [None])[0]
        if trace_id:
            trace = recorder.get(trace_id)
            if trace is None:
                doc = {"error": f"no retained trace with id {trace_id!r}"}
                return ("404 Not Found", json_type, json.dumps(doc).encode("utf-8"))
            return ("200 OK", json_type, json.dumps(trace.to_dict()).encode("utf-8"))
        try:
            limit = int((query.get("limit") or ["50"])[0])
        except ValueError:
            limit = 50
        errors_only = (query.get("errors") or ["0"])[0] not in ("0", "", "false")
        slow_only = (query.get("slow") or ["0"])[0] not in ("0", "", "false")
        traces = recorder.traces(
            errors_only=errors_only, slow_only=slow_only, limit=max(0, limit)
        )
        doc = {
            "traces": [t.summary() for t in traces],
            "stats": recorder.stats(),
        }
        return ("200 OK", json_type, json.dumps(doc).encode("utf-8"))


class ServerHandle:
    """A server running on its own event loop in a daemon thread.

    Thread-safe façade for the owning thread of tests/benchmarks: talk to
    the server over sockets (the normal path), or run service coroutines
    on its loop via :meth:`call`.
    """

    def __init__(self, thread, loop, server, service, stop_event):
        self._thread = thread
        self._loop: asyncio.AbstractEventLoop = loop
        self._server: PlanServer = server
        self._service: PlanningService = service
        self._stop_event: asyncio.Event = stop_event
        self.host = server.host
        self.port = server.port
        self.http_port = server.http_port

    @property
    def service(self) -> PlanningService:
        return self._service

    def call(self, coro, *, timeout: float = 60.0) -> Any:
        """Run a coroutine on the server's loop and wait for its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def stop(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        """Graceful (or abrupt) shutdown; joins the server thread."""
        if self._thread.is_alive():
            def _signal() -> None:
                self._service._drain_flag = drain  # read by the runner below
                self._stop_event.set()

            self._loop.call_soon_threadsafe(_signal)
            self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - drain hang
            raise RuntimeError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    config: ServeConfig | None = None, *, timeout: float = 60.0
) -> ServerHandle:
    """Boot a full planning server on a background thread.

    Blocks until the listeners are bound (so ``handle.port`` is final)
    and returns the :class:`ServerHandle`.  Startup failures — a taken
    port, a bad config — re-raise in the calling thread.
    """
    config = config or ServeConfig()
    started = threading.Event()
    state: dict[str, Any] = {}

    async def _amain() -> None:
        service = PlanningService(config)
        server = PlanServer(service, config)
        try:
            await server.start()
        except BaseException as exc:
            state["error"] = exc
            started.set()
            raise
        stop_event = asyncio.Event()
        state["loop"] = asyncio.get_running_loop()
        state["server"] = server
        state["service"] = service
        state["stop_event"] = stop_event
        started.set()
        await stop_event.wait()
        await server.stop(drain=getattr(service, "_drain_flag", True))

    def _runner() -> None:
        try:
            asyncio.run(_amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced via state
            state.setdefault("error", exc)
            started.set()

    thread = threading.Thread(target=_runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=timeout):  # pragma: no cover - hung startup
        raise RuntimeError("the serve thread did not start in time")
    if "error" in state:
        raise state["error"]
    return ServerHandle(
        thread, state["loop"], state["server"], state["service"], state["stop_event"]
    )

"""Persistence: save and load speed-function models as JSON.

A deployment benchmarks its machines once (minutes) and partitions many
times (milliseconds), so fitted models need to live on disk.  The format
is a small, versioned JSON document; only model *data* is stored — no
pickling, no code execution on load.

Supported objects: :class:`~repro.core.speed_function.ConstantSpeedFunction`,
:class:`~repro.core.speed_function.PiecewiseLinearSpeedFunction`,
:class:`~repro.core.step_model.StepSpeedFunction`, and flat collections of
them keyed by machine name.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Mapping

from .core.speed_function import (
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
    SpeedFunction,
)
from .core.step_model import StepSpeedFunction
from .exceptions import ConfigurationError

__all__ = [
    "speed_function_to_dict",
    "speed_function_from_dict",
    "save_models",
    "load_models",
    "save_distribution",
    "load_distribution",
]

_FORMAT = "repro.speed-functions"
_VERSION = 1


def speed_function_to_dict(sf: SpeedFunction) -> dict:
    """Serialise one speed function to a plain dictionary."""
    if isinstance(sf, PiecewiseLinearSpeedFunction):
        return {
            "kind": "piecewise_linear",
            "sizes": [float(x) for x in sf.knot_sizes],
            "speeds": [float(s) for s in sf.knot_speeds],
        }
    if isinstance(sf, StepSpeedFunction):
        return {
            "kind": "step",
            "boundaries": [float(b) for b in sf.boundaries],
            "speeds": [float(s) for s in sf.segment_speeds],
        }
    if isinstance(sf, ConstantSpeedFunction):
        return {
            "kind": "constant",
            "speed": float(sf.value),
            "max_size": None if math.isinf(sf.max_size) else float(sf.max_size),
        }
    raise ConfigurationError(
        f"cannot serialise speed functions of type {type(sf).__name__}; "
        "tabulate analytic functions first"
    )


def speed_function_from_dict(data: Mapping) -> SpeedFunction:
    """Rebuild a speed function from :func:`speed_function_to_dict` output."""
    try:
        kind = data["kind"]
    except (KeyError, TypeError):
        raise ConfigurationError(f"not a speed-function record: {data!r}") from None
    if kind == "piecewise_linear":
        return PiecewiseLinearSpeedFunction(data["sizes"], data["speeds"])
    if kind == "step":
        return StepSpeedFunction(data["boundaries"], data["speeds"])
    if kind == "constant":
        max_size = data.get("max_size")
        return ConstantSpeedFunction(
            data["speed"], math.inf if max_size is None else float(max_size)
        )
    raise ConfigurationError(f"unknown speed-function kind {kind!r}")


def save_models(
    path: str | Path,
    models: Mapping[str, SpeedFunction],
    *,
    kernel: str | None = None,
) -> None:
    """Write a named collection of speed functions to a JSON file."""
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "kernel": kernel,
        "machines": {
            name: speed_function_to_dict(sf) for name, sf in models.items()
        },
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def load_models(path: str | Path) -> dict[str, SpeedFunction]:
    """Read a collection previously written by :func:`save_models`."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read model file {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise ConfigurationError(f"{path} is not a repro speed-function file")
    if doc.get("version") != _VERSION:
        raise ConfigurationError(
            f"{path}: unsupported format version {doc.get('version')!r}"
        )
    machines = doc.get("machines")
    if not isinstance(machines, dict):
        raise ConfigurationError(f"{path}: missing machine table")
    return {
        name: speed_function_from_dict(rec) for name, rec in machines.items()
    }


_DIST_FORMAT = "repro.group-block-distribution"


def save_distribution(path: str | Path, dist) -> None:
    """Write a :class:`~repro.kernels.group_block.GroupBlockDistribution`.

    A deployment computes the Variable Group Block distribution once per
    (matrix size, machine set) and reuses it for every factorisation.
    """
    from .kernels.group_block import GroupBlockDistribution

    if not isinstance(dist, GroupBlockDistribution):
        raise ConfigurationError(
            f"expected a GroupBlockDistribution, got {type(dist).__name__}"
        )
    doc = {
        "format": _DIST_FORMAT,
        "version": _VERSION,
        "n": int(dist.n),
        "b": int(dist.b),
        "groups": [[int(x) for x in g] for g in dist.groups],
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def load_distribution(path: str | Path):
    """Read a distribution previously written by :func:`save_distribution`."""
    from .kernels.group_block import GroupBlockDistribution

    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read distribution file {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _DIST_FORMAT:
        raise ConfigurationError(f"{path} is not a repro distribution file")
    if doc.get("version") != _VERSION:
        raise ConfigurationError(
            f"{path}: unsupported format version {doc.get('version')!r}"
        )
    try:
        return GroupBlockDistribution(
            n=int(doc["n"]), b=int(doc["b"]), groups=doc["groups"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"{path}: malformed distribution: {exc}") from exc

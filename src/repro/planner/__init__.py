"""High-throughput partition planning over stable fleets.

This package turns the one-shot geometric algorithms of
:mod:`repro.core` into a query layer for repeated use:

* :class:`~repro.planner.fleet.Fleet` — packs a set of speed functions
  once (shared :class:`~repro.core.vectorized.PiecewiseLinearSet`) and
  fingerprints their content for cache keying;
* :class:`~repro.planner.cache.PlanCache` — thread-safe LRU of computed
  plans with hit/miss/eviction counters;
* :class:`~repro.planner.planner.Planner` — cached, warm-started
  single queries (:meth:`~repro.planner.planner.Planner.plan`) and
  batched monotone slope sweeps
  (:meth:`~repro.planner.planner.Planner.plan_many`), all bit-identical
  to cold :func:`~repro.core.bisection.partition_bisection` runs.
"""

from .cache import CacheStats, PlanCache
from .fleet import Fleet
from .planner import Planner, PlannerStats
from .tiered import TieredPlanCache, WarmPlanStore

__all__ = [
    "CacheStats",
    "Fleet",
    "PlanCache",
    "Planner",
    "PlannerStats",
    "TieredPlanCache",
    "WarmPlanStore",
]

"""The partition planner: cached, warm-started, batched plan queries.

The geometric algorithms in :mod:`repro.core` solve one problem from
scratch in ``O(p log n)``.  Production fleets answer a *stream* of
partition queries over largely-stable models, which wastes almost all of
that work: the optimal slope is monotone non-increasing in the problem
size ``n``, so consecutive queries share most of their bisection
trajectory.  :class:`Planner` exploits this three ways, in order of
increasing savings:

1. **plan cache** — an exact repeat of ``(fleet, n, algorithm, refine,
   mode)`` is a dictionary lookup (:class:`~repro.planner.cache.PlanCache`);
2. **warm-started bisection** — a query for ``n'`` near a previously
   solved ``n`` starts from that plan's converged
   :class:`~repro.core.geometry.SlopeRegion` (repaired by
   :func:`~repro.core.geometry.ensure_bracket` in ``O(log(n'/n))``
   probes) instead of the cold figure-18 bracket;
3. **batched slope sweep** — :meth:`Planner.plan_many` sorts the queried
   sizes and sweeps the slope monotonically downward, so each query
   warm-starts from its immediate predecessor and the whole batch is
   resolved in one pass over the packed arrays.

All three paths return **bit-identical** allocations and makespans to a
cold :func:`~repro.core.bisection.partition_bisection` run — warm starts
change only *where the search starts*, never the refinement semantics —
which the planner test-suite asserts property-style over random fleets.
"""

from __future__ import annotations

import itertools
import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .. import obs
from ..core.bisection import partition_bisection, partition_bisection_many
from ..core.combined import partition_combined
from ..core.geometry import SlopeRegion
from ..core.modified import partition_modified
from ..core.result import PartitionResult
from ..exceptions import ConfigurationError
from .cache import CacheStats, PlanCache
from .fleet import Fleet

__all__ = ["Planner", "PlannerStats"]

logger = logging.getLogger(__name__)

#: Algorithms the planner can drive (they accept ``region=`` and ``pack=``).
_PLANNER_ALGORITHMS = ("bisection", "combined", "modified")

#: Distinguishes planner instances in the metrics registry.
_PLANNER_SEQ = itertools.count(1)


@dataclass(frozen=True)
class PlannerStats:
    """Immutable snapshot of a planner's activity counters.

    ``cold_plans`` solved from the figure-18 initial bracket,
    ``warm_plans`` from a reused bracket; ``cache`` aggregates the
    underlying :class:`~repro.planner.cache.PlanCache` counters.
    """

    cold_plans: int
    warm_plans: int
    cache: CacheStats

    @property
    def plans_computed(self) -> int:
        return self.cold_plans + self.warm_plans

    @property
    def warm_rate(self) -> float:
        """Fraction of computed plans that reused a converged bracket."""
        total = self.plans_computed
        return self.warm_plans / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"cold={self.cold_plans} warm={self.warm_plans} cache[{self.cache}]"
        )


class _WarmIndex:
    """Small LRU map ``n -> converged SlopeRegion`` with nearest lookup.

    Deliberately independent from the plan cache: evicting a *plan* does
    not invalidate its *bracket* — any converged region remains a valid
    warm-start seed for ever (``ensure_bracket`` repairs whatever distance
    remains), so the index keeps the most recently touched brackets even
    for sizes whose full plans have been evicted.
    """

    def __init__(self, maxsize: int):
        self._regions: OrderedDict[int, SlopeRegion] = OrderedDict()
        self._maxsize = maxsize

    def add(self, n: int, region: SlopeRegion | None) -> None:
        if region is None:
            return
        if n in self._regions:
            self._regions.move_to_end(n)
        self._regions[n] = region
        while len(self._regions) > self._maxsize:
            self._regions.popitem(last=False)

    def nearest(self, n: int) -> SlopeRegion | None:
        if not self._regions:
            return None
        # The optimal slope decays roughly polynomially in n (the paper's
        # common case), so "nearest" is measured in log-size space.
        best = min(self._regions, key=lambda m: abs(np.log(m) - np.log(n)))
        self._regions.move_to_end(best)
        return self._regions[best]

    def __len__(self) -> int:
        return len(self._regions)


class Planner:
    """High-throughput partition-query layer over a fixed :class:`Fleet`.

    Parameters
    ----------
    fleet:
        The (packed-once) fleet to answer queries for.
    algorithm:
        ``"bisection"`` (default — the planner's equivalence guarantees
        are stated against it), ``"combined"`` or ``"modified"``.
    mode / refine:
        Forwarded to the algorithm (see
        :func:`~repro.core.bisection.partition_bisection`).
    cache_size:
        Capacity of the LRU plan cache.
    warm_candidates:
        Number of converged brackets retained for warm-starting.
    cache:
        An externally constructed :class:`~repro.planner.cache.PlanCache`
        to use instead of building one (``cache_size`` is then ignored).
        This is how the serve layer hands shards a
        :class:`~repro.planner.tiered.TieredPlanCache` backed by the
        pool's shared warm store.

    Thread safety: :meth:`plan` and :meth:`plan_many` may be called
    concurrently; the cache and the warm index are lock-protected, and the
    solvers themselves are pure.  Two racing misses for the same key both
    solve and both store the same (bit-identical) plan.
    """

    def __init__(
        self,
        fleet: Fleet,
        *,
        algorithm: str = "bisection",
        mode: str = "tangent",
        refine: str = "greedy",
        cache_size: int = 1024,
        warm_candidates: int = 64,
        cache: PlanCache | None = None,
    ):
        if algorithm not in _PLANNER_ALGORITHMS:
            raise ConfigurationError(
                f"unknown planner algorithm {algorithm!r}; expected one of "
                f"{sorted(_PLANNER_ALGORITHMS)}"
            )
        self._fleet = fleet
        self._algorithm = algorithm
        self._mode = mode
        self._refine = refine
        instance = f"{fleet.name}#{next(_PLANNER_SEQ)}"
        self._cache = cache if cache is not None else PlanCache(cache_size, name=instance)
        self._warm = _WarmIndex(warm_candidates)
        self._lock = threading.Lock()
        labels = {"planner": instance}
        registry = obs.get_registry()
        self._cold_plans = registry.counter(
            "planner.plans.cold", labels=labels,
            help="plans solved from the figure-18 initial bracket",
        )
        self._warm_plans = registry.counter(
            "planner.plans.warm", labels=labels,
            help="plans solved from a reused converged bracket",
        )
        logger.debug(
            "planner created", extra={
                "fleet": fleet.name, "p": fleet.p, "algorithm": algorithm,
                "cache_size": cache_size, "warm_candidates": warm_candidates,
            },
        )

    # -- accessors ------------------------------------------------------
    @property
    def fleet(self) -> Fleet:
        return self._fleet

    @property
    def algorithm(self) -> str:
        return self._algorithm

    @property
    def cache(self) -> PlanCache:
        return self._cache

    def stats(self) -> PlannerStats:
        return PlannerStats(
            cold_plans=self._cold_plans.value,
            warm_plans=self._warm_plans.value,
            cache=self._cache.stats(),
        )

    # -- internals ------------------------------------------------------
    def _key(self, n: int) -> tuple:
        return (
            self._fleet.fingerprint,
            n,
            self._algorithm,
            self._refine,
            self._mode,
        )

    def _solve(self, n: int, region: SlopeRegion | None) -> PartitionResult:
        sfs = self._fleet.speed_functions
        pack = self._fleet.pack
        warm = region is not None
        with obs.span(
            "planner.solve", n=n, algorithm=self._algorithm, warm=warm
        ):
            if self._algorithm == "bisection":
                result = partition_bisection(
                    n, sfs, mode=self._mode, refine=self._refine,
                    region=region, pack=pack,
                )
            elif self._algorithm == "combined":
                result = partition_combined(
                    n, sfs, mode=self._mode, refine=self._refine,
                    region=region, pack=pack,
                )
            else:
                result = partition_modified(
                    n, sfs, refine=self._refine, region=region, pack=pack,
                )
        (self._warm_plans if warm else self._cold_plans).inc()
        logger.debug(
            "plan solved",
            extra={"n": n, "warm": warm, "iterations": result.iterations},
        )
        return result

    def _record(self, n: int, result: PartitionResult) -> None:
        self._cache.put(self._key(n), result)
        with self._lock:
            self._warm.add(n, result.region)

    # -- queries --------------------------------------------------------
    def plan(self, n: int) -> PartitionResult:
        """Answer one partition query, as cheaply as the history allows.

        Cache hit → stored plan (treat it as immutable).  Miss → solve,
        warm-started from the nearest previously converged bracket when
        one exists, and remember both the plan and its bracket.
        """
        n = int(n)
        cached = self._cache.get(self._key(n))
        if cached is not None:
            return cached
        if n <= 0:
            # Degenerate queries skip the warm machinery entirely.
            result = self._solve(n, None)
            self._cache.put(self._key(n), result)
            return result
        with self._lock:
            region = self._warm.nearest(n)
        result = self._solve(n, region)
        self._record(n, result)
        return result

    def plan_many(self, ns: Iterable[int]) -> list[PartitionResult]:
        """Answer a batch of queries in one monotone slope sweep.

        Uncached sizes are handed to
        :func:`~repro.core.bisection.partition_bisection_many`, which solves
        them ascending (the slope only moves downward, so each size's
        bracket is repaired from its predecessor's) and advances all of
        them in lockstep, intersecting every pending midpoint ray with the
        packed graphs in a single vectorised call per bisection step.
        Results come back in the order the sizes were given; duplicates
        and previously planned sizes are served from the cache.  For
        non-bisection algorithms the batch degrades to sequential
        warm-started solves.
        """
        sizes = [int(n) for n in ns]
        results: list[PartitionResult | None] = [None] * len(sizes)
        missing: list[int] = []
        for idx, n in enumerate(sizes):
            cached = self._cache.get(self._key(n))
            if cached is not None:
                results[idx] = cached
            else:
                missing.append(idx)
        if not missing:
            return results  # type: ignore[return-value]

        todo = sorted({sizes[idx] for idx in missing})
        with self._lock:
            seed = self._warm.nearest(todo[0]) if todo[0] > 0 else None

        if self._algorithm == "bisection":
            with obs.span(
                "planner.plan_many", sizes=len(sizes), solved=len(todo)
            ):
                batch = partition_bisection_many(
                    todo,
                    self._fleet.speed_functions,
                    mode=self._mode,
                    refine=self._refine,
                    region=seed,
                    pack=self._fleet.pack,
                )
            by_size = dict(zip(todo, batch))
            cold = 1 if seed is None else 0
            if cold:
                self._cold_plans.inc(cold)
            self._warm_plans.inc(len(todo) - cold)
            logger.debug(
                "batch solved",
                extra={"sizes": len(sizes), "solved": len(todo), "seeded": not cold},
            )
        else:
            by_size = {}
            region = seed
            for n in todo:
                result = self._solve(n, region if n > 0 else None)
                by_size[n] = result
                if result.region is not None:
                    region = result.region
        for n, result in by_size.items():
            self._record(n, result)
        for idx in missing:
            results[idx] = by_size[sizes[idx]]
        return results  # type: ignore[return-value]

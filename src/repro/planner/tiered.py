"""A process-shared warm tier behind the per-shard plan-cache LRU.

The per-shard :class:`~repro.planner.cache.PlanCache` dies with its
worker: a shard restart, a ``cluster join``/``leave`` rebalance or a
process-pool respawn cold-starts every plan the fleet had already paid
for.  This module adds the classic cache-aside second tier:

* :class:`WarmPlanStore` — a flat bounded key/value store living
  *outside* any single worker: a plain locked ``dict`` for thread pools,
  a ``multiprocessing.Manager`` dict proxy for process pools (proxies
  pickle, so a freshly spawned worker attaches to the same store).
* :class:`TieredPlanCache` — a drop-in :class:`PlanCache` subclass doing
  **read-through** (an L1 miss consults the store and promotes the hit
  back into the LRU) and **write-behind** (inserts are mirrored to the
  store from a background writer thread, so the solve path never waits
  on cross-process IPC).

Plans are pure functions of ``(fingerprint, n, algorithm, refine,
mode)`` — the :class:`~repro.planner.planner.Planner` key — so sharing
them across workers can never serve a wrong answer, only a warmer one;
the stored value is the bit-identical :class:`PartitionResult` minus its
``region`` bracket (heavy, and only useful to the worker that solved
it).  :meth:`TieredPlanCache.invalidate` keeps the exact-invalidation
contract two-tier: it flushes pending write-behinds first (so a retired
plan cannot be resurrected by a late mirror), then drops the fingerprint
from both tiers and *only* that fingerprint.  The return value remains
the L1 count — existing callers keep their arithmetic.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import replace
from typing import Any, Hashable

from .. import obs
from ..core.result import PartitionResult
from .cache import PlanCache

__all__ = ["TieredPlanCache", "WarmPlanStore"]

#: Default bound on warm-store entries (approximate FIFO beyond it).
_DEFAULT_STORE_SIZE = 4096

#: Bound on queued write-behind mirrors; beyond it writes are dropped
#: (and counted) rather than ever blocking a solve.
_WRITE_QUEUE_DEPTH = 512


class WarmPlanStore:
    """Bounded key/value plan store shared by every shard of a pool.

    ``mapping`` and ``lock`` are injected so one class covers both
    deployments: :meth:`local` (thread pools — plain dict) and
    :meth:`shared` (process pools — ``Manager`` proxies, picklable into
    spawned workers).  Eviction beyond ``maxsize`` is approximate FIFO:
    the store is a longevity tier, not a recency tier, and FIFO needs no
    per-read bookkeeping across process boundaries.
    """

    def __init__(self, mapping, lock, *, maxsize: int = _DEFAULT_STORE_SIZE):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._data = mapping
        self._lock = lock
        self._maxsize = int(maxsize)

    @classmethod
    def local(cls, maxsize: int = _DEFAULT_STORE_SIZE) -> "WarmPlanStore":
        """In-process store for thread-mode shard pools."""
        return cls({}, threading.Lock(), maxsize=maxsize)

    @classmethod
    def shared(cls, manager, maxsize: int = _DEFAULT_STORE_SIZE) -> "WarmPlanStore":
        """Cross-process store over a ``multiprocessing`` manager."""
        return cls(manager.dict(), manager.Lock(), maxsize=maxsize)

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            try:
                return self._data.get(key)
            except (EOFError, BrokenPipeError, ConnectionError):
                return None  # manager already gone (teardown race)

    def keys(self) -> list:
        """A snapshot of the stored keys (diagnostics and tests)."""
        with self._lock:
            try:
                return list(self._data.keys())
            except (EOFError, BrokenPipeError, ConnectionError):
                return []

    def put(self, key: Hashable, value: Any) -> None:
        try:
            with self._lock:
                if key not in self._data and len(self._data) >= self._maxsize:
                    for doomed in self._data.keys():
                        del self._data[doomed]
                        break
                self._data[key] = value
        except (EOFError, BrokenPipeError, ConnectionError):
            pass

    def invalidate(self, fingerprint: Hashable) -> int:
        """Drop exactly one fingerprint's entries; return the count."""
        with self._lock:
            doomed = [
                key
                for key in list(self._data.keys())
                if key == fingerprint
                or (isinstance(key, tuple) and bool(key) and key[0] == fingerprint)
            ]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        try:
            with self._lock:
                return len(self._data)
        except (EOFError, BrokenPipeError, ConnectionError):
            return 0

    @property
    def maxsize(self) -> int:
        return self._maxsize


#: Writer-queue control messages.
_FLUSH = object()


class TieredPlanCache(PlanCache):
    """:class:`PlanCache` with a read-through / write-behind warm tier.

    Lookup misses consult the shared :class:`WarmPlanStore` and promote
    hits into the LRU (counted as ``planner.cache.warm_hits``; the L1
    miss still counts as a miss, so L1 hit-rate math is unchanged).
    Inserts mirror to the store via a daemon writer thread; a full
    writer queue drops the mirror (``warm_drops``) instead of blocking.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        *,
        warm: WarmPlanStore,
        name: str | None = None,
    ):
        super().__init__(maxsize, name=name)
        self._store = warm
        labels = {"cache": self.name}
        registry = obs.get_registry()
        self._warm_hits = registry.counter(
            "planner.cache.warm_hits",
            labels=labels,
            help="L1 misses answered by the shared warm tier",
        )
        self._warm_writes = registry.counter(
            "planner.cache.warm_writes",
            labels=labels,
            help="plans mirrored to the warm tier",
        )
        self._warm_drops = registry.counter(
            "planner.cache.warm_drops",
            labels=labels,
            help="write-behind mirrors dropped on a full writer queue",
        )
        self._warm_invalidations = registry.counter(
            "planner.cache.warm_invalidations",
            labels=labels,
            help="warm-tier entries dropped by explicit invalidation",
        )
        self._writes: queue.Queue = queue.Queue(maxsize=_WRITE_QUEUE_DEPTH)
        self._writer = threading.Thread(
            target=self._write_loop,
            name=f"repro-warm-writer-{self.name}",
            daemon=True,
        )
        self._writer.start()

    # -- tiering --------------------------------------------------------
    def get(self, key: Hashable) -> Any | None:
        value = super().get(key)
        if value is not None:
            return value
        warm = self._store.get(key)
        if warm is None:
            return None
        self._warm_hits.inc()
        super().put(key, warm)
        return warm

    def put(self, key: Hashable, value: Any) -> None:
        super().put(key, value)
        try:
            self._writes.put_nowait((key, _strip(value)))
        except queue.Full:
            self._warm_drops.inc()

    def invalidate(self, fingerprint: Hashable) -> int:
        # Flush first: a queued mirror of a just-retired plan must not
        # resurrect it in the store after the drop below.
        self.flush()
        count = super().invalidate(fingerprint)
        dropped = self._store.invalidate(fingerprint)
        if dropped:
            self._warm_invalidations.inc(dropped)
        return count

    # -- write-behind machinery -----------------------------------------
    def _write_loop(self) -> None:
        while True:
            job = self._writes.get()
            if job is None:
                return
            if isinstance(job, tuple) and job[0] is _FLUSH:
                job[1].set()
                continue
            key, value = job
            self._store.put(key, value)
            self._warm_writes.inc()

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until every mirror queued so far has reached the store."""
        if not self._writer.is_alive():
            return False
        done = threading.Event()
        self._writes.put((_FLUSH, done))
        return done.wait(timeout)

    def close(self) -> None:
        """Stop the writer thread (pending mirrors are written first)."""
        if self._writer.is_alive():
            self._writes.put(None)
            self._writer.join(timeout=10.0)

    # -- introspection --------------------------------------------------
    @property
    def warm_store(self) -> WarmPlanStore:
        return self._store

    def warm_stats(self) -> dict:
        """Warm-tier counter snapshot (rides in shard stats payloads)."""
        return {
            "hits": self._warm_hits.value,
            "writes": self._warm_writes.value,
            "drops": self._warm_drops.value,
            "invalidations": self._warm_invalidations.value,
            "entries": len(self._store),
        }


def _strip(value: Any) -> Any:
    """Shed the warm-start bracket before a value crosses process lines.

    The ``region`` is by far the heaviest field and is only meaningful
    to the planner that converged it; the mirrored plan stays
    bit-identical in everything the wire exposes.
    """
    if isinstance(value, PartitionResult) and value.region is not None:
        return replace(value, region=None)
    return value

"""Fleet: a pack-once, share-everywhere view of a set of processors.

The one-shot algorithms in :mod:`repro.core` accept a plain sequence of
speed functions and (re)build their vectorised representation on every
call.  That is the right interface for a single partitioning problem, but
the planner answers *many* queries over a fleet whose composition changes
rarely; :class:`Fleet` front-loads everything that depends only on the
fleet:

* the padded-array :class:`~repro.core.vectorized.PiecewiseLinearSet`
  (built exactly once, shared by every query);
* a stable **content fingerprint** — a hash of the knot arrays — used to
  key plan caches, so two fleets with identical models share cached plans
  even across reconstructions;
* the combined memory capacity (the feasibility bound for any ``n``).

A :class:`Fleet` is immutable: model updates (e.g. from
:class:`repro.model.AdaptiveModel` drift detection) are expressed by
building a new fleet, which naturally gets a new fingerprint and therefore
a disjoint cache key space.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Sequence

import numpy as np

from ..core.speed_function import (
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
    SpeedFunction,
)
from ..core.vectorized import PiecewiseLinearSet, pack_speed_functions
from ..exceptions import InvalidSpeedFunctionError

__all__ = ["Fleet"]


def _describe(sf: SpeedFunction) -> bytes:
    """Content bytes of one speed function for fingerprinting.

    Exact knot/parameter bytes for every representation that compiles
    through the knot protocol (:meth:`SpeedFunction.as_knots` fully
    determines such a model's behaviour); for genuinely opaque
    representations (analytic callables) the object identity is used
    instead, which is *safe* (no false cache sharing) at the cost of not
    deduplicating equal-content fleets built from distinct objects.
    """
    if type(sf) is PiecewiseLinearSpeedFunction:
        return (
            b"pwl:"
            + np.ascontiguousarray(sf.knot_sizes).tobytes()
            + b"/"
            + np.ascontiguousarray(sf.knot_speeds).tobytes()
        )
    if type(sf) is ConstantSpeedFunction:
        return f"const:{sf.value!r}:{sf.max_size!r}".encode()
    row = sf.as_knots()
    if row is not None:
        return (
            b"knots:"
            + np.ascontiguousarray(row.sizes).tobytes()
            + b"/"
            + np.ascontiguousarray(row.speeds).tobytes()
            + f":{row.alpha!r}:{row.beta!r}:{row.scale!r}"
              f":{row.x_cap!r}:{row.s_cap!r}".encode()
        )
    return f"opaque:{type(sf).__name__}:{id(sf)}".encode()


class Fleet:
    """An immutable set of processors packed once for repeated queries.

    Parameters
    ----------
    speed_functions:
        One :class:`~repro.core.speed_function.SpeedFunction` per
        processor.  When every member is a
        :class:`~repro.core.speed_function.PiecewiseLinearSpeedFunction`
        the vectorised pack is built here, once, and reused by every
        partition call made through the planner.
    name:
        Optional human-readable label (shown in CLI output).
    pack:
        Optional precompiled
        :class:`~repro.core.vectorized.PiecewiseLinearSet` for exactly
        these functions, skipping the ``O(p*m)`` repack.  The online
        refitter passes one built by re-lowering only the re-fitted
        machines' rows on top of the previous pack's.  The caller is
        responsible for the pack matching ``speed_functions`` knot for
        knot; only the processor count is checked here.
    """

    __slots__ = ("_sfs", "_pack", "_fingerprint", "_capacity", "_name")

    def __init__(
        self,
        speed_functions: Sequence[SpeedFunction],
        *,
        name: str | None = None,
        pack: PiecewiseLinearSet | None = None,
    ):
        sfs = tuple(speed_functions)
        if not sfs:
            raise InvalidSpeedFunctionError(
                "a fleet needs at least one speed function"
            )
        for i, sf in enumerate(sfs):
            if not isinstance(sf, SpeedFunction):
                raise InvalidSpeedFunctionError(
                    f"speed_functions[{i}] is not a SpeedFunction: {sf!r}"
                )
        if pack is not None and pack.p != len(sfs):
            raise InvalidSpeedFunctionError(
                f"pack covers {pack.p} processors, fleet has {len(sfs)}"
            )
        self._sfs = sfs
        self._pack: PiecewiseLinearSet | None = (
            pack if pack is not None else pack_speed_functions(sfs)
        )
        self._capacity = float(sum(sf.max_size for sf in sfs))
        self._name = name
        if self._pack is not None:
            self._fingerprint = self._pack.fingerprint
        else:
            h = hashlib.blake2b(digest_size=16)
            for sf in sfs:
                h.update(_describe(sf))
                h.update(b"|")
            self._fingerprint = h.hexdigest()

    # -- accessors ------------------------------------------------------
    @property
    def speed_functions(self) -> tuple[SpeedFunction, ...]:
        """The member speed functions, in processor order."""
        return self._sfs

    @property
    def pack(self) -> PiecewiseLinearSet | None:
        """The shared vectorised pack (``None`` for non-packable fleets)."""
        return self._pack

    @property
    def fingerprint(self) -> str:
        """Stable content hash identifying this fleet in plan-cache keys."""
        return self._fingerprint

    @property
    def p(self) -> int:
        """Number of processors."""
        return len(self._sfs)

    @property
    def capacity(self) -> float:
        """Combined memory bound: the largest feasible problem size."""
        return self._capacity

    @property
    def name(self) -> str:
        return self._name or f"fleet-p{self.p}"

    def rescaled(self, factors: Sequence[float]) -> "Fleet":
        """A fleet with member speeds multiplied by per-processor ``factors``.

        This is the drift-correction primitive: ``adapt``'s EWMA updates
        produce one positive factor per processor, and the rescaled fleet
        must be cheap because it is rebuilt on every correction.  For a
        packed fleet the shared arrays are reused through
        :meth:`~repro.core.vectorized.PiecewiseLinearSet.rescaled` — an
        ``O(p)`` scale-vector clone, not an ``O(p*m)`` repack — and the
        members become lazy ``scaled()`` wrappers over the originals.
        Falls back to a full :class:`Fleet` construction when the pack is
        absent or carries comm rows (whose scale cannot change in place).
        """
        f = np.asarray(factors, dtype=float)
        if f.shape != (self.p,):
            raise InvalidSpeedFunctionError(
                f"factors must have shape ({self.p},), got {f.shape}"
            )
        if np.any(f <= 0):
            raise InvalidSpeedFunctionError("scale factors must be positive")
        sfs = tuple(
            sf if fi == 1.0 else sf.scaled(float(fi))
            for sf, fi in zip(self._sfs, f)
        )
        if self._pack is None:
            return Fleet(sfs, name=self._name)
        try:
            pack = self._pack.rescaled(f)
        except ValueError:  # comm rows: scale does not commute, rebuild
            return Fleet(sfs, name=self._name)
        fleet = object.__new__(Fleet)
        fleet._sfs = sfs
        fleet._pack = pack
        fleet._capacity = self._capacity  # scaling speeds keeps max sizes
        fleet._name = self._name
        fleet._fingerprint = pack.fingerprint
        return fleet

    def __len__(self) -> int:
        return len(self._sfs)

    def __repr__(self) -> str:
        kind = "packed" if self._pack is not None else "generic"
        return (
            f"Fleet({self.name}, p={self.p}, {kind}, "
            f"fingerprint={self._fingerprint[:8]}...)"
        )

    # -- evaluation helpers ---------------------------------------------
    def allocator(self) -> Callable[[float], np.ndarray]:
        """``slope -> allocations`` callable backed by the shared pack."""
        if self._pack is not None:
            return self._pack.allocations

        sfs = self._sfs

        def generic(slope: float) -> np.ndarray:
            return np.array([sf.intersect_ray(slope) for sf in sfs], dtype=float)

        return generic

    def allocations(self, slope: float) -> np.ndarray:
        """Ray intersections of ``y = slope*x`` with every member graph."""
        return self.allocator()(slope)

    def total(self, slope: float) -> float:
        """Total allocation of the ray with the given slope."""
        return float(self.allocations(slope).sum())

"""Thread-safe LRU cache for partition plans.

A plan is a pure function of ``(fleet fingerprint, n, algorithm, refine,
mode)``; correctness therefore never *requires* invalidation — a fleet
whose models change gets a new fingerprint and thereby a fresh key
space, and stale entries for the old fingerprint would simply age out
of the LRU order.  Online re-fitting makes eager reclamation worth
having, though: when :class:`repro.model.OnlineBandRefitter` retires a
fingerprint the dead entries still occupy LRU slots that evict *live*
plans, so :meth:`PlanCache.invalidate` drops exactly the retired
fingerprint's entries (and nothing else — no blanket flush), counted by
the ``planner.cache.invalidations`` metric.

The implementation is a classic ``OrderedDict`` LRU under a single lock
(every operation is O(1) and holds the lock for nanoseconds, so one lock
beats sharding at any realistic query rate).  The hit/miss/eviction
counters are :class:`repro.obs.Counter` objects registered in the global
:class:`~repro.obs.MetricsRegistry` under a per-instance ``cache`` label
— :meth:`stats` and ``repro stats`` read the *same* objects, so the
:class:`CacheStats` snapshot and the exported telemetry can never
disagree.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from .. import obs

__all__ = ["CacheStats", "PlanCache"]

#: Distinguishes auto-named cache instances in the metrics registry.
_CACHE_SEQ = itertools.count(1)


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"invalidations={self.invalidations} "
            f"size={self.size}/{self.maxsize} hit_rate={self.hit_rate:.1%}"
        )


class PlanCache:
    """Bounded LRU mapping plan keys to cached results (thread-safe).

    ``name`` labels this instance's counters in the metrics registry
    (auto-generated when omitted; instances sharing an explicit name
    share counters, so give distinct caches distinct names).
    """

    def __init__(self, maxsize: int = 1024, *, name: str | None = None):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = int(maxsize)
        self._name = name or f"plancache-{next(_CACHE_SEQ)}"
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        labels = {"cache": self._name}
        registry = obs.get_registry()
        self._hits = registry.counter(
            "planner.cache.hits", labels=labels, help="plan-cache lookup hits"
        )
        self._misses = registry.counter(
            "planner.cache.misses", labels=labels, help="plan-cache lookup misses"
        )
        self._evictions = registry.counter(
            "planner.cache.evictions", labels=labels, help="LRU evictions"
        )
        self._invalidations = registry.counter(
            "planner.cache.invalidations",
            labels=labels,
            help="entries dropped by explicit invalidation",
        )

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses.inc()
                return None
            self._data.move_to_end(key)
            self._hits.inc()
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def invalidate(self, fingerprint: Hashable) -> int:
        """Drop exactly the entries belonging to one fleet fingerprint.

        Matches keys that *are* the fingerprint or tuple keys whose first
        element is the fingerprint (the :class:`~.planner.Planner` key
        shape ``(fingerprint, n, algorithm, refine, mode)``).  Returns
        the number of entries dropped; untouched fingerprints keep their
        entries and their LRU positions.
        """
        return self.invalidate_where(
            lambda key: key == fingerprint
            or (isinstance(key, tuple) and bool(key) and key[0] == fingerprint)
        )

    def invalidate_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; return the count.

        The predicate runs under the cache lock — keep it cheap and
        side-effect free.
        """
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            if doomed:
                self._invalidations.inc(len(doomed))
            return len(doomed)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def name(self) -> str:
        """The instance label under which counters are registered."""
        return self._name

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits.value,
                misses=self._misses.value,
                evictions=self._evictions.value,
                size=len(self._data),
                maxsize=self._maxsize,
                invalidations=self._invalidations.value,
            )

"""Flop and element accounting for the paper's kernels.

The paper defines (section 3.1):

* absolute speed  = ``MF * n^3 / time`` with ``MF = 2`` for matrix
  multiplication and ``MF = 2/3`` for LU factorisation;
* problem size    = the amount of data stored and processed — ``3 n^2``
  elements for C=A*B^T (three dense matrices) and ``n^2`` for LU.

These conversions keep the model speed axis (MFlops) and the partitioning
axis (elements) consistent: under a striped distribution with the matrix
dimension ``n`` fixed, the flop count of a slice is a *shared linear*
function of its element count, so equalising ``elements/speed`` equalises
real execution time (DESIGN.md section 4).
"""

from __future__ import annotations

from ..exceptions import ConfigurationError

__all__ = [
    "MM_MF",
    "LU_MF",
    "mm_flops",
    "mm_flops_rect",
    "mm_elements",
    "mm_slice_flops",
    "lu_flops",
    "lu_flops_rect",
    "lu_elements",
    "arrayops_flops",
    "mflops",
]

#: The paper's MF constants.
MM_MF = 2.0
LU_MF = 2.0 / 3.0


def _check_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value!r}")


def mm_flops(n: int) -> float:
    """Flops of a dense square ``n x n`` matrix multiplication: ``2 n^3``."""
    _check_positive(n=n)
    return MM_MF * float(n) ** 3


def mm_flops_rect(n1: int, n2: int) -> float:
    """Flops of ``A1 (n1 x n2) @ B1 (n2 x n1)``: ``2 n1^2 n2``.

    The serial benchmark of figure 16(b) used to estimate processor speed.
    """
    _check_positive(n1=n1, n2=n2)
    return 2.0 * float(n1) ** 2 * float(n2)


def mm_elements(n: int) -> int:
    """Problem size of square MM in elements: ``3 n^2`` (A, B and C)."""
    _check_positive(n=n)
    return 3 * int(n) * int(n)


def mm_slice_flops(elements: float, n: int) -> float:
    """Flops of an MM slice holding ``elements`` of the three matrices.

    A slice of ``r`` rows stores ``3 r n`` elements and multiplies an
    ``r x n`` strip by the ``n x n`` matrix: ``2 r n^2`` flops, i.e.
    ``(2 n / 3) * elements`` — linear in the element count with the shared
    coefficient ``2n/3``.
    """
    _check_positive(n=n)
    if elements < 0:
        raise ConfigurationError(f"elements must be non-negative, got {elements!r}")
    return (2.0 * float(n) / 3.0) * float(elements)


def lu_flops(n: int) -> float:
    """Flops of dense LU of an ``n x n`` matrix: ``(2/3) n^3``."""
    _check_positive(n=n)
    return LU_MF * float(n) ** 3


def lu_flops_rect(n1: int, n2: int) -> float:
    """Flops of LU of a dense ``n1 x n2`` matrix (``n1 >= n2``).

    Standard count ``n2^2 (n1 - n2/3)``; reduces to ``(2/3) n^3`` when
    square.  Used by the rectangular serial benchmark of figure 17(c).
    """
    _check_positive(n1=n1, n2=n2)
    if n1 < n2:
        n1, n2 = n2, n1  # LU of the transpose costs the same
    return float(n2) ** 2 * (float(n1) - float(n2) / 3.0)


def lu_elements(n: int) -> int:
    """Problem size of LU in elements: ``n^2``."""
    _check_positive(n=n)
    return int(n) * int(n)


def arrayops_flops(n: int, passes: int = 4) -> float:
    """Flops of the streaming array kernel: ``passes`` ops per element."""
    _check_positive(n=n, passes=passes)
    return float(passes) * float(n)


def mflops(flops: float, seconds: float) -> float:
    """Absolute speed in MFlops from a flop count and a wall time."""
    if flops < 0:
        raise ConfigurationError(f"flops must be non-negative, got {flops!r}")
    if seconds <= 0:
        raise ConfigurationError(f"seconds must be positive, got {seconds!r}")
    return flops / seconds / 1e6

"""Horizontal striped partitioning of matrices (figure 16a).

The paper's parallel C = A * B^T slices A, B and C into horizontal stripes
whose element counts are proportional to processor speed.  The partitioner
works in elements; this module converts element allocations to whole-row
stripes and back, preserving exact totals:

* :func:`rows_from_elements` — element allocation (summing to ``3 n^2``
  for MM) to per-processor row counts summing to exactly ``n``;
* :func:`row_slices` — row counts to ``slice`` objects;
* :func:`stripe_matrix` — cut a concrete matrix into stripe views.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError, InfeasiblePartitionError

__all__ = ["rows_from_elements", "row_slices", "stripe_matrix", "elements_from_rows"]


def rows_from_elements(
    allocation: Sequence[int], n: int, matrices: int = 3
) -> np.ndarray:
    """Whole-row stripe sizes from an element allocation.

    Parameters
    ----------
    allocation:
        Elements per processor, summing to ``matrices * n * n``.
    n:
        Matrix dimension (rows to distribute).
    matrices:
        Matrices striped together (3 for A, B, C).

    Each processor's fractional row share is ``allocation_i / (matrices *
    n)``; shares are floored and the remaining rows are assigned by largest
    remainder, so the result sums to exactly ``n`` and differs from the
    fractional share by less than one row per processor.
    """
    alloc = np.asarray(allocation, dtype=float)
    if n <= 0:
        raise ConfigurationError(f"matrix dimension must be positive, got {n}")
    expected = float(matrices) * n * n
    if abs(alloc.sum() - expected) > 0.5:
        raise InfeasiblePartitionError(
            f"element allocation sums to {alloc.sum():g}, expected {expected:g}"
        )
    share = alloc / (matrices * n)
    rows = np.floor(share).astype(np.int64)
    remainder = share - rows
    deficit = int(n - rows.sum())
    if deficit < 0:  # pragma: no cover - floor() keeps the sum below n
        raise InfeasiblePartitionError("row rounding overflow")
    for i in np.argsort(-remainder, kind="stable")[:deficit]:
        rows[i] += 1
    return rows


def elements_from_rows(rows: Sequence[int], n: int, matrices: int = 3) -> np.ndarray:
    """Element counts of whole-row stripes (inverse of the conversion)."""
    r = np.asarray(rows, dtype=np.int64)
    if np.any(r < 0):
        raise ConfigurationError("row counts must be non-negative")
    return r * int(matrices) * int(n)


def row_slices(rows: Sequence[int]) -> list[slice]:
    """Contiguous row ``slice`` objects for the given stripe sizes."""
    slices = []
    start = 0
    for r in rows:
        r = int(r)
        if r < 0:
            raise ConfigurationError("row counts must be non-negative")
        slices.append(slice(start, start + r))
        start += r
    return slices


def stripe_matrix(a: np.ndarray, rows: Sequence[int]) -> list[np.ndarray]:
    """Views of ``a`` cut into horizontal stripes of the given sizes."""
    if a.ndim != 2:
        raise ConfigurationError("stripe_matrix expects a 2-D array")
    total = int(np.sum(rows))
    if total != a.shape[0]:
        raise InfeasiblePartitionError(
            f"stripe rows sum to {total}, matrix has {a.shape[0]} rows"
        )
    return [a[s, :] for s in row_slices(rows)]

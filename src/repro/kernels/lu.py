"""Dense LU factorisation with partial pivoting (real NumPy implementation).

A blocked right-looking LU used three ways in the reproduction:

* as the **serial benchmark** (square and rectangular, figure 17c) whose
  timing builds empirical LU speed functions;
* as the **correctness core** of the parallel LU example;
* as the flop-count reference for the simulator.

The algorithm is the textbook blocked factorisation: factor a panel of
``b`` columns with partial pivoting, apply the pivots across, solve the
triangular block row, then rank-``b`` update the trailing matrix — the
same structure ScaLAPACK's right-looking LU (and hence the paper's
application) uses.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["lu_factor", "lu_reconstruct", "lu_unblocked_panel"]


def lu_unblocked_panel(a: np.ndarray, piv: np.ndarray, offset: int) -> None:
    """Unblocked partial-pivoting LU of a tall panel, in place.

    ``a`` is the ``m x b`` panel; ``piv[offset + j]`` records the absolute
    row swapped into position ``j``.  Raises on an exactly singular panel.
    """
    m, b = a.shape
    for j in range(min(m, b)):
        k = int(np.argmax(np.abs(a[j:, j]))) + j
        if a[k, j] == 0.0:
            raise ConfigurationError("matrix is singular to working precision")
        piv[offset + j] = offset + k
        if k != j:
            a[[j, k], :] = a[[k, j], :]
        a[j + 1 :, j] /= a[j, j]
        if j + 1 < b:
            a[j + 1 :, j + 1 :] -= np.outer(a[j + 1 :, j], a[j, j + 1 :])


def lu_factor(a: np.ndarray, block: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Blocked LU with partial pivoting: returns ``(LU, piv)``.

    ``LU`` packs the unit-lower factor below the diagonal and ``U`` on and
    above; ``piv`` is the sequence of row interchanges in LAPACK ``ipiv``
    convention (``piv[j]`` is the row swapped with ``j`` at step ``j``).
    Accepts rectangular ``m x n`` input (factors ``min(m, n)`` columns),
    which the rectangular serial benchmark of figure 17(c) exercises.
    """
    if a.ndim != 2:
        raise ConfigurationError("lu_factor expects a 2-D array")
    if block <= 0:
        raise ConfigurationError(f"block must be positive, got {block}")
    lu = np.array(a, dtype=float, copy=True, order="C")
    m, n = lu.shape
    kmax = min(m, n)
    piv = np.arange(kmax)
    for j0 in range(0, kmax, block):
        j1 = min(j0 + block, kmax)
        b = j1 - j0
        # Panel factorisation (rows j0.., columns j0..j1).
        panel = lu[j0:, j0:j1]
        local_piv = np.empty(b, dtype=np.int64)
        _panel_piv = np.zeros(j0 + b, dtype=np.int64)
        lu_unblocked_panel(panel, _panel_piv, 0)
        local_piv[:] = _panel_piv[:b]
        # Apply the panel's row interchanges to the rest of the matrix.
        for jj in range(b):
            k = int(local_piv[jj])
            piv[j0 + jj] = j0 + k
            if k != jj:
                if j0 > 0:
                    lu[[j0 + jj, j0 + k], :j0] = lu[[j0 + k, j0 + jj], :j0]
                if j1 < n:
                    lu[[j0 + jj, j0 + k], j1:] = lu[[j0 + k, j0 + jj], j1:]
        if j1 < n:
            # Block row: U12 = L11^{-1} A12 by forward substitution.
            l11 = lu[j0:j1, j0:j1]
            a12 = lu[j0:j1, j1:]
            for r in range(1, b):
                a12[r, :] -= l11[r, :r] @ a12[:r, :]
            # Trailing update: A22 -= L21 @ U12.
            if j1 < m:
                lu[j1:, j1:] -= lu[j1:, j0:j1] @ a12
    return lu, piv


def lu_reconstruct(lu: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Rebuild ``P @ A`` from the packed factors (testing aid).

    Returns ``L @ U``; callers compare against the pivoted original.
    """
    m, n = lu.shape
    k = min(m, n)
    lower = np.tril(lu[:, :k], -1) + np.eye(m, k)
    upper = np.triu(lu[:k, :])
    return lower @ upper


def apply_pivots(a: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply the recorded row interchanges to a fresh copy of ``a``."""
    out = np.array(a, dtype=float, copy=True)
    for j, k in enumerate(piv):
        if k != j:
            out[[j, int(k)], :] = out[[int(k), j], :]
    return out


__all__.append("apply_pivots")

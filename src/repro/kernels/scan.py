"""Pattern scanning over large linear data files (the intro's motivation).

The paper's opening examples of target applications are "search for
patterns in text, audio, graphical files, processing of very large linear
data files".  This kernel implements that class: counting occurrences of a
byte pattern in a large buffer, vectorised with NumPy so the speed is
memory-bandwidth-bound — the streaming behaviour class of figure 1(a).

The data splits into contiguous chunks whose sizes the partitioner chooses
(problem size = bytes scanned), making it the natural third application
next to MM and LU.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["count_pattern", "scan_chunks", "chunk_offsets"]


def count_pattern(data: bytes | np.ndarray, pattern: bytes) -> int:
    """Number of (possibly overlapping) occurrences of ``pattern`` in ``data``.

    Vectorised sliding comparison: one boolean reduction per pattern byte.
    """
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8 or data.ndim != 1:
            raise ConfigurationError("data array must be 1-D uint8")
        buf = data
    else:
        buf = np.frombuffer(data, dtype=np.uint8)
    if len(pattern) == 0:
        raise ConfigurationError("pattern must be non-empty")
    m = len(pattern)
    if buf.size < m:
        return 0
    mask = buf[: buf.size - m + 1] == pattern[0]
    for k in range(1, m):
        mask &= buf[k : buf.size - m + 1 + k] == pattern[k]
    return int(np.count_nonzero(mask))


def chunk_offsets(total: int, sizes) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` chunks covering ``[0, total)``.

    ``sizes`` must be non-negative and sum to ``total``.
    """
    sizes = [int(s) for s in sizes]
    if any(s < 0 for s in sizes):
        raise ConfigurationError("chunk sizes must be non-negative")
    if sum(sizes) != total:
        raise ConfigurationError(
            f"chunk sizes sum to {sum(sizes)}, expected {total}"
        )
    out = []
    start = 0
    for s in sizes:
        out.append((start, start + s))
        start += s
    return out


def scan_chunks(
    data: bytes | np.ndarray, pattern: bytes, sizes
) -> tuple[int, list[int]]:
    """Scan ``data`` in partitioned chunks; returns (total, per-chunk counts).

    Each chunk scans an extended window reaching ``len(pattern) - 1`` bytes
    past its right edge, which counts exactly the matches *starting* inside
    the chunk: the window's last admissible start position is
    ``stop - 1``.  Hence no boundary match is lost or double-counted and
    the total equals the whole-buffer count.
    """
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8 or data.ndim != 1:
            raise ConfigurationError("data array must be 1-D uint8")
        buf = data
    else:
        buf = np.frombuffer(data, dtype=np.uint8)
    m = len(pattern)
    if m == 0:
        raise ConfigurationError("pattern must be non-empty")
    counts = []
    for start, stop in chunk_offsets(buf.size, sizes):
        if stop <= start:
            counts.append(0)
            continue
        window = buf[start : min(stop + m - 1, buf.size)]
        counts.append(count_pattern(window, pattern))
    return sum(counts), counts

"""Computational kernels and data distributions used by the evaluation."""

from .arrayops import ARRAYOPS_PASSES, array_ops
from .flops import (
    LU_MF,
    MM_MF,
    arrayops_flops,
    lu_elements,
    lu_flops,
    lu_flops_rect,
    mflops,
    mm_elements,
    mm_flops,
    mm_flops_rect,
    mm_slice_flops,
)
from .group_block import GroupBlockDistribution, variable_group_block
from .lu import apply_pivots, lu_factor, lu_reconstruct, lu_unblocked_panel
from .matmul import matmul_abt, matmul_blocked, matmul_poor, matmul_reference
from .scan import chunk_offsets, count_pattern, scan_chunks
from .striped import (
    elements_from_rows,
    row_slices,
    rows_from_elements,
    stripe_matrix,
)

__all__ = [
    "ARRAYOPS_PASSES",
    "GroupBlockDistribution",
    "LU_MF",
    "MM_MF",
    "apply_pivots",
    "array_ops",
    "arrayops_flops",
    "chunk_offsets",
    "count_pattern",
    "elements_from_rows",
    "lu_elements",
    "lu_factor",
    "lu_flops",
    "lu_flops_rect",
    "lu_reconstruct",
    "lu_unblocked_panel",
    "matmul_abt",
    "matmul_blocked",
    "matmul_poor",
    "matmul_reference",
    "mflops",
    "mm_elements",
    "mm_flops",
    "mm_flops_rect",
    "mm_slice_flops",
    "row_slices",
    "rows_from_elements",
    "scan_chunks",
    "stripe_matrix",
    "variable_group_block",
]

"""Dense matrix multiplication kernels (real NumPy implementations).

Three kernels matching the three behaviour classes the paper motivates
(figure 1):

* :func:`matmul_blocked` — cache-blocked multiplication built on per-block
  BLAS calls: the stand-in for MatrixMultATLAS;
* :func:`matmul_poor` — the straightforward row-times-column algorithm
  with poor memory reference patterns: the stand-in for MatrixMult;
* :func:`matmul_reference` — a single BLAS call, used as the correctness
  oracle and for fast bulk work.

All kernels compute the paper's matrix operation ``C = A @ B.T`` (figure
16) when called through :func:`matmul_abt`, and plain ``A @ B`` otherwise.
They are genuinely executed by the measurement examples to build empirical
speed functions on the host running the tests.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "matmul_reference",
    "matmul_blocked",
    "matmul_poor",
    "matmul_abt",
]


def _check_mm_shapes(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim != 2 or b.ndim != 2:
        raise ConfigurationError("matmul operands must be 2-D")
    if a.shape[1] != b.shape[0]:
        raise ConfigurationError(
            f"incompatible shapes for matmul: {a.shape} x {b.shape}"
        )


def matmul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain BLAS ``a @ b`` (correctness oracle)."""
    _check_mm_shapes(a, b)
    return a @ b


def matmul_blocked(a: np.ndarray, b: np.ndarray, block: int = 128) -> np.ndarray:
    """Cache-blocked multiplication (the ATLAS-like kernel).

    Loops over ``block x block`` tiles accumulating ``C[i, j] += A[i, k] @
    B[k, j]``; each tile product is a contiguous BLAS call, so the working
    set per step is three tiles — the standard blocking that keeps dgemm
    near peak across problem sizes.
    """
    _check_mm_shapes(a, b)
    if block <= 0:
        raise ConfigurationError(f"block must be positive, got {block}")
    m, k = a.shape
    _, n = b.shape
    c = np.zeros((m, n), dtype=np.result_type(a, b))
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        for k0 in range(0, k, block):
            k1 = min(k0 + block, k)
            a_tile = np.ascontiguousarray(a[i0:i1, k0:k1])
            for j0 in range(0, n, block):
                j1 = min(j0 + block, n)
                c[i0:i1, j0:j1] += a_tile @ b[k0:k1, j0:j1]
    return c


def matmul_poor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-times-column multiplication with poor reference patterns.

    Computes each output row as a sequence of dot products against the
    *columns* of ``b`` — strided accesses that defeat the cache, just like
    the paper's straightforward MatrixMult.  Python-level loop over rows;
    intended for the modest sizes used in measurement examples.
    """
    _check_mm_shapes(a, b)
    m, k = a.shape
    _, n = b.shape
    c = np.empty((m, n), dtype=np.result_type(a, b))
    for i in range(m):
        row = a[i, :]
        for j in range(n):
            # Strided column access: b[:, j] is non-contiguous for C order.
            c[i, j] = np.dot(row, b[:, j])
    return c


def matmul_abt(
    a: np.ndarray, b: np.ndarray, *, kernel: str = "reference", block: int = 128
) -> np.ndarray:
    """The paper's matrix operation ``C = A @ B.T`` (figure 16a).

    ``kernel`` selects ``"reference"``, ``"blocked"`` or ``"poor"``.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ConfigurationError(
            f"C = A @ B.T needs matching column counts, got {a.shape}, {b.shape}"
        )
    bt = b.T
    if kernel == "reference":
        return matmul_reference(a, bt)
    if kernel == "blocked":
        return matmul_blocked(a, bt, block=block)
    if kernel == "poor":
        return matmul_poor(a, bt)
    raise ConfigurationError(f"unknown kernel {kernel!r}")

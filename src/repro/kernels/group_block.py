"""The Variable Group Block distribution for LU factorisation (section 3.1).

LU factorisation shrinks the active matrix at every step, so a static
column distribution must balance *every* step, not just the first.  The
paper's Variable Group Block distribution partitions the matrix vertically
into groups of ``b``-wide column blocks; the size of each group and the
distribution of its blocks over processors are derived from the functional
model *at the problem size remaining when that group is reached*:

1. run the set-partitioning algorithm on the remaining ``m x m`` submatrix
   (``m^2`` elements) to get the optimal distribution ``(x_i, s_i)``;
2. the group holds ``g = sum_i s_i / min_i s_i`` blocks (doubled when
   ``g/p < 2`` so every group has enough blocks to distribute);
3. the ``g`` blocks are split over processors proportionally to the
   ``s_i`` and laid out fastest-processor-first;
4. in the *last* group the order is reversed so the fastest processor
   owns the final blocks (it keeps working longest as the matrix empties).

The figure 17(b) example (``n=576, b=32, p=3`` giving groups
``{0,0,0,1,1,2} {0,0,0,1,2} {2,2,1,1,0,0,0}``) is reproduced structurally
in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.constant_model import partition_constant
from ..core.partition import partition
from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError, InfeasiblePartitionError

__all__ = ["GroupBlockDistribution", "variable_group_block"]


@dataclass
class GroupBlockDistribution:
    """A static column-block-to-processor assignment in groups.

    Attributes
    ----------
    n:
        Matrix dimension.
    b:
        Column block width.
    groups:
        One integer array per group; entry ``j`` is the processor owning
        the group's ``j``-th column block.
    """

    n: int
    b: int
    groups: list[np.ndarray]

    def __post_init__(self) -> None:
        self.groups = [np.asarray(g, dtype=np.int64) for g in self.groups]

    @property
    def num_blocks(self) -> int:
        """Total number of column blocks: ``ceil(n / b)``."""
        return -(-self.n // self.b)

    @property
    def block_owners(self) -> np.ndarray:
        """Flat owner array over all column blocks, in matrix order."""
        if not self.groups:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self.groups)

    def owner(self, block: int) -> int:
        """Processor owning one column block."""
        owners = self.block_owners
        if not (0 <= block < owners.size):
            raise ConfigurationError(
                f"block {block} out of range [0, {owners.size})"
            )
        return int(owners[block])

    def group_sizes(self) -> np.ndarray:
        """Number of blocks in each group (``g_1, g_2, ..., g_m``)."""
        return np.array([g.size for g in self.groups], dtype=np.int64)

    def counts(self, p: int, *, start_block: int = 0) -> np.ndarray:
        """Blocks owned by each of ``p`` processors from ``start_block`` on.

        The simulator calls this at every elimination step to know how many
        trailing column blocks each processor updates.
        """
        owners = self.block_owners[start_block:]
        return np.bincount(owners, minlength=p).astype(np.int64)

    def column_owner(self, col: int) -> int:
        """Processor owning one matrix column."""
        if not (0 <= col < self.n):
            raise ConfigurationError(f"column {col} out of range [0, {self.n})")
        return self.owner(col // self.b)


def _group_speeds(
    speed_functions: Sequence[SpeedFunction], allocation: np.ndarray
) -> np.ndarray:
    """Speeds exhibited at the optimal allocation (zero-allocation -> 0)."""
    speeds = np.zeros(len(speed_functions), dtype=float)
    for i, (sf, x) in enumerate(zip(speed_functions, allocation)):
        if x > 0:
            speeds[i] = float(sf.speed(float(x)))
    return speeds


def variable_group_block(
    n: int,
    b: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    algorithm: str = "combined",
) -> GroupBlockDistribution:
    """Compute the Variable Group Block distribution.

    Parameters
    ----------
    n:
        Matrix dimension.
    b:
        Column block width.
    speed_functions:
        Per-processor speed functions for the LU kernel, in *elements* of
        the (square) problem remaining at each group boundary.  Constant
        speed functions reproduce the single-number Group Block baseline.
    algorithm:
        Set-partitioning algorithm used at each group boundary.
    """
    if n <= 0 or b <= 0:
        raise ConfigurationError(f"n and b must be positive, got n={n}, b={b}")
    p = len(speed_functions)
    if p == 0:
        raise InfeasiblePartitionError("no processors")
    total_blocks = -(-n // b)
    blocks_left = total_blocks
    rem_cols = n
    groups: list[np.ndarray] = []

    while blocks_left > 0:
        m = max(rem_cols, b)  # dimension of the submatrix this group sees
        result = partition(m * m, speed_functions, algorithm=algorithm)
        speeds = _group_speeds(speed_functions, result.allocation)
        active = speeds > 0
        if not np.any(active):
            raise InfeasiblePartitionError(
                "all processors received zero elements; cannot size a group"
            )
        s_min = float(speeds[active].min())
        g = int(round(float(speeds.sum()) / s_min))
        if g / p < 2:
            # Paper: double the group so it has enough blocks to distribute.
            g = int(round(2.0 * float(speeds.sum()) / s_min))
        g = max(g, 1)
        g = min(g, blocks_left)
        last = g == blocks_left

        counts = partition_constant(g, np.maximum(speeds, 1e-300)).allocation
        order = np.argsort(-speeds, kind="stable")  # fastest processor first
        if last:
            order = order[::-1]  # slowest first => fastest processor last
        seq = np.concatenate(
            [np.full(int(counts[i]), i, dtype=np.int64) for i in order]
        ) if g else np.zeros(0, dtype=np.int64)
        groups.append(seq)

        blocks_left -= g
        rem_cols = max(rem_cols - g * b, 0)

    dist = GroupBlockDistribution(n=n, b=b, groups=groups)
    assert dist.block_owners.size == total_blocks
    return dist

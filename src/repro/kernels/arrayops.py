"""Streaming array kernel (the ArrayOpsF analogue of figure 1a).

A carefully designed, memory-hierarchy-friendly kernel: several vectorised
passes over a contiguous array.  It runs near the machine's streaming peak
while the array fits in a cache level and degrades sharply at each
boundary — the "sharp and distinctive performance curve" the paper
contrasts with the smooth MatrixMult curve.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["array_ops", "ARRAYOPS_PASSES"]

#: Floating-point operations per element performed by :func:`array_ops`.
ARRAYOPS_PASSES = 4


def array_ops(a: np.ndarray) -> np.ndarray:
    """Four fused streaming passes over ``a`` (scale, shift, square, add).

    Operates on a copy; returns the transformed array.  The flop count is
    ``ARRAYOPS_PASSES * a.size``.
    """
    if a.ndim != 1:
        raise ConfigurationError("array_ops expects a 1-D array")
    out = a.astype(float, copy=True)
    out *= 1.000001          # pass 1: scale
    out += 0.5               # pass 2: shift
    out *= out               # pass 3: square
    out += a                 # pass 4: accumulate the original
    return out

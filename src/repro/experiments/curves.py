"""Figure 1 and figure 2 data series: speed curves and performance bands.

Figure 1 plots absolute speed against problem size for three applications
(ArrayOpsF, MatrixMultATLAS, MatrixMult) on the four Table 1 machines,
annotating the point ``P`` where paging starts.  Figure 2 shows the
workload-fluctuation bands of MatrixMultATLAS on Comp1, Comp2 and Comp4,
with widths of ~30-40 % at small sizes narrowing to ~5-8 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machines.network import HeterogeneousNetwork, Machine

__all__ = ["SpeedCurve", "BandCurve", "fig1_curves", "fig2_bands", "paging_point"]


@dataclass
class SpeedCurve:
    """One machine/kernel speed-versus-size series.

    Sizes are in elements; ``paging_onset`` marks the paper's point ``P``.
    """

    machine: str
    kernel: str
    sizes: np.ndarray
    speeds: np.ndarray
    paging_onset: float

    @property
    def peak(self) -> float:
        """Maximum speed over the series."""
        return float(self.speeds.max())


@dataclass
class BandCurve:
    """One machine's performance band samples (figure 2).

    ``width_percent`` is the band width as a percentage of the machine's
    maximum speed, sampled along ``sizes``.
    """

    machine: str
    kernel: str
    sizes: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    width_percent: np.ndarray
    relative_width_percent: np.ndarray


def paging_point(machine: Machine, kernel: str, *, drop: float = 0.5) -> float:
    """Estimate the paging onset ``P`` from a machine's ground-truth curve.

    Scans the curve and returns the smallest size where the speed falls
    below ``drop`` times the pre-decline plateau (the speed at 10 % of the
    domain).  Figure 1 marks exactly this knee.
    """
    sf = machine.speed_function(kernel)
    xs = np.geomspace(max(sf.max_size * 1e-5, 1.0), sf.max_size, 600)
    speeds = np.asarray(sf.speed(xs), dtype=float)
    plateau = float(np.max(speeds))
    below = np.nonzero(speeds < drop * plateau)[0]
    # Ignore the start-up ramp: only knees past the plateau peak count.
    peak_idx = int(np.argmax(speeds))
    below = below[below > peak_idx]
    if below.size == 0:
        return float(sf.max_size)
    return float(xs[int(below[0])])


def fig1_curves(
    network: HeterogeneousNetwork,
    kernels: tuple[str, ...] = ("arrayops", "matmul_atlas", "matmul_naive"),
    *,
    num: int = 80,
) -> dict[str, list[SpeedCurve]]:
    """Figure 1: per-kernel speed curves for every machine of the network.

    Returns ``{kernel: [SpeedCurve per machine]}``; each curve samples the
    machine's ground-truth midline on a log grid up to its capacity.
    """
    out: dict[str, list[SpeedCurve]] = {}
    for kernel in kernels:
        series = []
        for m in network:
            sf = m.speed_function(kernel)
            xs = np.geomspace(max(sf.max_size * 1e-5, 1.0), sf.max_size, num)
            series.append(
                SpeedCurve(
                    machine=m.name,
                    kernel=kernel,
                    sizes=xs,
                    speeds=np.asarray(sf.speed(xs), dtype=float),
                    paging_onset=paging_point(m, kernel),
                )
            )
        out[kernel] = series
    return out


def fig2_bands(
    network: HeterogeneousNetwork,
    machines: tuple[str, ...] = ("Comp1", "Comp2", "Comp4"),
    kernel: str = "matmul_atlas",
    *,
    num: int = 40,
) -> list[BandCurve]:
    """Figure 2: fluctuation bands of the ATLAS kernel on selected machines."""
    out = []
    for name in machines:
        m = network[name]
        band = m.band(kernel)
        sf = band.midline
        xs = np.geomspace(max(sf.max_size * 1e-4, 1.0), sf.max_size, num)
        lower = np.asarray(band.lower_speed(xs), dtype=float)
        upper = np.asarray(band.upper_speed(xs), dtype=float)
        mid = np.asarray(sf.speed(xs), dtype=float)
        peak = float(np.max(upper))
        out.append(
            BandCurve(
                machine=name,
                kernel=kernel,
                sizes=xs,
                lower=lower,
                upper=upper,
                # Paper's axis: width as % of the maximum speed...
                width_percent=100.0 * (upper - lower) / peak,
                # ...and the schedule itself (40% -> 6%), % of the midline.
                relative_width_percent=100.0 * (upper - lower) / np.maximum(mid, 1e-300),
            )
        )
    return out

"""Tables 3 and 4: square vs non-square speed invariance.

The paper justifies benchmarking with *square* matrices by showing that
its serial MM and LU kernels run at almost the same speed on a non-square
matrix with the same number of elements (Tables 3 and 4: four element
counts, aspect ratios up to 64:1, speeds within a few MFlops).

These experiments actually run the NumPy kernels on this host.  The sizes
are scaled down from the paper's (which were chosen for 2003 hardware) but
keep the same aspect-ratio ladder; the claim being reproduced is the
*invariance*, not the absolute MFlops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..model.measurement import Measurement, measure_lu_speed, measure_mm_speed

__all__ = ["InvarianceRow", "aspect_ladder", "mm_invariance", "lu_invariance"]


@dataclass
class InvarianceRow:
    """One element-count group of an invariance table.

    Attributes
    ----------
    elements:
        Common element count of every shape in the group.
    shapes:
        The ``(n1, n2)`` pairs benchmarked.
    speeds:
        Measured speed for each shape (MFlops).
    """

    elements: int
    shapes: list[tuple[int, int]]
    speeds: list[float]

    @property
    def spread(self) -> float:
        """Relative peak-to-peak spread of the speeds in the group."""
        s = np.asarray(self.speeds, dtype=float)
        return float((s.max() - s.min()) / s.mean())


def aspect_ladder(n: int, steps: int = 4) -> list[tuple[int, int]]:
    """Shapes ``(n, n), (n/2, 2n), (n/4, 4n), ...`` of equal element count.

    Mirrors the paper's ladders (e.g. 1024x1024, 512x2048, 256x4096,
    128x8192).  ``n`` must be divisible by ``2**(steps-1)``.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    if n % (1 << (steps - 1)) != 0:
        raise ConfigurationError(
            f"n={n} must be divisible by {1 << (steps - 1)} for {steps} steps"
        )
    return [(n >> k, n << k) for k in range(steps)]


def mm_invariance(
    base_sizes: tuple[int, ...] = (256, 512, 768, 1024),
    *,
    steps: int = 4,
    kernel: str = "reference",
    repeats: int = 3,
) -> list[InvarianceRow]:
    """Table 3 on this host: serial MM speed across equal-element shapes."""
    rows = []
    for n in base_sizes:
        shapes = aspect_ladder(n, steps)
        speeds = [
            measure_mm_speed(n1, n2, kernel=kernel, repeats=repeats).speed
            for (n1, n2) in shapes
        ]
        rows.append(InvarianceRow(elements=n * n, shapes=shapes, speeds=speeds))
    return rows


def lu_invariance(
    base_sizes: tuple[int, ...] = (256, 512, 768, 1024),
    *,
    steps: int = 4,
    block: int = 64,
    repeats: int = 3,
) -> list[InvarianceRow]:
    """Table 4 on this host: serial LU speed across equal-element shapes."""
    rows = []
    for n in base_sizes:
        shapes = aspect_ladder(n, steps)
        speeds = [
            measure_lu_speed(n1, n2, block=block, repeats=repeats).speed
            for (n1, n2) in shapes
        ]
        rows.append(InvarianceRow(elements=n * n, shapes=shapes, speeds=speeds))
    return rows

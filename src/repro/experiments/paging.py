"""Table 2: paging-onset verification.

Table 2's last two columns record the matrix size beyond which paging
started happening for the MM and LU applications on each machine.  In the
reproduction those published onsets parameterise the synthetic machines,
so this experiment closes the loop: it *detects* the onset from each
machine's ground-truth curve the way an experimenter would (the knee where
speed starts collapsing) and checks it lands on the published value.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from ..machines.network import HeterogeneousNetwork
from ..machines.presets import TABLE2_PAGING_LU, TABLE2_PAGING_MM
from .curves import paging_point

__all__ = ["PagingRow", "detect_paging_onsets"]


@dataclass
class PagingRow:
    """One machine's detected versus published paging onsets.

    Matrix sizes (``n``), as in Table 2.
    """

    machine: str
    detected_mm: float
    published_mm: int
    detected_lu: float
    published_lu: int

    @property
    def mm_error(self) -> float:
        """Relative error of the detected MM onset."""
        return abs(self.detected_mm - self.published_mm) / self.published_mm

    @property
    def lu_error(self) -> float:
        """Relative error of the detected LU onset."""
        return abs(self.detected_lu - self.published_lu) / self.published_lu


def detect_paging_onsets(
    network: HeterogeneousNetwork,
    *,
    drop: float = 0.5,
) -> list[PagingRow]:
    """Detect MM/LU paging onsets for every Table 2 machine.

    The detected element-count knee (speed fallen to ``drop`` of the
    plateau) is converted back to a matrix size (``x = 3 n^2`` for MM,
    ``x = n^2`` for LU) and compared against the published column.
    """
    rows = []
    for m in network:
        mm_knee = paging_point(m, "matmul", drop=drop)
        lu_knee = paging_point(m, "lu", drop=drop)
        rows.append(
            PagingRow(
                machine=m.name,
                detected_mm=sqrt(mm_knee / 3.0),
                published_mm=TABLE2_PAGING_MM[m.name],
                detected_lu=sqrt(lu_knee),
                published_lu=TABLE2_PAGING_LU[m.name],
            )
        )
    return rows

"""Figure 22: functional model versus single-number model speedups.

The paper's headline experiment.  For each problem size:

1. build per-machine piecewise speed functions with the section-3.1
   procedure (benchmarking the simulated machines);
2. partition with the functional model and run the simulated application;
3. partition with the single-number model — every machine's speed measured
   at one *fixed* benchmark size (500^2 / 4000^2 matrices for MM, 2000^2 /
   5000^2 for LU) — and run the same simulated application;
4. report ``speedup = t_single / t_functional``.

The paper observes speedups above 1 everywhere (the single-number model
"cannot in principle be better"), growing once assigned tasks stop fitting
in some machines' memory: small-size probes overrate slow-at-scale
machines, large-size probes misjudge relative speeds below the paging
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.constant_model import partition_constant, single_number_speeds
from ..core.partition import partition
from ..core.speed_function import ConstantSpeedFunction, SpeedFunction
from ..kernels.flops import lu_elements, mm_elements
from ..kernels.group_block import variable_group_block
from ..machines.network import HeterogeneousNetwork
from ..model.builder import build_piecewise_model
from ..model.measurement import SimulatedBenchmark
from ..simulate.executor import simulate_striped_matmul
from ..simulate.lu_executor import simulate_lu

__all__ = [
    "SpeedupPoint",
    "build_network_models",
    "mm_speedup_experiment",
    "lu_speedup_experiment",
    "stream_speedup_experiment",
]

#: The paper's figure-22 sweeps.
FIG22A_SIZES = tuple(range(15_000, 32_000, 2_000))
FIG22B_SIZES = tuple(range(16_000, 33_000, 2_000))
FIG22A_PROBES = (500, 4000)
FIG22B_PROBES = (2000, 5000)


@dataclass
class SpeedupPoint:
    """One figure-22 data point.

    Attributes
    ----------
    n:
        Matrix dimension.
    functional_seconds:
        Simulated run time under the functional-model distribution.
    single_seconds:
        Simulated run time under the single-number distribution.
    probe:
        Benchmark matrix size the single numbers were measured at.
    """

    n: int
    functional_seconds: float
    single_seconds: float
    probe: int

    @property
    def speedup(self) -> float:
        """``t_single / t_functional`` (the paper's y axis)."""
        return self.single_seconds / self.functional_seconds


def build_network_models(
    network: HeterogeneousNetwork,
    kernel: str,
    *,
    noisy: bool = False,
    seed: int = 2004,
    a_fraction: float = 1e-4,
    eps: float = 0.05,
) -> list[SpeedFunction]:
    """Section-3.1 models for every machine of a network.

    Benchmarks each simulated machine (noise-free midline by default;
    ``noisy=True`` draws every measurement from the fluctuation band) and
    returns the fitted piecewise functions in network order.
    """
    rng = np.random.default_rng(seed)
    models: list[SpeedFunction] = []
    for m in network:
        source = m.band(kernel) if noisy else m.speed_function(kernel)
        bench = SimulatedBenchmark(source, rng)
        truth = m.speed_function(kernel)
        built = build_piecewise_model(
            bench,
            a=a_fraction * truth.max_size,
            b=truth.max_size,
            eps=eps,
            spacing="log",
        )
        models.append(built.function)
    return models


def mm_speedup_experiment(
    network: HeterogeneousNetwork,
    sizes: Sequence[int] = FIG22A_SIZES,
    probe: int = FIG22A_PROBES[0],
    *,
    kernel: str = "matmul",
    models: Sequence[SpeedFunction] | None = None,
    algorithm: str = "combined",
) -> list[SpeedupPoint]:
    """Figure 22(a): MM speedup of the functional over the single model.

    ``probe`` is the square-matrix dimension the single-number speeds are
    measured at (the paper uses 500 and 4000).  Pass ``models`` to reuse
    already-built functional models across probes.
    """
    truth = network.speed_functions(kernel)
    if models is None:
        models = build_network_models(network, kernel)
    probe_elements = mm_elements(probe)
    single = single_number_speeds(truth, probe_elements)
    points = []
    for n in sizes:
        total = mm_elements(n)
        func_alloc = partition(total, models, algorithm=algorithm).allocation
        func_sim = simulate_striped_matmul(n, func_alloc, truth)
        single_alloc = partition_constant(total, single).allocation
        single_sim = simulate_striped_matmul(n, single_alloc, truth)
        points.append(
            SpeedupPoint(
                n=n,
                functional_seconds=func_sim.makespan,
                single_seconds=single_sim.makespan,
                probe=probe,
            )
        )
    return points


def stream_speedup_experiment(
    network: HeterogeneousNetwork,
    sizes: Sequence[int],
    probe: int,
    *,
    kernel: str = "arrayops",
    models: Sequence[SpeedFunction] | None = None,
    algorithm: str = "combined",
) -> list[SpeedupPoint]:
    """Streaming-kernel speedup (beyond the paper's two applications).

    The introduction's first motivating application class — processing
    very large linear data files — under the same protocol as figure 22:
    the functional model versus single numbers measured at ``probe``
    elements.  Stream time is directly ``x / s(x)`` (one pass over the
    data), so no simulator conversion is needed.
    """
    truth = network.speed_functions(kernel)
    if models is None:
        models = build_network_models(network, kernel)
    single = single_number_speeds(truth, float(probe))

    def realized(alloc) -> float:
        return max(
            float(t.time(min(int(x), t.max_size)))
            for t, x in zip(truth, alloc)
        )

    points = []
    for n in sizes:
        func_alloc = partition(int(n), models, algorithm=algorithm).allocation
        single_alloc = partition_constant(int(n), single).allocation
        points.append(
            SpeedupPoint(
                n=int(n),
                functional_seconds=realized(func_alloc),
                single_seconds=realized(single_alloc),
                probe=int(probe),
            )
        )
    return points


def lu_speedup_experiment(
    network: HeterogeneousNetwork,
    sizes: Sequence[int] = FIG22B_SIZES,
    probe: int = FIG22B_PROBES[0],
    *,
    kernel: str = "lu",
    block: int = 32,
    models: Sequence[SpeedFunction] | None = None,
    algorithm: str = "combined",
) -> list[SpeedupPoint]:
    """Figure 22(b): LU speedup of the functional over the single model.

    Both models drive the same Variable Group Block machinery; the single
    model simply feeds it constant speed functions (measured at
    ``probe^2`` elements), which collapses it to the classical Group Block
    distribution of [27]/[28].
    """
    truth = network.speed_functions(kernel)
    if models is None:
        models = build_network_models(network, kernel)
    probe_elements = lu_elements(probe)
    single = single_number_speeds(truth, probe_elements)
    single_sfs = [ConstantSpeedFunction(float(s)) for s in single]
    points = []
    for n in sizes:
        func_dist = variable_group_block(n, block, models, algorithm=algorithm)
        func_sim = simulate_lu(func_dist, truth, keep_trace=False)
        single_dist = variable_group_block(n, block, single_sfs, algorithm=algorithm)
        single_sim = simulate_lu(single_dist, truth, keep_trace=False)
        points.append(
            SpeedupPoint(
                n=n,
                functional_seconds=func_sim.total_seconds,
                single_seconds=single_sim.total_seconds,
                probe=probe,
            )
        )
    return points

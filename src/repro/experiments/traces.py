"""Geometric traces reproducing the paper's illustrative figures (3-15).

Figures 3-15 are not evaluation results but constructions the algorithms
are built on.  This module regenerates their *data*, so the bench can both
print them and assert the claimed invariants:

* figure 4/6 — the optimal line: all ``(x_i, s_i(x_i))`` points of a
  solution lie on one ray through the origin, and perturbed solutions take
  longer (:func:`optimal_line_demo`);
* figure 8/11 — the bisection narrowing: the per-step ``(slope, total)``
  sequence with totals straddling ``n`` (:func:`bisection_trace`);
* figure 18 — the two initial lines (inside :func:`bisection_trace`);
* figure 13/15 — where basic and modified spend their steps on benign vs
  flat-tailed shapes (:func:`algorithm_step_comparison`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.bisection import partition_bisection
from ..core.geometry import allocations, initial_bracket
from ..core.modified import partition_modified
from ..core.refine import makespan
from ..core.speed_function import SpeedFunction

__all__ = [
    "OptimalLineDemo",
    "BisectionTrace",
    "optimal_line_demo",
    "bisection_trace",
    "algorithm_step_comparison",
]


@dataclass
class OptimalLineDemo:
    """Figure 4/6 data: the optimal solution and a perturbed one.

    Attributes
    ----------
    allocation:
        The optimal integer allocation.
    point_slopes:
        ``s_i(x_i) / x_i`` for every processor with ``x_i > 0`` — all
        (nearly) equal: the points share one ray through the origin.
    optimal_makespan, perturbed_makespan:
        Execution times of the optimal and a mass-shifted allocation
        (figure 6's non-optimal line).
    """

    allocation: np.ndarray
    point_slopes: np.ndarray
    optimal_makespan: float
    perturbed_makespan: float


def optimal_line_demo(
    n: int, speed_functions: Sequence[SpeedFunction], *, shift: int = 0
) -> OptimalLineDemo:
    """Construct the figure 4/6 demonstration for a processor set.

    ``shift`` moves that many elements from the most-loaded to the
    least-loaded processor (default: 5 % of the largest share) to produce
    the dotted non-optimal line of figure 6.
    """
    result = partition_bisection(n, speed_functions)
    alloc = result.allocation
    active = alloc > 0
    slopes = np.array(
        [
            float(sf.speed(float(x))) / float(x)
            for sf, x in zip(speed_functions, alloc)
            if x > 0
        ]
    )
    perturbed = alloc.copy()
    if np.count_nonzero(active) >= 2:
        hi = int(np.argmax(alloc))
        lo = int(np.argmin(np.where(active, alloc, np.iinfo(np.int64).max)))
        amount = shift if shift > 0 else max(int(alloc[hi] * 0.05), 1)
        amount = min(amount, int(alloc[hi]))
        perturbed[hi] -= amount
        perturbed[lo] += amount
    return OptimalLineDemo(
        allocation=alloc,
        point_slopes=slopes,
        optimal_makespan=makespan(speed_functions, alloc),
        perturbed_makespan=makespan(speed_functions, perturbed),
    )


@dataclass
class BisectionTrace:
    """Figure 8/18 data: initial lines plus every bisecting line."""

    n: int
    initial_upper: tuple[float, float]  # (slope, total allocation)
    initial_lower: tuple[float, float]
    steps: list[tuple[float, float]]  # (slope, total) per bisection

    @property
    def num_steps(self) -> int:
        return len(self.steps)


def bisection_trace(
    n: int, speed_functions: Sequence[SpeedFunction]
) -> BisectionTrace:
    """Record the basic bisection's line sequence for a problem."""
    region = initial_bracket(speed_functions, n)
    upper_total = float(allocations(speed_functions, region.upper).sum())
    lower_total = float(allocations(speed_functions, region.lower).sum())
    result = partition_bisection(n, speed_functions, keep_trace=True)
    return BisectionTrace(
        n=n,
        initial_upper=(region.upper, upper_total),
        initial_lower=(region.lower, lower_total),
        steps=result.trace,
    )


def algorithm_step_comparison(
    n: int, speed_functions: Sequence[SpeedFunction]
) -> dict[str, int]:
    """Steps taken by the basic vs modified algorithm (figure 13/15 story)."""
    basic = partition_bisection(n, speed_functions)
    modified = partition_modified(n, speed_functions)
    return {"bisection": basic.iterations, "modified": modified.iterations}

"""One-shot reproduction report: every experiment into one Markdown file.

``repro report --out report.md`` (or :func:`generate_report`) runs the
whole evaluation — machine tables, curve summaries, paging detection, the
partitioner cost sweep, both figure-22 speedup sweeps and the headline
ablations — and writes a self-contained Markdown document, so a referee
can regenerate the paper's evidence with a single command.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from .. import __version__
from ..core.partition import partition
from ..kernels.flops import mm_elements
from ..machines.presets import TABLE2_SPECS, table1_network, table2_network
from .cost import fig21_sweep
from .curves import fig1_curves, fig2_bands
from .paging import detect_paging_onsets
from .report import ascii_table
from .speedup import (
    FIG22A_PROBES,
    FIG22B_PROBES,
    build_network_models,
    lu_speedup_experiment,
    mm_speedup_experiment,
)

__all__ = ["generate_report"]

#: Reduced sweeps used by ``quick=True``.
_QUICK_MM_SIZES = (17_000, 23_000, 29_000)
_QUICK_LU_SIZES = (18_000, 26_000, 32_000)
_FULL_MM_SIZES = tuple(range(15_000, 32_000, 2_000))
_FULL_LU_SIZES = tuple(range(16_000, 33_000, 2_000))


def _block(text: str) -> str:
    return f"```\n{text}\n```\n"


def generate_report(out: str | Path, *, quick: bool = True) -> Path:
    """Run the evaluation and write the Markdown report to ``out``.

    ``quick=True`` (default) trims the figure-22 sweeps to three sizes per
    figure and uses wider LU blocks; the full sweeps match the paper's
    axes exactly and take a few minutes.
    """
    t0 = time.perf_counter()
    net1 = table1_network()
    net2 = table2_network()
    mm_models = build_network_models(net2, "matmul")
    lu_models = build_network_models(net2, "lu")

    sections: list[str] = [
        "# Reproduction report",
        "",
        f"Library version {__version__}; mode: {'quick' if quick else 'full'}.",
        "Paper: Lastovetsky & Reddy, *Data Partitioning with a Realistic "
        "Performance Model of Networks of Heterogeneous Computers* "
        "(IPPS/IPDPS 2004).",
        "",
    ]

    # --- machines ---------------------------------------------------------
    sections.append("## Table 2 — the twelve-machine testbed\n")
    sections.append(
        _block(
            ascii_table(
                ["Machine", "Architecture", "MHz", "Main kB", "Free kB", "Cache kB"],
                [
                    (s.name, s.arch, int(s.cpu_mhz), s.main_memory_kb,
                     s.free_memory_kb, s.cache_kb)
                    for s in TABLE2_SPECS
                ],
            )
        )
    )

    # --- figure 1 ------------------------------------------------------------
    sections.append("## Figure 1 — speed-curve shapes (Table 1 machines)\n")
    curves = fig1_curves(net1)
    rows = []
    for kernel, series in curves.items():
        for c in series:
            rows.append((kernel, c.machine, round(c.peak, 1), f"{c.paging_onset:.3g}"))
    sections.append(
        _block(ascii_table(["kernel", "machine", "peak MFlops", "paging point P"], rows))
    )

    # --- figure 2 ------------------------------------------------------------
    sections.append("## Figure 2 — fluctuation bands\n")
    sections.append(
        _block(
            ascii_table(
                ["machine", "width% small", "width% large"],
                [
                    (b.machine,
                     round(float(b.relative_width_percent[0]), 1),
                     round(float(b.relative_width_percent[-1]), 1))
                    for b in fig2_bands(net1)
                ],
            )
        )
    )

    # --- table 2 paging --------------------------------------------------------
    sections.append("## Table 2 (paging columns) — detected vs published\n")
    sections.append(
        _block(
            ascii_table(
                ["machine", "MM detected/paper", "LU detected/paper"],
                [
                    (r.machine,
                     f"{r.detected_mm:.0f}/{r.published_mm}",
                     f"{r.detected_lu:.0f}/{r.published_lu}")
                    for r in detect_paging_onsets(net2)
                ],
            )
        )
    )

    # --- figure 21 ------------------------------------------------------------
    sections.append("## Figure 21 — partitioner cost\n")
    points = fig21_sweep(mm_models, repeats=1)
    sections.append(
        _block(
            ascii_table(
                ["p", "n", "cost (s)", "steps"],
                [(p.p, p.n, f"{p.seconds:.4f}", p.iterations) for p in points],
            )
        )
    )

    # --- figure 22 -------------------------------------------------------------
    mm_sizes = _QUICK_MM_SIZES if quick else _FULL_MM_SIZES
    lu_sizes = _QUICK_LU_SIZES if quick else _FULL_LU_SIZES
    sections.append("## Figure 22(a) — MM speedup (functional vs single-number)\n")
    for probe in FIG22A_PROBES:
        pts = mm_speedup_experiment(net2, sizes=mm_sizes, probe=probe, models=mm_models)
        sections.append(f"Probe {probe}x{probe}:\n")
        sections.append(
            _block(
                ascii_table(
                    ["n", "speedup"],
                    [(p.n, round(p.speedup, 2)) for p in pts],
                )
            )
        )
    sections.append("## Figure 22(b) — LU speedup (functional vs single-number)\n")
    block = 128 if quick else 32
    for probe in FIG22B_PROBES:
        pts = lu_speedup_experiment(
            net2, sizes=lu_sizes, probe=probe, block=block, models=lu_models
        )
        sections.append(f"Probe {probe}x{probe} (b={block}):\n")
        sections.append(
            _block(
                ascii_table(
                    ["n", "speedup"],
                    [(p.n, round(p.speedup, 2)) for p in pts],
                )
            )
        )

    # --- sanity: the optimal-line invariant ------------------------------------
    sections.append("## Invariant check — one line through the origin\n")
    n = mm_elements(20_000)
    r = partition(n, mm_models)
    slopes = np.array(
        [float(sf.speed(float(x))) / float(x)
         for sf, x in zip(mm_models, r.allocation) if x > 0]
    )
    sections.append(
        f"Point-slope spread of the optimal allocation at n=3*20000^2: "
        f"{slopes.max() / slopes.min() - 1:.2e} (0 means exactly one ray).\n"
    )

    sections.append(
        f"\n---\nGenerated in {time.perf_counter() - t0:.1f}s by `repro report`.\n"
    )
    out_path = Path(out)
    out_path.write_text("\n".join(sections))
    return out_path

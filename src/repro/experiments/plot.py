"""Dependency-free ASCII line plots for the figure series.

The benchmark harness and CLI print the paper's figures as data tables;
these helpers add a quick visual: multi-series scatter/line charts drawn
on a character canvas, with optional logarithmic x axes (speed-versus-size
curves span decades).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ascii_plot"]

#: Glyphs used for successive series.
_GLYPHS = "*o+x#@%&"


def _scale(
    values: np.ndarray, lo: float, hi: float, cells: int, log: bool
) -> np.ndarray:
    if log:
        values = np.log10(np.maximum(values, 1e-300))
        lo, hi = math.log10(max(lo, 1e-300)), math.log10(max(hi, 1e-300))
    if hi <= lo:
        return np.zeros(values.size, dtype=int)
    frac = (values - lo) / (hi - lo)
    return np.clip((frac * (cells - 1)).round().astype(int), 0, cells - 1)


def ascii_plot(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``(name, xs, ys)`` series onto a character canvas.

    Returns a multi-line string; each series uses the next glyph from
    ``* o + x ...`` and the legend maps glyphs to names.
    """
    if not series:
        raise ConfigurationError("at least one series is required")
    if width < 16 or height < 4:
        raise ConfigurationError("canvas too small")
    all_x = np.concatenate([np.asarray(xs, dtype=float) for _, xs, _ in series])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, _, ys in series])
    if all_x.size == 0:
        raise ConfigurationError("series contain no points")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for k, (name, xs, ys) in enumerate(series):
        xs_arr = np.asarray(xs, dtype=float)
        ys_arr = np.asarray(ys, dtype=float)
        if xs_arr.size != ys_arr.size:
            raise ConfigurationError(f"series {name!r}: x/y length mismatch")
        glyph = _GLYPHS[k % len(_GLYPHS)]
        cols = _scale(xs_arr, x_lo, x_hi, width, log_x)
        rows = _scale(ys_arr, y_lo, y_hi, height, log_y)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = glyph

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:.3g}"
    y_bot = f"{y_lo:.3g}"
    label_w = max(len(y_top), len(y_bot)) + 1
    for r, row in enumerate(canvas):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_lo:.3g}"
    x_end = f"{x_hi:.3g}"
    pad = width - len(x_axis) - len(x_end)
    lines.append(
        " " * (label_w + 2) + x_axis + " " * max(pad, 1) + x_end
    )
    scales = []
    if log_x:
        scales.append("log x")
    if log_y:
        scales.append("log y")
    suffix = f"  [{', '.join(scales)}]" if scales else ""
    legend = "   ".join(
        f"{_GLYPHS[k % len(_GLYPHS)]} {name}" for k, (name, _, _) in enumerate(series)
    )
    lines.append(f"{x_label} vs {y_label}{suffix}:  {legend}")
    return "\n".join(lines)

"""Experiment drivers regenerating every table and figure of the paper.

Index (see DESIGN.md section 5 for the full mapping):

* Table 1 / Figure 1  -> :mod:`~repro.experiments.curves`
* Figure 2            -> :mod:`~repro.experiments.curves`
* Table 2 (paging)    -> :mod:`~repro.experiments.paging`
* Tables 3 & 4        -> :mod:`~repro.experiments.invariance`
* Figure 21           -> :mod:`~repro.experiments.cost`
* Figure 22 (a, b)    -> :mod:`~repro.experiments.speedup`
"""

from .cost import (
    FIG21_PROBLEM_SIZES,
    FIG21_PROCESSOR_COUNTS,
    CostPoint,
    fig21_sweep,
    partition_cost,
    tile_speed_functions,
)
from .full_report import generate_report
from .curves import BandCurve, SpeedCurve, fig1_curves, fig2_bands, paging_point
from .invariance import InvarianceRow, aspect_ladder, lu_invariance, mm_invariance
from .paging import PagingRow, detect_paging_onsets
from .plot import ascii_plot
from .report import ascii_table, format_float, format_series
from .speedup import (
    FIG22A_PROBES,
    FIG22A_SIZES,
    FIG22B_PROBES,
    FIG22B_SIZES,
    SpeedupPoint,
    build_network_models,
    lu_speedup_experiment,
    mm_speedup_experiment,
    stream_speedup_experiment,
)

__all__ = [
    "BandCurve",
    "CostPoint",
    "FIG21_PROBLEM_SIZES",
    "FIG21_PROCESSOR_COUNTS",
    "FIG22A_PROBES",
    "FIG22A_SIZES",
    "FIG22B_PROBES",
    "FIG22B_SIZES",
    "InvarianceRow",
    "PagingRow",
    "SpeedCurve",
    "SpeedupPoint",
    "ascii_plot",
    "ascii_table",
    "aspect_ladder",
    "build_network_models",
    "detect_paging_onsets",
    "fig1_curves",
    "fig21_sweep",
    "fig2_bands",
    "format_float",
    "format_series",
    "generate_report",
    "lu_invariance",
    "lu_speedup_experiment",
    "mm_invariance",
    "mm_speedup_experiment",
    "paging_point",
    "partition_cost",
    "stream_speedup_experiment",
    "tile_speed_functions",
]

"""Plain-text rendering of experiment results (tables and series).

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["ascii_table", "format_series", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Compact float formatting for table cells."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 10 ** (digits + 1) or magnitude < 10 ** -(digits - 1):
        return f"{value:.{digits - 1}e}"
    return f"{value:.{digits}g}"


def ascii_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str | None = None
) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [
        [
            format_float(c) if isinstance(c, float) else str(c)
            for c in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], *, unit: str = ""
) -> str:
    """Render one (x, y) series compactly, one point per line."""
    lines = [f"series: {name}" + (f" [{unit}]" if unit else "")]
    for x, y in zip(xs, ys):
        lines.append(f"  {format_float(float(x)):>12}  {format_float(float(y)):>12}")
    return "\n".join(lines)

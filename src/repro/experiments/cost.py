"""Figure 21: the cost of finding the optimal partition.

The paper times its partitioning algorithm for p in {270, 540, 810, 1080}
processors and problem sizes up to 2e9 elements, finding costs below
~0.12 s — negligible against application run times of minutes to hours.
This driver replays exactly that sweep on speed functions tiled from the
twelve-machine testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.partition import partition
from ..core.speed_function import SpeedFunction
from ..obs import span
from ..obs.timing import best_of

__all__ = ["CostPoint", "tile_speed_functions", "partition_cost", "fig21_sweep"]

#: The paper's processor counts.
FIG21_PROCESSOR_COUNTS = (270, 540, 810, 1080)

#: The paper's problem-size axis reaches 2e9 elements.
FIG21_PROBLEM_SIZES = (125_000_000, 500_000_000, 1_000_000_000, 2_000_000_000)


@dataclass
class CostPoint:
    """One (p, n) cost sample."""

    p: int
    n: int
    seconds: float
    iterations: int
    algorithm: str


def tile_speed_functions(
    base: Sequence[SpeedFunction], p: int
) -> list[SpeedFunction]:
    """Cycle the base speed functions up to ``p`` processors."""
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    return [base[i % len(base)] for i in range(p)]


def partition_cost(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    algorithm: str = "combined",
    repeats: int = 3,
) -> CostPoint:
    """Best-of-``repeats`` wall time of one partitioning call.

    Timing goes through the shared :func:`repro.obs.timing.best_of`
    helper; the whole measurement is wrapped in a span so figure-21
    sweeps show up in ``repro trace``.
    """
    with span(
        "experiments.partition_cost",
        p=len(speed_functions), n=n, algorithm=algorithm,
    ):
        timed = best_of(
            lambda: partition(n, speed_functions, algorithm=algorithm),
            repeats=repeats,
        )
    return CostPoint(
        p=len(speed_functions),
        n=n,
        seconds=timed.seconds,
        iterations=timed.result.iterations,
        algorithm=algorithm,
    )


def fig21_sweep(
    base: Sequence[SpeedFunction],
    *,
    processor_counts: Sequence[int] = FIG21_PROCESSOR_COUNTS,
    problem_sizes: Sequence[int] = FIG21_PROBLEM_SIZES,
    algorithm: str = "combined",
    repeats: int = 3,
) -> list[CostPoint]:
    """The full figure-21 sweep: cost versus n for each processor count."""
    points = []
    for p in processor_counts:
        sfs = tile_speed_functions(base, p)
        for n in problem_sizes:
            points.append(
                partition_cost(n, sfs, algorithm=algorithm, repeats=repeats)
            )
    return points

"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  The hierarchy distinguishes *model* problems (an invalid speed
function), *problem-statement* problems (an infeasible partitioning request),
and *procedural* problems (an algorithm failed to converge).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidSpeedFunctionError",
    "InfeasiblePartitionError",
    "ConvergenceError",
    "MeasurementError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class InvalidSpeedFunctionError(ReproError, ValueError):
    """A speed function violates the functional-model shape requirements.

    The partitioning algorithms require that any straight line through the
    origin intersect each speed graph at exactly one point, which is
    equivalent to ``s(x)/x`` being strictly decreasing on the domain
    (section 2 of the paper).
    """


class InfeasiblePartitionError(ReproError, ValueError):
    """The requested partition cannot be produced.

    Raised, for example, when the total problem size exceeds the sum of the
    per-processor memory bounds, or when ``n < 0``.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure exceeded its iteration budget."""

    def __init__(self, message: str, iterations: int | None = None):
        super().__init__(message)
        #: Number of iterations performed before giving up, when known.
        self.iterations = iterations


class MeasurementError(ReproError, RuntimeError):
    """A benchmark measurement could not be carried out."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with inconsistent parameters."""

"""Parallel-execution simulators standing in for the paper's testbed runs."""

from .dynamic import DynamicMMSimulation, simulate_striped_matmul_dynamic
from .events import LUStepRecord, SimulationTrace
from .executor import MMSimulation, simulate_striped_matmul
from .lu_executor import LUSimulation, simulate_lu

__all__ = [
    "DynamicMMSimulation",
    "LUSimulation",
    "LUStepRecord",
    "MMSimulation",
    "SimulationTrace",
    "simulate_lu",
    "simulate_striped_matmul_dynamic",
    "simulate_striped_matmul",
]

"""Simulated execution of the parallel LU factorisation (figure 17).

A right-looking block LU over a static column distribution.  At step ``k``
(block column ``k``, width ``b``):

1. the owner factorises the ``rem x b`` panel (``rem = n - k*b``);
2. (optionally) the panel is broadcast;
3. every processor updates the trailing column blocks it owns — a
   rank-``b`` update of ``(rem - b)`` rows by its ``c_i * b`` columns.

The crucial functional-model ingredient: each processor's speed for the
update is evaluated **at the problem size it faces at that step** —
``rem * c_i * b`` elements — so as the matrix shrinks below a machine's
paging point, its speed recovers, exactly the behaviour the Variable Group
Block distribution is designed to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import obs
from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError
from ..kernels.group_block import GroupBlockDistribution
from ..machines.comm import CommModel
from .events import LUStepRecord, SimulationTrace

__all__ = ["LUSimulation", "simulate_lu"]

_ELEMENT_BYTES = 8


@dataclass
class LUSimulation:
    """Result of one simulated parallel LU factorisation.

    Attributes
    ----------
    n, b:
        Matrix dimension and block width.
    total_seconds:
        Sum of all step times (panel + comm + update).
    comm_seconds:
        Total communication time.
    trace:
        Per-step records.
    """

    n: int
    b: int
    total_seconds: float
    comm_seconds: float
    trace: SimulationTrace

    @property
    def steps(self) -> int:
        return len(self.trace)


def _speed_at(sf: SpeedFunction, x: float) -> float:
    """Ground-truth speed at size ``x``, clamped to the domain."""
    s = float(sf.speed(min(x, sf.max_size)))
    if s <= 0:
        raise ConfigurationError(f"non-positive speed at problem size {x:g}")
    return s


def simulate_lu(
    dist: GroupBlockDistribution,
    truth_speed_functions: Sequence[SpeedFunction],
    *,
    comm: CommModel | None = None,
    keep_trace: bool = True,
    speed_scale: Sequence[float] | None = None,
) -> LUSimulation:
    """Simulate the parallel LU factorisation under a column distribution.

    Parameters
    ----------
    dist:
        The static column-block distribution (from
        :func:`~repro.kernels.group_block.variable_group_block`, whatever
        model it was built with).
    truth_speed_functions:
        Ground-truth LU speed curves (MFlops vs elements of the square
        problem), one per processor.
    comm:
        Optional link model charging the per-step panel broadcast.
    keep_trace:
        Record per-step details (cheap; disable only for huge sweeps).
    speed_scale:
        Optional per-processor multipliers on the ground-truth speeds —
        scenario injection for whole-run permanent load (see
        :func:`~repro.simulate.executor.simulate_striped_matmul`).
    """
    n, b = dist.n, dist.b
    p = len(truth_speed_functions)
    if speed_scale is not None and len(speed_scale) != p:
        raise ConfigurationError(
            f"got {len(speed_scale)} speed scales for {p} processors"
        )
    scale = (
        np.ones(p) if speed_scale is None else np.asarray(speed_scale, dtype=float)
    )
    owners = dist.block_owners
    if owners.size and int(owners.max()) >= p:
        raise ConfigurationError(
            f"distribution references processor {int(owners.max())} but only "
            f"{p} speed functions were given"
        )
    trace = SimulationTrace()
    total = 0.0
    comm_total = 0.0
    num_blocks = dist.num_blocks
    telemetry = obs.is_enabled()
    with obs.span("simulate.lu", n=n, b=b, p=p, steps=num_blocks):
        for k in range(num_blocks):
            rem = n - k * b
            width = min(b, rem)
            owner = int(owners[k])
            # Panel factorisation: LU of a rem x width panel.
            panel_flops = float(width) ** 2 * (float(rem) - float(width) / 3.0)
            panel_speed = _speed_at(
                truth_speed_functions[owner], float(rem) * width
            ) * float(scale[owner])
            panel_s = panel_flops / (1e6 * panel_speed)
            # Panel broadcast.
            comm_s = 0.0
            if comm is not None and p > 1:
                comm_s = comm.broadcast(owner, float(rem) * width * _ELEMENT_BYTES)
            # Trailing update: processor i updates its c_i trailing blocks.
            counts = dist.counts(p, start_block=k + 1)
            trailing_rows = rem - width
            updates = np.zeros(p, dtype=float)
            if trailing_rows > 0:
                for i in range(p):
                    cols = float(counts[i]) * b
                    if cols == 0:
                        continue
                    flops = 2.0 * trailing_rows * width * cols
                    # The problem size this processor faces at this step: its
                    # share of the active matrix (functional-model evaluation).
                    x = float(rem) * cols
                    updates[i] = flops / (
                        1e6
                        * _speed_at(truth_speed_functions[i], x)
                        * float(scale[i])
                    )
            update_s = float(updates.max()) if p else 0.0
            total += panel_s + comm_s + update_s
            comm_total += comm_s
            if keep_trace:
                trace.append(
                    LUStepRecord(
                        step=k,
                        remaining=rem,
                        owner=owner,
                        panel_seconds=panel_s,
                        comm_seconds=comm_s,
                        update_seconds=update_s,
                        update_per_processor=tuple(float(u) for u in updates),
                    )
                )
            if telemetry:
                obs.record(
                    "simulate.lu.step",
                    panel_s + comm_s + update_s,
                    attrs={"step": k, "owner": owner, "remaining": rem},
                    children=[
                        ("simulate.lu.panel", panel_s),
                        ("simulate.lu.comm", comm_s),
                        ("simulate.lu.update", update_s),
                    ],
                )
    if telemetry:
        reg = obs.get_registry()
        reg.counter("simulate.lu.calls").inc()
        reg.counter("simulate.lu.steps.total").inc(num_blocks)
    return LUSimulation(
        n=n, b=b, total_seconds=total, comm_seconds=comm_total, trace=trace
    )

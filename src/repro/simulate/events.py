"""Trace records emitted by the execution simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LUStepRecord", "SimulationTrace"]


@dataclass(frozen=True)
class LUStepRecord:
    """One elimination step of the simulated LU factorisation.

    Attributes
    ----------
    step:
        Block-column index ``k``.
    remaining:
        Dimension of the active trailing matrix at the start of the step.
    owner:
        Processor that factorises the panel.
    panel_seconds:
        Time of the panel factorisation.
    comm_seconds:
        Time of the panel broadcast (0 when communication is not modelled).
    update_seconds:
        Time of the trailing-matrix update (max over processors).
    update_per_processor:
        Per-processor update times (tuple, length ``p``).
    """

    step: int
    remaining: int
    owner: int
    panel_seconds: float
    comm_seconds: float
    update_seconds: float
    update_per_processor: tuple[float, ...]

    @property
    def seconds(self) -> float:
        """Total time of the step."""
        return self.panel_seconds + self.comm_seconds + self.update_seconds


@dataclass
class SimulationTrace:
    """Ordered collection of step records."""

    steps: list[LUStepRecord] = field(default_factory=list)

    def append(self, record: LUStepRecord) -> None:
        self.steps.append(record)

    def total_seconds(self) -> float:
        return float(sum(s.seconds for s in self.steps))

    def busy_fraction(self, p: int) -> np.ndarray:
        """Fraction of total update time each processor spent computing.

        A crude load-balance diagnostic: 1.0 means the processor was the
        critical one at every step.
        """
        totals = np.zeros(p, dtype=float)
        crit = 0.0
        for s in self.steps:
            totals += np.asarray(s.update_per_processor, dtype=float)
            crit += s.update_seconds
        if crit <= 0:
            return np.zeros(p, dtype=float)
        return totals / crit

    def __len__(self) -> int:
        return len(self.steps)

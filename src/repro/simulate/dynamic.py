"""Simulated striped MM under time-varying (OU) background load.

The band model treats each run as one static curve drawn from the band;
this simulator drops that abstraction and lets every machine's load evolve
*during* the run (an Ornstein-Uhlenbeck trace per machine), integrating
each stripe's progress through real time.  Comparing its makespan
statistics against the static band replay quantifies how much the band
abstraction loses — little, for runs much longer than the load's
correlation time (see ``bench_ablation_dynamic_load.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError
from ..kernels.flops import mm_slice_flops
from ..kernels.striped import elements_from_rows, rows_from_elements
from ..machines.dynamic import ou_load_trace

__all__ = ["DynamicMMSimulation", "simulate_striped_matmul_dynamic"]


@dataclass
class DynamicMMSimulation:
    """Result of one dynamic-load striped MM run."""

    n: int
    rows: np.ndarray
    compute_seconds: np.ndarray
    mean_load: np.ndarray

    @property
    def makespan(self) -> float:
        return float(self.compute_seconds.max()) if self.compute_seconds.size else 0.0


def _integrate(work: float, base_rate: float, trace: np.ndarray, dt: float) -> float:
    """Seconds to complete ``work`` at rate ``base_rate * (1 - trace)``."""
    rates = base_rate * (1.0 - trace)
    cum = np.cumsum(rates) * dt
    if cum[-1] < work:
        raise ConfigurationError("trace too short")
    k = int(np.searchsorted(cum, work))
    done = cum[k - 1] if k > 0 else 0.0
    remainder = (work - done) / rates[k] if rates[k] > 0 else dt
    return k * dt + float(min(remainder, dt))


def simulate_striped_matmul_dynamic(
    n: int,
    allocation: Sequence[int],
    truth_speed_functions: Sequence[SpeedFunction],
    rng: np.random.Generator,
    *,
    dt: float = 0.5,
    mean_load: float = 0.15,
    sigma: float = 0.10,
    tau: float = 5.0,
) -> DynamicMMSimulation:
    """Striped C = A*B^T with per-machine evolving background load.

    Mirrors :func:`~repro.simulate.executor.simulate_striped_matmul` but
    replaces the static ground-truth speed with an instantaneous rate
    ``s_i(x_i) * (1 - lam_i(t))`` integrated through the run.  Traces are
    drawn independently per machine from the OU model and regenerated
    longer if a run outlasts its initial sizing.
    """
    p = len(truth_speed_functions)
    if len(allocation) != p:
        raise ConfigurationError(
            f"allocation has {len(allocation)} entries for {p} processors"
        )
    if not (0 <= mean_load < 1):
        raise ConfigurationError(f"mean_load must be in [0, 1), got {mean_load!r}")
    rows = rows_from_elements(allocation, n)
    elements = elements_from_rows(rows, n)
    seconds = np.zeros(p)
    loads = np.zeros(p)
    for i, (sf, x) in enumerate(zip(truth_speed_functions, elements)):
        if x == 0:
            continue
        speed = float(sf.speed(min(float(x), sf.max_size)))
        if speed <= 0:
            raise ConfigurationError(f"processor {i}: non-positive speed")
        base_rate = 1e6 * speed  # flops/second
        work = mm_slice_flops(float(x), n)
        nominal = work / (base_rate * max(1.0 - mean_load, 0.05))
        steps = max(int(3.0 * nominal / dt) + 50, 100)
        for _ in range(8):
            trace = ou_load_trace(
                rng, steps, dt, mean=mean_load, sigma=sigma, tau=tau
            )
            try:
                seconds[i] = _integrate(work, base_rate, trace, dt)
                loads[i] = float(trace[: max(int(seconds[i] / dt), 1)].mean())
                break
            except ConfigurationError:
                steps *= 2
        else:  # pragma: no cover - 8 doublings cover any realistic load
            raise ConfigurationError(
                f"processor {i}: run did not finish within the trace budget"
            )
    return DynamicMMSimulation(
        n=n, rows=rows, compute_seconds=seconds, mean_load=loads
    )

"""Simulated execution of the striped parallel matrix multiplication.

This replaces the paper's wall-clock runs on the physical testbed: given a
distribution (however it was derived — functional model, single-number
model, even split) and the machines' *ground-truth* speed curves, the
simulator charges each processor the real time of its stripe:

.. math::

    t_i = \\frac{\\mathrm{flops}(x_i)}{10^6 \\, s_i(x_i)}
        = \\frac{(2n/3) \\, x_i}{10^6 \\, s_i(x_i)}

where ``x_i`` is the stripe's element count and ``s_i`` the ground-truth
speed (MFlops) *at that size* — so a stripe pushed past a machine's paging
point automatically pays the collapsed speed, exactly the effect the
paper's experiments measure.  The parallel time is the maximum, plus an
optional communication charge from the two-parameter link model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import obs
from ..exceptions import ConfigurationError
from ..core.speed_function import SpeedFunction
from ..kernels.flops import mm_slice_flops
from ..kernels.striped import elements_from_rows, rows_from_elements
from ..machines.comm import CommModel

__all__ = ["MMSimulation", "simulate_striped_matmul"]

#: Bytes per double-precision element.
_ELEMENT_BYTES = 8


@dataclass
class MMSimulation:
    """Result of one simulated striped matrix multiplication.

    Attributes
    ----------
    n:
        Matrix dimension.
    rows:
        Whole-row stripe sizes (sum to ``n``).
    elements:
        Element count of each stripe (``3 * rows * n``).
    compute_seconds:
        Per-processor compute times.
    comm_seconds:
        Communication time (0 when not modelled).
    """

    n: int
    rows: np.ndarray
    elements: np.ndarray
    compute_seconds: np.ndarray
    comm_seconds: float

    @property
    def makespan(self) -> float:
        """Parallel execution time: slowest processor plus communication."""
        return float(self.compute_seconds.max()) + self.comm_seconds

    @property
    def p(self) -> int:
        return int(self.rows.size)


def simulate_striped_matmul(
    n: int,
    allocation: Sequence[int],
    truth_speed_functions: Sequence[SpeedFunction],
    *,
    comm: CommModel | None = None,
    speed_scale: Sequence[float] | None = None,
) -> MMSimulation:
    """Simulate C = A * B^T with the given element allocation.

    Parameters
    ----------
    n:
        Matrix dimension.
    allocation:
        Elements per processor summing to ``3 n^2`` (the output of any
        partitioner).  Rounded to whole-row stripes first, exactly as the
        real application would.
    truth_speed_functions:
        The machines' ground-truth curves (MFlops versus elements); *not*
        the possibly-inaccurate model the distribution was derived from —
        that distinction is the entire point of the speedup experiments.
    comm:
        Optional link model; when given, the B-stripe allgather that the
        1-D algorithm needs is charged.
    speed_scale:
        Optional per-processor multipliers on the ground-truth speeds —
        scenario injection for "what actually happened" runs (a machine
        under a permanent external load executes the *whole* run at the
        scaled speed; ``0 < scale``).  ``None`` leaves the truth exact.
    """
    p = len(truth_speed_functions)
    if len(allocation) != p:
        raise ConfigurationError(
            f"allocation has {len(allocation)} entries for {p} processors"
        )
    if speed_scale is not None and len(speed_scale) != p:
        raise ConfigurationError(
            f"got {len(speed_scale)} speed scales for {p} processors"
        )
    rows = rows_from_elements(allocation, n)
    elements = elements_from_rows(rows, n)
    compute = np.zeros(p, dtype=float)
    for i, (sf, x) in enumerate(zip(truth_speed_functions, elements)):
        if x == 0:
            continue
        # Ground-truth speed at the assigned size; sizes beyond the domain
        # are clamped to the (collapsed) boundary speed — thrashing.
        speed = float(sf.speed(min(float(x), sf.max_size)))
        if speed_scale is not None:
            speed *= float(speed_scale[i])
        if speed <= 0:
            raise ConfigurationError(
                f"processor {i} has non-positive ground-truth speed at {x} elements"
            )
        compute[i] = mm_slice_flops(float(x), n) / (1e6 * speed)
    comm_s = 0.0
    if comm is not None:
        stripe_bytes = rows.astype(float) * n * _ELEMENT_BYTES
        comm_s = comm.allgather(stripe_bytes.tolist())
    if obs.is_enabled():
        compute_max = float(compute.max()) if p else 0.0
        obs.record(
            "simulate.mm",
            compute_max + comm_s,
            attrs={"n": n, "p": p},
            children=[
                ("simulate.mm.compute", compute_max),
                ("simulate.mm.comm", comm_s),
            ],
        )
        obs.get_registry().counter("simulate.mm.calls").inc()
    return MMSimulation(
        n=n,
        rows=rows,
        elements=elements,
        compute_seconds=compute,
        comm_seconds=comm_s,
    )

"""Memory-hierarchy speed model: from machine spec to efficiency curve.

The paper motivates the functional model with three qualitatively different
speed-versus-size shapes (figure 1):

* **ArrayOpsF** — carefully designed streaming kernel: sharp, step-wise
  curve; near-peak until the data leaves a memory level, collapse under
  paging;
* **MatrixMultATLAS** — blocked dgemm: almost flat until the paging point
  ``P``, then a steep decline;
* **MatrixMult** — straightforward triple loop with poor reference
  patterns: smooth, strictly decreasing curve.

This module captures those shapes with a three-factor multiplicative model

.. math::  s(x) = s_{peak} \\cdot r(x) \\cdot c(x) \\cdot q(x)

with ``r`` a saturating start-up ramp, ``c`` a cache-transition factor and
``q`` a paging-collapse factor.  Every factor has a strictly decreasing
ratio-to-``x`` profile, so the product keeps ``g(x) = s(x)/x`` strictly
decreasing — the invariant required by the partitioning algorithms (the
composition argument is spelled out in :func:`efficiency`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "KernelProfile",
    "PROFILES",
    "efficiency",
]


@dataclass(frozen=True)
class KernelProfile:
    """How a kernel's efficiency reacts to the memory hierarchy.

    Attributes
    ----------
    name:
        Kernel identifier (``"matmul_atlas"``, ...).
    cache_drop:
        Fraction of peak speed lost when the working set leaves cache
        (0 = cache-oblivious, 1 = total collapse).
    cache_smoothness:
        Width of the cache transition in decades of problem size.  Small
        values give the sharp steps of carefully designed applications;
        large values the smooth decline of poor reference patterns.
    paging_drop_exponent:
        Steepness of the paging collapse: the paging factor is
        ``1 / (1 + ((x - x_p)/(w * x_p))**e)`` past the paging point.
    paging_width:
        ``w`` above — how far past the paging point (relative) the speed
        halves.
    flops_per_element_model:
        Label used by :mod:`repro.kernels.flops` to convert between
        model speed (elements/s-like MFlops axis) and real flop rates.
    """

    name: str
    cache_drop: float
    cache_smoothness: float
    paging_drop_exponent: float
    paging_width: float
    flops_per_element_model: str

    def __post_init__(self) -> None:
        if not (0 <= self.cache_drop < 1):
            raise ConfigurationError("cache_drop must be in [0, 1)")
        if self.cache_smoothness <= 0:
            raise ConfigurationError("cache_smoothness must be positive")
        if self.paging_drop_exponent <= 0 or self.paging_width <= 0:
            raise ConfigurationError("paging parameters must be positive")


#: The kernel profiles used throughout the reproduction.  Parameters are
#: chosen to match the qualitative shapes of figure 1; absolute levels come
#: from per-machine peak speeds in :mod:`repro.machines.presets`.
PROFILES: dict[str, KernelProfile] = {
    # Sharp steps, efficient use of the hierarchy, catastrophic paging.
    "arrayops": KernelProfile(
        name="arrayops",
        cache_drop=0.30,
        cache_smoothness=0.15,
        paging_drop_exponent=3.0,
        paging_width=0.12,
        flops_per_element_model="arrayops",
    ),
    # Blocked dgemm: nearly flat until paging, then steep decline.
    "matmul_atlas": KernelProfile(
        name="matmul_atlas",
        cache_drop=0.08,
        cache_smoothness=0.30,
        paging_drop_exponent=2.5,
        paging_width=0.25,
        flops_per_element_model="matmul",
    ),
    # Straightforward triple loop: smooth, strictly decreasing.
    "matmul_naive": KernelProfile(
        name="matmul_naive",
        cache_drop=0.60,
        cache_smoothness=1.40,
        paging_drop_exponent=1.8,
        paging_width=0.50,
        flops_per_element_model="matmul",
    ),
    # The paper's LU application (naive parallel algorithm, partial
    # blocking): a gentle pre-paging decline — wide cache transition — so
    # relative speeds drift with size even before paging, as the measured
    # curves do.
    "lu": KernelProfile(
        name="lu",
        cache_drop=0.25,
        cache_smoothness=3.00,
        paging_drop_exponent=2.2,
        paging_width=0.30,
        flops_per_element_model="lu",
    ),
}


def efficiency(
    x,
    *,
    cache_elements: float,
    paging_elements: float,
    profile: KernelProfile,
    ramp_elements: float | None = None,
) -> np.ndarray:
    """Dimensionless efficiency in (0, 1] at problem size ``x`` (elements).

    The three factors and why their product keeps ``g(x) = s(x)/x``
    strictly decreasing:

    * ramp ``r(x) = x / (x + x_r)`` — increasing, but ``r(x)/x = 1/(x+x_r)``
      is strictly decreasing;
    * cache ``c(x) = 1 - drop * S(log10(x/x_c)/width)`` with ``S`` the
      smoothstep — non-increasing in ``x``;
    * paging ``q(x) = 1 / (1 + ((x - x_p)_+ / (w * x_p))**e)`` —
      non-increasing, with a small positive floor so the speed never
      reaches exactly zero inside the domain.

    Hence ``s(x)/x = s_peak * (c(x) * q(x)) / (x + x_r)`` is a product of a
    strictly decreasing positive factor and non-increasing positive
    factors, i.e. strictly decreasing.
    """
    if cache_elements <= 0 or paging_elements <= 0:
        raise ConfigurationError("cache and paging sizes must be positive")
    x_arr = np.asarray(x, dtype=float)
    x_r = ramp_elements if ramp_elements is not None else 0.05 * cache_elements
    ramp = x_arr / (x_arr + x_r)

    # Smoothstep on a log10 axis centred at the cache boundary.
    t = np.clip(
        (np.log10(np.maximum(x_arr, 1e-300) / cache_elements))
        / profile.cache_smoothness
        * 0.5
        + 0.5,
        0.0,
        1.0,
    )
    smooth = t * t * (3.0 - 2.0 * t)
    cache_factor = 1.0 - profile.cache_drop * smooth

    over = np.maximum(x_arr - paging_elements, 0.0) / (
        profile.paging_width * paging_elements
    )
    paging_factor = 1.0 / (1.0 + over**profile.paging_drop_exponent)
    paging_factor = np.maximum(paging_factor, 1e-4)

    return ramp * cache_factor * paging_factor

"""Preset machines: Tables 1 and 2 of the paper.

Every row of the paper's two machine tables is reproduced verbatim
(architecture strings, clock rates, memory and cache sizes, and — for
Table 2 — the measured matrix sizes at which paging starts for the MM and
LU applications).  The columns the paper does *not* publish but the
simulation needs are filled with documented estimates:

* **peak speeds** per kernel are assigned per CPU class and calibrated
  against the absolute numbers quoted in section 3.1 (X5 ~ 250 MFlops for
  MM at 4500x4500, X10 ~ 31 MFlops; X6 ~ 130 MFlops for LU at 8500x8500,
  X1 ~ 19 MFlops at 4500x4500 — heterogeneity ratios ~8 and ~6.8);
* **free memory** for the Table 1 machines (not published) is taken as
  70 % of main memory;
* **integration levels** (not published per machine) assign HIGH to the
  machines whose bands figure 2 displays and to a representative subset of
  the Table 2 workstations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .network import HeterogeneousNetwork, Machine
from .spec import Integration, MachineSpec
from .synthetic import build_speed_function
from .workload import fluctuation_band

__all__ = [
    "KernelModel",
    "TABLE1_SPECS",
    "TABLE2_SPECS",
    "TABLE2_PAGING_MM",
    "TABLE2_PAGING_LU",
    "build_machine",
    "table1_network",
    "table2_network",
]


@dataclass(frozen=True)
class KernelModel:
    """Synthetic-model parameters of one kernel on one machine.

    Attributes
    ----------
    profile:
        Name of a :data:`~repro.machines.hierarchy.PROFILES` entry.
    peak_mflops:
        In-cache peak speed.
    paging_matrix_size:
        Measured paging-onset matrix dimension, if published (Table 2).
    matrices:
        Square matrices making up the element count (3 for C=A*B^T, 1 for LU).
    """

    profile: str
    peak_mflops: float
    paging_matrix_size: float | None = None
    matrices: int = 1


# ---------------------------------------------------------------------------
# Table 1 — the four motivating machines of figures 1 and 2
# ---------------------------------------------------------------------------

TABLE1_SPECS: tuple[MachineSpec, ...] = (
    MachineSpec(
        name="Comp1",
        os="Linux 2.4.20-8",
        arch="Intel(R) Pentium(R) 4",
        cpu_mhz=2793,
        main_memory_kb=513304,
        free_memory_kb=359313,  # 70% of main (not published)
        cache_kb=512,
        integration=Integration.HIGH,
    ),
    MachineSpec(
        name="Comp2",
        os="SunOS 5.8 sun4u sparc",
        arch="SUNW,Ultra-5_10",
        cpu_mhz=440,
        main_memory_kb=524288,
        free_memory_kb=367001,
        cache_kb=2048,
        integration=Integration.HIGH,
    ),
    MachineSpec(
        name="Comp3",
        os="Windows XP",
        arch="Intel(R) Pentium(R) 4",
        cpu_mhz=3000,
        main_memory_kb=1030388,
        free_memory_kb=721271,
        cache_kb=512,
        integration=Integration.LOW,
    ),
    MachineSpec(
        name="Comp4",
        os="Linux 2.4.7-10 i686",
        arch="Intel Pentium III",
        cpu_mhz=730,
        main_memory_kb=254524,
        free_memory_kb=178166,
        cache_kb=256,
        integration=Integration.HIGH,
    ),
)

#: Per-machine peaks for the three motivating kernels of figure 1.  The
#: ArrayOpsF/ATLAS kernels run near the machine's flop peak; the naive
#: MatrixMult achieves a small fraction of it.
_TABLE1_KERNELS: dict[str, dict[str, KernelModel]] = {
    "Comp1": {
        "arrayops": KernelModel("arrayops", 430.0, matrices=1),
        "matmul_atlas": KernelModel("matmul_atlas", 520.0, matrices=3),
        "matmul_naive": KernelModel("matmul_naive", 190.0, matrices=3),
    },
    "Comp2": {
        "arrayops": KernelModel("arrayops", 55.0, matrices=1),
        "matmul_atlas": KernelModel("matmul_atlas", 72.0, matrices=3),
        "matmul_naive": KernelModel("matmul_naive", 30.0, matrices=3),
    },
    "Comp3": {
        "arrayops": KernelModel("arrayops", 470.0, matrices=1),
        "matmul_atlas": KernelModel("matmul_atlas", 560.0, matrices=3),
        "matmul_naive": KernelModel("matmul_naive", 210.0, matrices=3),
    },
    "Comp4": {
        "arrayops": KernelModel("arrayops", 95.0, matrices=1),
        "matmul_atlas": KernelModel("matmul_atlas", 120.0, matrices=3),
        "matmul_naive": KernelModel("matmul_naive", 50.0, matrices=3),
    },
}


# ---------------------------------------------------------------------------
# Table 2 — the twelve-machine experimental testbed
# ---------------------------------------------------------------------------

def _x(name, os, arch, mhz, main, free, cache, integ):
    return MachineSpec(
        name=name,
        os=os,
        arch=arch,
        cpu_mhz=mhz,
        main_memory_kb=main,
        free_memory_kb=free,
        cache_kb=cache,
        integration=integ,
    )


_H, _L = Integration.HIGH, Integration.LOW

TABLE2_SPECS: tuple[MachineSpec, ...] = (
    _x("X1", "Linux 2.4.20-20.9 i686", "Intel Pentium III", 997, 513304, 363264, 256, _H),
    _x("X2", "Linux 2.4.18-3 i686", "Intel Pentium III", 997, 254576, 65692, 256, _H),
    _x("X3", "Linux 2.4.20-20.9bigmem", "Intel(R) Xeon(TM)", 2783, 7933500, 2221436, 512, _L),
    _x("X4", "Linux 2.4.20-20.9bigmem", "Intel(R) Xeon(TM)", 2783, 7933500, 3073628, 512, _L),
    _x("X5", "Linux 2.4.18-10smp", "Intel(R) XEON(TM)", 1977, 1030508, 415904, 512, _H),
    _x("X6", "Linux 2.4.18-10smp", "Intel(R) XEON(TM)", 1977, 1030508, 364120, 512, _H),
    _x("X7", "Linux 2.4.18-10smp", "Intel(R) XEON(TM)", 1977, 1030508, 215752, 512, _H),
    _x("X8", "Linux 2.4.18-10smp", "Intel(R) XEON(TM)", 1977, 1030508, 134400, 512, _L),
    _x("X9", "Linux 2.4.18-10smp", "Intel(R) XEON(TM)", 1977, 1030508, 134400, 512, _L),
    _x("X10", "SunOS 5.8 sun4u sparc", "SUNW,Ultra-5_10", 440, 524288, 409600, 2048, _L),
    _x("X11", "SunOS 5.8 sun4u sparc", "SUNW,Ultra-5_10", 440, 524288, 418816, 2048, _L),
    _x("X12", "SunOS 5.8 sun4u sparc", "SUNW,Ultra-5_10", 440, 524288, 395264, 2048, _L),
)

#: Measured matrix sizes at which paging starts (Table 2, columns
#: "Paging (MM)" and "Paging (LU)").
TABLE2_PAGING_MM: dict[str, int] = {
    "X1": 4500, "X2": 4000, "X3": 6400, "X4": 6400, "X5": 6000, "X6": 6000,
    "X7": 6000, "X8": 5500, "X9": 5500, "X10": 4500, "X11": 4500, "X12": 4500,
}
TABLE2_PAGING_LU: dict[str, int] = {
    "X1": 6000, "X2": 5000, "X3": 11000, "X4": 11000, "X5": 8500, "X6": 8500,
    "X7": 8000, "X8": 6500, "X9": 6500, "X10": 5000, "X11": 5000, "X12": 5000,
}

#: In-cache peaks per CPU class, calibrated to the absolute speeds quoted in
#: section 3.1 (see module docstring).
_CLASS_PEAKS: dict[str, tuple[float, float]] = {
    # arch -> (mm peak, lu peak) MFlops; LU peaks are in-cache values, the
    # wide-transition "lu" profile settles them ~25 % lower at large sizes.
    "Intel Pentium III": (90.0, 26.0),
    "Intel(R) Xeon(TM)": (340.0, 230.0),
    "Intel(R) XEON(TM)": (270.0, 175.0),
    "SUNW,Ultra-5_10": (34.0, 41.0),
}


def _table2_kernels(spec: MachineSpec) -> dict[str, KernelModel]:
    try:
        mm_peak, lu_peak = _CLASS_PEAKS[spec.arch]
    except KeyError:  # pragma: no cover - presets cover all classes
        raise ConfigurationError(f"no peak speeds for architecture {spec.arch!r}")
    return {
        "matmul": KernelModel(
            "matmul_atlas",
            mm_peak,
            paging_matrix_size=TABLE2_PAGING_MM[spec.name],
            matrices=3,
        ),
        "lu": KernelModel(
            "lu",
            lu_peak,
            paging_matrix_size=TABLE2_PAGING_LU[spec.name],
            matrices=1,
        ),
    }


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def build_machine(
    spec: MachineSpec, kernel_models: dict[str, KernelModel]
) -> Machine:
    """Assemble a simulated machine from a spec and kernel models.

    Ground-truth curves come from :func:`~repro.machines.synthetic.
    build_speed_function`; each is wrapped in the fluctuation band matching
    the machine's integration level.
    """
    bands = {}
    for kernel, km in kernel_models.items():
        sf = build_speed_function(
            spec,
            peak_mflops=km.peak_mflops,
            profile=km.profile,
            paging_matrix_size=km.paging_matrix_size,
            matrices=km.matrices,
        )
        bands[kernel] = fluctuation_band(sf, spec.integration)
    return Machine(spec, bands)


def table1_network() -> HeterogeneousNetwork:
    """The four machines of Table 1 with the figure-1 kernels.

    Kernels: ``"arrayops"``, ``"matmul_atlas"``, ``"matmul_naive"``.
    """
    return HeterogeneousNetwork(
        [build_machine(s, _TABLE1_KERNELS[s.name]) for s in TABLE1_SPECS]
    )


def table2_network() -> HeterogeneousNetwork:
    """The twelve-machine testbed of Table 2 with the evaluation kernels.

    Kernels: ``"matmul"`` (the C=A*B^T application) and ``"lu"``.
    """
    return HeterogeneousNetwork(
        [build_machine(s, _table2_kernels(s)) for s in TABLE2_SPECS]
    )

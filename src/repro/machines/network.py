"""Machines and networks: containers binding specs to speed models.

A :class:`Machine` owns a :class:`~repro.machines.spec.MachineSpec` plus one
:class:`~repro.core.band.SpeedBand` per kernel.  A
:class:`HeterogeneousNetwork` is an ordered collection of machines offering
the views the experiments need: the list of midline speed functions for a
kernel (deterministic runs), or a per-run stochastic sample from each
machine's band (fluctuating-workload runs).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..core.band import SpeedBand
from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError
from .spec import MachineSpec

__all__ = ["Machine", "HeterogeneousNetwork"]


class Machine:
    """One simulated computer: spec + per-kernel performance bands."""

    def __init__(self, spec: MachineSpec, bands: Mapping[str, SpeedBand]):
        if not bands:
            raise ConfigurationError(f"{spec.name}: at least one kernel band required")
        self._spec = spec
        self._bands = dict(bands)

    @property
    def spec(self) -> MachineSpec:
        """The machine's static specification."""
        return self._spec

    @property
    def name(self) -> str:
        """Machine name (``spec.name``)."""
        return self._spec.name

    @property
    def kernels(self) -> tuple[str, ...]:
        """Kernels this machine has a performance model for."""
        return tuple(sorted(self._bands))

    def band(self, kernel: str) -> SpeedBand:
        """Performance band for a kernel."""
        try:
            return self._bands[kernel]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no model for kernel {kernel!r}; "
                f"known: {self.kernels}"
            ) from None

    def speed_function(self, kernel: str) -> SpeedFunction:
        """Midline (typical-load) speed function for a kernel."""
        return self.band(kernel).midline

    def sample_speed_function(
        self, kernel: str, rng: np.random.Generator
    ) -> SpeedFunction:
        """One run's speed function drawn from the fluctuation band."""
        return self.band(kernel).sample(rng)

    def __repr__(self) -> str:
        return f"Machine({self.name!r}, kernels={list(self.kernels)})"


class HeterogeneousNetwork:
    """An ordered set of heterogeneous machines (the paper's HNOC)."""

    def __init__(self, machines: Sequence[Machine]):
        if not machines:
            raise ConfigurationError("a network needs at least one machine")
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate machine names in {names}")
        self._machines = list(machines)
        self._by_name = {m.name: m for m in machines}

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._machines)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines)

    def __getitem__(self, key: int | str) -> Machine:
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise KeyError(
                    f"no machine named {key!r}; known: {self.names}"
                ) from None
        return self._machines[key]

    @property
    def names(self) -> tuple[str, ...]:
        """Machine names in network order."""
        return tuple(m.name for m in self._machines)

    @property
    def machines(self) -> tuple[Machine, ...]:
        """The machines in network order."""
        return tuple(self._machines)

    # -- model views ---------------------------------------------------------
    def speed_functions(self, kernel: str) -> list[SpeedFunction]:
        """Midline speed functions of every machine, in network order."""
        return [m.speed_function(kernel) for m in self._machines]

    def bands(self, kernel: str) -> list[SpeedBand]:
        """Performance bands of every machine, in network order."""
        return [m.band(kernel) for m in self._machines]

    def sample_speed_functions(
        self, kernel: str, rng: np.random.Generator
    ) -> list[SpeedFunction]:
        """One stochastic speed function per machine (independent draws)."""
        return [m.sample_speed_function(kernel, rng) for m in self._machines]

    # -- composition -----------------------------------------------------------
    def subset(self, names: Iterable[str]) -> "HeterogeneousNetwork":
        """Sub-network containing the named machines (in the given order)."""
        return HeterogeneousNetwork([self[name] for name in names])

    def replicated(self, copies: int) -> "HeterogeneousNetwork":
        """Network with every machine duplicated ``copies`` times.

        Used by the figure-21 cost experiment, which measures the
        partitioner on networks of hundreds of processors by tiling the
        12-machine testbed.
        """
        if copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies}")
        clones: list[Machine] = []
        for c in range(copies):
            for m in self._machines:
                spec = m.spec
                if c == 0:
                    clones.append(m)
                else:
                    renamed = MachineSpec(
                        name=f"{spec.name}.{c}",
                        os=spec.os,
                        arch=spec.arch,
                        cpu_mhz=spec.cpu_mhz,
                        main_memory_kb=spec.main_memory_kb,
                        free_memory_kb=spec.free_memory_kb,
                        cache_kb=spec.cache_kb,
                        swap_kb=spec.swap_kb,
                        integration=spec.integration,
                    )
                    clones.append(Machine(renamed, {k: m.band(k) for k in m.kernels}))
        return HeterogeneousNetwork(clones)

    def __repr__(self) -> str:
        return f"HeterogeneousNetwork({list(self.names)})"

"""Time-varying background load: the process underneath the speed bands.

Section 1 describes computers that "experience constant and stochastic
fluctuations in the workload" from routine network-integration tasks, and
reports two empirical regularities the band model encodes:

* run-to-run speeds vary within a band whose *relative* width shrinks
  "close to linearly" as the execution time grows;
* a permanently heavier load shifts the band down at constant width.

This module models the cause directly: an Ornstein-Uhlenbeck background
load ``lam(t) in [0, 1)`` that steals a fraction of the machine, so the
instantaneous processing rate is ``s(x) * (1 - lam(t))``.  A task of size
``x`` finishes when the integrated rate reaches ``x``; because the OU
process decorrelates over its time constant ``tau``, long runs average the
load and their *effective* speed concentrates — which is exactly why the
measured band narrows with execution time.  The ablation benchmark
(``bench_ablation_dynamic_load.py``) regenerates that narrowing curve.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError

__all__ = [
    "ou_load_trace",
    "ou_load_trace_shifted",
    "dynamic_task_time",
    "effective_speed",
]


def ou_load_trace(
    rng: np.random.Generator,
    steps: int,
    dt: float,
    *,
    mean: float = 0.15,
    sigma: float = 0.10,
    tau: float = 5.0,
    clip: tuple[float, float] = (0.0, 0.95),
) -> np.ndarray:
    """Sample an Ornstein-Uhlenbeck background-load trace.

    Parameters
    ----------
    rng:
        Seeded generator (no global state).
    steps, dt:
        Trace length and resolution (seconds).
    mean:
        Long-run average fraction of the machine consumed by background
        work (the routine email/browser/editor activity of section 1).
    sigma:
        Stationary standard deviation of the load.
    tau:
        Correlation time constant (seconds); load bursts last ~``tau``.
    clip:
        Hard bounds keeping the load a valid fraction.

    Returns the load fraction at each step (exact OU discretisation).
    """
    if steps < 1 or dt <= 0:
        raise ConfigurationError("steps must be >= 1 and dt positive")
    if tau <= 0 or sigma < 0:
        raise ConfigurationError("tau must be positive and sigma non-negative")
    if not (0 <= clip[0] < clip[1] < 1):
        raise ConfigurationError(f"invalid clip bounds {clip!r}")
    alpha = math.exp(-dt / tau)
    noise_scale = sigma * math.sqrt(1.0 - alpha * alpha)
    lam = np.empty(steps)
    x = mean + sigma * float(rng.standard_normal())
    for k in range(steps):
        x = mean + alpha * (x - mean) + noise_scale * float(rng.standard_normal())
        lam[k] = x
    return np.clip(lam, clip[0], clip[1])


def ou_load_trace_shifted(
    rng: np.random.Generator,
    steps: int,
    dt: float,
    *,
    shift_step: int,
    mean_before: float = 0.15,
    mean_after: float = 0.60,
    sigma: float = 0.10,
    tau: float = 5.0,
    clip: tuple[float, float] = (0.0, 0.95),
) -> np.ndarray:
    """An OU load trace whose long-run mean steps permanently mid-run.

    This is the paper's "permanently shifted band" scenario — a new
    resident workload arrives at ``shift_step`` and never leaves — as a
    single continuous process: the same exact OU discretisation as
    :func:`ou_load_trace`, but reverting to ``mean_before`` up to the
    shift and to ``mean_after`` from it on (the state carries over, so
    the load *relaxes* toward the new mean over ~``tau`` rather than
    jumping).  The adaptive-execution ablation drives its drift scenario
    with this trace.
    """
    if steps < 1 or dt <= 0:
        raise ConfigurationError("steps must be >= 1 and dt positive")
    if not (0 <= shift_step <= steps):
        raise ConfigurationError(
            f"shift_step must be within [0, {steps}], got {shift_step}"
        )
    if tau <= 0 or sigma < 0:
        raise ConfigurationError("tau must be positive and sigma non-negative")
    if not (0 <= clip[0] < clip[1] < 1):
        raise ConfigurationError(f"invalid clip bounds {clip!r}")
    alpha = math.exp(-dt / tau)
    noise_scale = sigma * math.sqrt(1.0 - alpha * alpha)
    lam = np.empty(steps)
    x = mean_before + sigma * float(rng.standard_normal())
    for k in range(steps):
        mean = mean_before if k < shift_step else mean_after
        x = mean + alpha * (x - mean) + noise_scale * float(rng.standard_normal())
        lam[k] = x
    return np.clip(lam, clip[0], clip[1])


def dynamic_task_time(
    sf: SpeedFunction,
    x: float,
    trace: np.ndarray,
    dt: float,
) -> float:
    """Time to finish an ``x``-element task under a load trace.

    Integrates the instantaneous rate ``s(x) * (1 - lam(t))`` until the
    accumulated work reaches ``x`` (sub-step linear interpolation at the
    finish).  Raises if the trace ends before the task does — size the
    trace generously.
    """
    if x <= 0:
        return 0.0
    if x > sf.max_size:
        raise ConfigurationError(
            f"task of {x:g} elements exceeds the memory bound {sf.max_size:g}"
        )
    base = float(sf.speed(x))
    if base <= 0:
        raise ConfigurationError("non-positive base speed")
    rates = base * (1.0 - np.asarray(trace, dtype=float))
    work = np.cumsum(rates) * dt
    if work[-1] < x:
        raise ConfigurationError(
            f"load trace too short: {work[-1]:g} of {x:g} elements completed "
            f"in {trace.size * dt:g}s"
        )
    k = int(np.searchsorted(work, x))
    done_before = work[k - 1] if k > 0 else 0.0
    remainder = (x - done_before) / rates[k] if rates[k] > 0 else dt
    return k * dt + float(min(remainder, dt))


def effective_speed(
    sf: SpeedFunction,
    x: float,
    trace: np.ndarray,
    dt: float,
) -> float:
    """The speed a benchmark would *measure* for one run under the trace."""
    t = dynamic_task_time(sf, x, trace, dt)
    if t <= 0:
        raise ConfigurationError("zero-size task has no measurable speed")
    return float(x) / t

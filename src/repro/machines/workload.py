"""Workload-fluctuation bands for simulated machines.

Implements the observations of section 1 (figure 2):

* machines with a **high** level of network integration fluctuate by about
  40 % of the maximum speed at small problem sizes, declining close to
  linearly to about 6 % at the largest solvable size;
* machines with a **low** level of integration stay within about 5-7 %
  regardless of activity;
* an additional heavy computational load shifts the whole band down while
  its (absolute) width stays the same — see
  :meth:`repro.core.band.SpeedBand.shifted`.
"""

from __future__ import annotations

from ..core.band import SpeedBand, constant_width_schedule, linear_width_schedule
from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError
from .spec import Integration

__all__ = [
    "HIGH_INTEGRATION_WIDTH_SMALL",
    "HIGH_INTEGRATION_WIDTH_LARGE",
    "LOW_INTEGRATION_WIDTH",
    "fluctuation_band",
]

#: Paper: "fluctuations in speed ... in the order of 40% for small problem
#: sizes declining to approximately 6% for the maximum problem size".
HIGH_INTEGRATION_WIDTH_SMALL = 0.40
HIGH_INTEGRATION_WIDTH_LARGE = 0.06

#: Paper: "for computers with low level of integration, the width of the
#: performance band was not greater than around 5-7%".
LOW_INTEGRATION_WIDTH = 0.06


def fluctuation_band(
    speed_function: SpeedFunction,
    integration: Integration,
    *,
    width_small: float = HIGH_INTEGRATION_WIDTH_SMALL,
    width_large: float = HIGH_INTEGRATION_WIDTH_LARGE,
    small_size_fraction: float = 1e-4,
) -> SpeedBand:
    """Wrap a ground-truth curve in the appropriate fluctuation band.

    Parameters
    ----------
    speed_function:
        Midline (typical-load) speed function; must have a finite
        ``max_size`` for the high-integration linear schedule.
    integration:
        The machine's :class:`~repro.machines.spec.Integration` level.
    width_small, width_large:
        Override the band endpoints for high-integration machines.
    small_size_fraction:
        Problem size (as a fraction of ``max_size``) at which the band is
        at its widest.
    """
    if integration is Integration.LOW:
        return SpeedBand(speed_function, constant_width_schedule(LOW_INTEGRATION_WIDTH))
    if integration is Integration.HIGH:
        max_size = speed_function.max_size
        if not (max_size < float("inf")):
            raise ConfigurationError(
                "high-integration bands need a finite max_size to anchor the "
                "linear width schedule"
            )
        schedule = linear_width_schedule(
            width_small,
            width_large,
            small_size_fraction * max_size,
            max_size,
        )
        return SpeedBand(speed_function, schedule)
    raise ConfigurationError(f"unknown integration level {integration!r}")

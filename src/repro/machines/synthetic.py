"""Synthetic per-machine speed functions.

This is the stand-in for the paper's physical testbed: given a
:class:`~repro.machines.spec.MachineSpec`, a kernel profile and a peak
speed, it produces the machine's "ground-truth" speed-versus-size curve as
an :class:`~repro.core.speed_function.AnalyticSpeedFunction`.  Everything
downstream — the model-building procedure of section 3.1, the simulator,
the speedup experiments — treats these curves exactly the way the paper
treats a real machine: benchmark it at a few sizes, fit a piecewise
approximation, never peek at the analytic form.
"""

from __future__ import annotations

import numpy as np

from ..core.speed_function import AnalyticSpeedFunction, PiecewiseLinearSpeedFunction
from ..exceptions import ConfigurationError
from .hierarchy import PROFILES, KernelProfile, efficiency
from .spec import MachineSpec

__all__ = ["build_speed_function", "paging_onset_elements", "ground_truth_grid"]


def paging_onset_elements(
    spec: MachineSpec, paging_matrix_size: float | None, matrices: int
) -> float:
    """Element count at which paging starts for a kernel on a machine.

    ``paging_matrix_size`` is the measured onset matrix dimension from
    Table 2 (``Paging (MM)`` / ``Paging (LU)``); when the paper does not
    publish one (Table 1 machines) the onset is derived from the free main
    memory with a conservative utilisation factor.
    """
    if paging_matrix_size is not None:
        if paging_matrix_size <= 0:
            raise ConfigurationError("paging matrix size must be positive")
        return float(matrices) * float(paging_matrix_size) ** 2
    return 0.85 * spec.free_memory_elements


def build_speed_function(
    spec: MachineSpec,
    *,
    peak_mflops: float,
    profile: KernelProfile | str,
    paging_matrix_size: float | None = None,
    matrices: int = 1,
    capacity_factor: float = 4.0,
) -> AnalyticSpeedFunction:
    """Ground-truth speed function of ``spec`` for one kernel.

    Parameters
    ----------
    spec:
        The machine.
    peak_mflops:
        In-cache peak speed of this kernel on this machine.  The paper's
        "absolute speed" axis (MFlops); under striped distributions the
        flop count is a shared linear function of the element count, so
        partitioning elements proportionally to this axis equalises real
        time (see DESIGN.md).
    profile:
        A :class:`~repro.machines.hierarchy.KernelProfile` or the name of a
        registered one.
    paging_matrix_size:
        Measured paging-onset matrix dimension (Table 2), if available.
    matrices:
        Number of square matrices the element count comprises (3 for the
        MM application, 1 for LU).
    capacity_factor:
        The domain endpoint ``b`` (``max_size``) as a multiple of the
        paging onset; the speed there is deep in the paging collapse,
        matching the paper's "large enough to make the speed practically
        equal to zero".
    """
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise ConfigurationError(
                f"unknown kernel profile {profile!r}; known: {sorted(PROFILES)}"
            ) from None
    if peak_mflops <= 0:
        raise ConfigurationError("peak_mflops must be positive")
    if capacity_factor <= 1:
        raise ConfigurationError("capacity_factor must exceed 1")
    cache_elems = float(spec.cache_elements)
    paging_elems = paging_onset_elements(spec, paging_matrix_size, matrices)
    max_size = capacity_factor * paging_elems
    prof = profile

    def func(x, _peak=float(peak_mflops), _cache=cache_elems, _page=paging_elems, _p=prof):
        return _peak * efficiency(
            x, cache_elements=_cache, paging_elements=_page, profile=_p
        )

    return AnalyticSpeedFunction(func, max_size=max_size)


def ground_truth_grid(
    sf: AnalyticSpeedFunction, num: int = 96
) -> PiecewiseLinearSpeedFunction:
    """Dense tabulation of a ground-truth curve (plotting/simulation aid)."""
    xs = np.geomspace(max(sf.max_size * 1e-6, 1.0), sf.max_size, num)
    return PiecewiseLinearSpeedFunction(xs, sf.speed(xs))

"""Communication model (extension; the paper defers this to future work).

The paper deliberately excludes communication cost from its performance
model but sketches what an extension would need (section 1): a
per-processor-pair model with "a start-up time and a data transmission
rate" (the Bhat et al. [13] model) and awareness that on switched/shared
Ethernet it is desirable that only one processor sends at a time.

This module implements exactly that minimal extension so the simulator can
optionally charge communication time:

* :class:`CommLink` — the two-parameter (latency, bandwidth) link;
* :class:`CommModel` — a ``p x p`` matrix of links with helpers for the
  collective patterns the striped algorithms use (serialised sends, as the
  paper recommends for Ethernet, or fully parallel for an ideal switch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["CommLink", "CommModel"]


@dataclass(frozen=True)
class CommLink:
    """Two-parameter point-to-point link: ``t(m) = startup + m / rate``.

    Attributes
    ----------
    startup_s:
        Start-up latency in seconds.
    rate_bytes_per_s:
        Sustained transmission rate in bytes/second.
    """

    startup_s: float
    rate_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.startup_s < 0:
            raise ConfigurationError("startup_s must be non-negative")
        if self.rate_bytes_per_s <= 0:
            raise ConfigurationError("rate_bytes_per_s must be positive")

    def time(self, message_bytes: float) -> float:
        """Seconds to move ``message_bytes`` over this link."""
        if message_bytes < 0:
            raise ConfigurationError("message size must be non-negative")
        if message_bytes == 0:
            return 0.0
        return self.startup_s + message_bytes / self.rate_bytes_per_s


class CommModel:
    """Pairwise communication model over ``p`` processors.

    Parameters
    ----------
    links:
        ``p x p`` nested sequence of :class:`CommLink` (diagonal ignored).
    serialised:
        When true (the default, matching the paper's recommendation for
        Ethernet), concurrent messages are charged sequentially; when
        false, an ideal switch overlaps them and a message set costs its
        maximum.
    """

    def __init__(self, links: Sequence[Sequence[CommLink]], *, serialised: bool = True):
        p = len(links)
        if p == 0 or any(len(row) != p for row in links):
            raise ConfigurationError("links must be a square p x p matrix")
        self._links = [list(row) for row in links]
        self.serialised = bool(serialised)

    @classmethod
    def ethernet(
        cls,
        p: int,
        *,
        startup_s: float = 1e-4,
        bandwidth_bits_per_s: float = 100e6,
        serialised: bool = True,
    ) -> "CommModel":
        """Homogeneous switched-Ethernet model (the paper's 100 Mbit LAN)."""
        if p <= 0:
            raise ConfigurationError("p must be positive")
        link = CommLink(startup_s, bandwidth_bits_per_s / 8.0)
        return cls([[link] * p for _ in range(p)], serialised=serialised)

    @property
    def p(self) -> int:
        """Number of processors."""
        return len(self._links)

    def link(self, src: int, dst: int) -> CommLink:
        """The link between two processors."""
        if src == dst:
            raise ConfigurationError("no link from a processor to itself")
        return self._links[src][dst]

    def point_to_point(self, src: int, dst: int, message_bytes: float) -> float:
        """Time for one message."""
        return self.link(src, dst).time(message_bytes)

    def message_set(self, messages: Sequence[tuple[int, int, float]]) -> float:
        """Time for a set of ``(src, dst, bytes)`` messages.

        Serialised (shared medium): the sum of the individual times —
        "only one processor sends a message at a given time".  Parallel
        (ideal switch): the maximum.
        """
        times = [self.point_to_point(s, d, b) for (s, d, b) in messages if b > 0]
        if not times:
            return 0.0
        return float(sum(times)) if self.serialised else float(max(times))

    def broadcast(self, root: int, message_bytes: float) -> float:
        """Root sends the same message to every other processor (flat tree)."""
        msgs = [(root, dst, message_bytes) for dst in range(self.p) if dst != root]
        return self.message_set(msgs)

    def scatter(self, root: int, per_dest_bytes: Sequence[float]) -> float:
        """Root sends a distinct block to each processor (flat scatter)."""
        if len(per_dest_bytes) != self.p:
            raise ConfigurationError(
                f"expected {self.p} block sizes, got {len(per_dest_bytes)}"
            )
        msgs = [
            (root, dst, float(b))
            for dst, b in enumerate(per_dest_bytes)
            if dst != root and b > 0
        ]
        return self.message_set(msgs)

    def allgather(self, per_source_bytes: Sequence[float]) -> float:
        """Every processor shares its block with every other (flat rounds)."""
        if len(per_source_bytes) != self.p:
            raise ConfigurationError(
                f"expected {self.p} block sizes, got {len(per_source_bytes)}"
            )
        msgs = [
            (src, dst, float(b))
            for src, b in enumerate(per_source_bytes)
            for dst in range(self.p)
            if dst != src and b > 0
        ]
        return self.message_set(msgs)

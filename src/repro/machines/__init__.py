"""Simulated heterogeneous computers: the substitute for the paper's testbed.

See DESIGN.md section 2 for the substitution rationale.  The sub-modules:

* :mod:`~repro.machines.spec` — machine specifications (Tables 1 & 2 columns);
* :mod:`~repro.machines.hierarchy` — kernel profiles and the
  cache/memory/paging efficiency model;
* :mod:`~repro.machines.synthetic` — ground-truth speed-function generator;
* :mod:`~repro.machines.workload` — workload-fluctuation bands (figure 2);
* :mod:`~repro.machines.network` — :class:`Machine` and
  :class:`HeterogeneousNetwork` containers;
* :mod:`~repro.machines.presets` — the paper's Table 1 and Table 2 machines;
* :mod:`~repro.machines.comm` — the optional two-parameter communication
  model (future-work extension).
"""

from .comm import CommLink, CommModel
from .hierarchy import PROFILES, KernelProfile, efficiency
from .network import HeterogeneousNetwork, Machine
from .presets import (
    TABLE1_SPECS,
    TABLE2_PAGING_LU,
    TABLE2_PAGING_MM,
    TABLE2_SPECS,
    KernelModel,
    build_machine,
    table1_network,
    table2_network,
)
from .spec import Integration, MachineSpec
from .synthetic import build_speed_function, ground_truth_grid, paging_onset_elements
from .workload import fluctuation_band

__all__ = [
    "CommLink",
    "CommModel",
    "HeterogeneousNetwork",
    "Integration",
    "KernelModel",
    "KernelProfile",
    "Machine",
    "MachineSpec",
    "PROFILES",
    "TABLE1_SPECS",
    "TABLE2_PAGING_LU",
    "TABLE2_PAGING_MM",
    "TABLE2_SPECS",
    "build_machine",
    "build_speed_function",
    "efficiency",
    "fluctuation_band",
    "ground_truth_grid",
    "paging_onset_elements",
    "table1_network",
    "table2_network",
]

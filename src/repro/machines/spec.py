"""Machine specifications mirroring Tables 1 and 2 of the paper.

A :class:`MachineSpec` records exactly the columns the paper publishes for
its experimental machines — OS/architecture string, CPU clock, main memory,
free main memory, cache — plus the two derived quantities the evaluation
depends on: the measured paging-onset matrix sizes for the matrix
multiplication and LU applications (Table 2 columns ``Paging (MM)`` /
``Paging (LU)``) and the machine's level of network integration, which
controls the width of its workload-fluctuation band (section 1).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

__all__ = ["Integration", "MachineSpec"]

#: Bytes per double-precision element.
ELEMENT_BYTES = 8


class Integration(enum.Enum):
    """Level of integration of the computer into the network.

    Section 1: highly integrated computers show speed fluctuations of ~40 %
    at small problem sizes declining to ~6 % at the largest; weakly
    integrated ones stay within ~5-7 % even under heavy file sharing.
    """

    HIGH = "high"
    LOW = "low"


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one heterogeneous computer.

    Attributes
    ----------
    name:
        Machine identifier (``"X1"``..., ``"Comp1"``...).
    os:
        Operating-system string as printed in the paper's tables.
    arch:
        Processor architecture string.
    cpu_mhz:
        Clock frequency in MHz.
    main_memory_kb:
        Total main memory in kBytes.
    free_memory_kb:
        Main memory available to the application (total minus the routine
        OS/user processes the paper describes), in kBytes.
    cache_kb:
        Last-level cache size in kBytes.
    swap_kb:
        Swap space in kBytes; together with free memory it bounds the
        largest solvable problem.  Defaults to the total main memory, a
        common configuration for the paper's era.
    integration:
        Workload-fluctuation class of the machine.
    """

    name: str
    os: str
    arch: str
    cpu_mhz: float
    main_memory_kb: int
    free_memory_kb: int
    cache_kb: int
    swap_kb: int = 0
    integration: Integration = Integration.LOW

    def __post_init__(self) -> None:
        if self.cpu_mhz <= 0:
            raise ConfigurationError(f"{self.name}: cpu_mhz must be positive")
        if self.main_memory_kb <= 0 or self.cache_kb <= 0:
            raise ConfigurationError(f"{self.name}: memory sizes must be positive")
        if not (0 < self.free_memory_kb <= self.main_memory_kb):
            raise ConfigurationError(
                f"{self.name}: free memory must be positive and at most main memory"
            )
        if self.swap_kb == 0:
            object.__setattr__(self, "swap_kb", self.main_memory_kb)
        if self.swap_kb < 0:
            raise ConfigurationError(f"{self.name}: swap_kb must be non-negative")

    # -- capacity helpers -------------------------------------------------
    @property
    def cache_elements(self) -> int:
        """Number of double-precision elements fitting in the cache."""
        return self.cache_kb * 1024 // ELEMENT_BYTES

    @property
    def free_memory_elements(self) -> int:
        """Elements fitting in the free main memory."""
        return self.free_memory_kb * 1024 // ELEMENT_BYTES

    @property
    def capacity_elements(self) -> int:
        """Largest element count solvable at all (free memory + swap).

        Beyond this the machine cannot hold the task; the paper chooses its
        benchmark endpoint ``b`` from "the sum of amount of main memory and
        swap space available".
        """
        return (self.free_memory_kb + self.swap_kb) * 1024 // ELEMENT_BYTES

    def matrix_size_for_elements(self, elements: float, matrices: int = 1) -> float:
        """Square-matrix dimension ``n`` storing ``elements`` in ``matrices``."""
        if elements < 0:
            raise ConfigurationError("elements must be non-negative")
        return math.sqrt(elements / matrices)

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.arch}, {self.cpu_mhz:g} MHz, "
            f"{self.main_memory_kb} kB RAM / {self.free_memory_kb} kB free, "
            f"{self.cache_kb} kB cache)"
        )

"""Command-line experiment runner: ``repro <experiment>``.

Regenerates the paper's tables and figures from the terminal without
touching pytest::

    repro fig1            # speed curves (Table 1 machines)
    repro fig2            # workload bands
    repro table2          # testbed specs + paging onsets
    repro fig21           # partitioner cost sweep
    repro fig22a          # MM speedup sweep
    repro fig22b          # LU speedup sweep
    repro plan            # cached/warm-started partition planner queries
    repro stats           # run a workload, dump the collected telemetry
    repro trace           # run a workload, pretty-print the span tree
    repro serve           # run the concurrent planning service (repro.serve)
    repro verify          # certificates, differential conformance, fuzzing
    repro all             # every paper artefact above

``repro table3`` / ``repro table4`` run the *real* NumPy kernels on this
host, so their absolute MFlops depend on where you run them.  ``repro
stats`` / ``repro trace`` enable the :mod:`repro.obs` telemetry layer for
the duration of their workload; ``-v`` / ``--log-level`` switch on
structured (key=value) logging for any command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import obs
from .exceptions import ReproError

from .experiments import (
    FIG22A_PROBES,
    FIG22A_SIZES,
    FIG22B_PROBES,
    FIG22B_SIZES,
    ascii_table,
    build_network_models,
    detect_paging_onsets,
    fig1_curves,
    fig21_sweep,
    fig2_bands,
    lu_invariance,
    lu_speedup_experiment,
    mm_invariance,
    mm_speedup_experiment,
)
from .machines import TABLE1_SPECS, TABLE2_SPECS, table1_network, table2_network

__all__ = ["main"]


def _cmd_fig1(args: argparse.Namespace) -> None:
    net = table1_network()
    print(
        ascii_table(
            ["Machine", "Architecture", "cpu MHz", "Main Memory (kB)", "Cache (kB)"],
            [
                (s.name, s.arch, int(s.cpu_mhz), s.main_memory_kb, s.cache_kb)
                for s in TABLE1_SPECS
            ],
            title="Table 1",
        )
    )
    for kernel, series in fig1_curves(net).items():
        print()
        print(
            ascii_table(
                ["Machine", "peak MFlops", "paging point P (elements)"],
                [(c.machine, c.peak, c.paging_onset) for c in series],
                title=f"Figure 1 — {kernel}",
            )
        )


def _cmd_fig2(args: argparse.Namespace) -> None:
    for b in fig2_bands(table1_network()):
        print(
            ascii_table(
                ["size (elements)", "lower", "upper", "width % of midline"],
                [
                    (float(x), float(lo), float(hi), float(w))
                    for x, lo, hi, w in zip(
                        b.sizes[:: max(len(b.sizes) // 10, 1)],
                        b.lower[:: max(len(b.sizes) // 10, 1)],
                        b.upper[:: max(len(b.sizes) // 10, 1)],
                        b.relative_width_percent[:: max(len(b.sizes) // 10, 1)],
                    )
                ],
                title=f"Figure 2 — {b.machine} ({b.kernel})",
            )
        )
        print()


def _cmd_table2(args: argparse.Namespace) -> None:
    print(
        ascii_table(
            ["Machine", "Architecture", "cpu MHz", "Main (kB)", "Free (kB)", "Cache (kB)"],
            [
                (s.name, s.arch, int(s.cpu_mhz), s.main_memory_kb, s.free_memory_kb, s.cache_kb)
                for s in TABLE2_SPECS
            ],
            title="Table 2",
        )
    )
    print()
    rows = detect_paging_onsets(table2_network())
    print(
        ascii_table(
            ["Machine", "Paging MM (detected/paper)", "Paging LU (detected/paper)"],
            [
                (r.machine, f"{r.detected_mm:.0f} / {r.published_mm}",
                 f"{r.detected_lu:.0f} / {r.published_lu}")
                for r in rows
            ],
            title="Paging onsets",
        )
    )


def _cmd_table3(args: argparse.Namespace) -> None:
    rows = mm_invariance(base_sizes=(256, 512), steps=4, repeats=args.repeats)
    table = []
    for row in rows:
        for (n1, n2), s in zip(row.shapes, row.speeds):
            table.append((f"{n1}x{n2}", row.elements, round(s)))
    print(ascii_table(["Size of matrix", "Elements", "MFlops"], table, title="Table 3 (this host)"))


def _cmd_table4(args: argparse.Namespace) -> None:
    rows = lu_invariance(base_sizes=(256, 512), steps=4, repeats=args.repeats)
    table = []
    for row in rows:
        for (n1, n2), s in zip(row.shapes, row.speeds):
            table.append((f"{n1}x{n2}", row.elements, round(s)))
    print(ascii_table(["Size of matrix", "Elements", "MFlops"], table, title="Table 4 (this host)"))


def _cmd_fig21(args: argparse.Namespace) -> None:
    models = build_network_models(table2_network(), "matmul")
    points = fig21_sweep(models, repeats=args.repeats)
    print(
        ascii_table(
            ["p", "n", "cost (s)", "steps"],
            [(p.p, p.n, p.seconds, p.iterations) for p in points],
            title="Figure 21 — cost of the partitioning algorithm",
        )
    )


def _cmd_fig22a(args: argparse.Namespace) -> None:
    net = table2_network()
    models = build_network_models(net, "matmul")
    for probe in FIG22A_PROBES:
        pts = mm_speedup_experiment(net, sizes=FIG22A_SIZES, probe=probe, models=models)
        print(
            ascii_table(
                ["n", "functional (s)", "single (s)", "speedup"],
                [
                    (p.n, p.functional_seconds, p.single_seconds, round(p.speedup, 2))
                    for p in pts
                ],
                title=f"Figure 22(a) — MM speedup, single-number probe {probe}x{probe}",
            )
        )
        print()


def _cmd_fig22b(args: argparse.Namespace) -> None:
    net = table2_network()
    models = build_network_models(net, "lu")
    for probe in FIG22B_PROBES:
        pts = lu_speedup_experiment(
            net, sizes=FIG22B_SIZES, probe=probe, block=args.block, models=models
        )
        print(
            ascii_table(
                ["n", "functional (s)", "single (s)", "speedup"],
                [
                    (p.n, p.functional_seconds, p.single_seconds, round(p.speedup, 2))
                    for p in pts
                ],
                title=f"Figure 22(b) — LU speedup, single-number probe {probe}x{probe}",
            )
        )
        print()


def _cmd_report(args: argparse.Namespace) -> None:
    from .experiments.full_report import generate_report

    path = generate_report(args.out, quick=not args.full)
    print(f"report written to {path}")


def _cmd_traces(args: argparse.Namespace) -> None:
    from .experiments import build_network_models
    from .experiments.traces import bisection_trace, optimal_line_demo
    from .kernels import mm_elements

    net = table2_network()
    models = build_network_models(net, "matmul")
    n = mm_elements(20_000)
    demo = optimal_line_demo(n, models)
    print(
        ascii_table(
            ["machine", "allocation", "point slope"],
            [
                (name, int(x), s)
                for name, x, s in zip(
                    net.names, demo.allocation, demo.point_slopes
                )
            ],
            title="Figure 4/6 — the optimal line through the origin",
        )
    )
    print(
        f"\noptimal makespan {demo.optimal_makespan:.6g}s, perturbed "
        f"{demo.perturbed_makespan:.6g}s"
    )
    trace = bisection_trace(n, models)
    print(
        ascii_table(
            ["line", "slope", "total allocation"],
            [("initial upper", *trace.initial_upper), ("initial lower", *trace.initial_lower)]
            + [(f"step {k + 1}", s, t) for k, (s, t) in enumerate(trace.steps)],
            title="Figure 8/18 — bisection trace",
        )
    )


def _build_planner(args: argparse.Namespace):
    """Fleet + planner + query sizes shared by plan/stats/trace."""
    from .experiments import tile_speed_functions
    from .planner import Fleet, Planner

    net = table2_network()
    models = build_network_models(net, args.kernel)
    p = args.p if args.p is not None else len(models)
    sfs = tile_speed_functions(models, p) if p != len(models) else models
    fleet = Fleet(sfs, name=f"table2-{args.kernel}-p{p}")
    planner = Planner(fleet, algorithm=args.algorithm)
    if args.sizes:
        # float() first so scientific notation ("2e8") works on the CLI.
        sizes = [int(float(s)) for s in args.sizes.split(",") if s.strip()]
    else:
        step = max(1, int(fleet.capacity) // 8)
        sizes = [step * k for k in range(1, 7)]
    return fleet, planner, sizes


def _cmd_plan(args: argparse.Namespace) -> None:
    fleet, planner, sizes = _build_planner(args)
    results = planner.plan_many(sizes)
    # Replay the same queries to show the cache at work.
    for n in sizes:
        planner.plan(n)
    print(
        ascii_table(
            ["n", "makespan (s)", "min alloc", "max alloc", "bisection steps"],
            [
                (
                    n,
                    float(r.makespan),
                    int(r.allocation.min()),
                    int(r.allocation.max()),
                    r.iterations,
                )
                for n, r in zip(sizes, results)
            ],
            title=f"Partition plans — {fleet.name} ({args.algorithm})",
        )
    )
    stats = planner.stats()
    print(f"\nfleet fingerprint {fleet.fingerprint}")
    print(f"planner: {stats}")


def _run_stats_workload(args: argparse.Namespace):
    """The instrumented workload behind ``repro stats`` / ``repro trace``.

    A planner batch query, a cache replay and a small simulated LU run —
    enough to populate solver counters, cache hit rates, per-plan latency
    histograms and a nested span tree.
    """
    from .kernels.group_block import variable_group_block
    from .simulate.lu_executor import simulate_lu

    fleet, planner, sizes = _build_planner(args)
    with obs.span("repro.workload", kernel=args.kernel, p=fleet.p):
        for n in sizes:  # individual solves: per-plan latency spans
            planner.plan(n)
        planner.plan_many(sizes)  # replay: all served from the plan cache
        offset = max(1, min(sizes) // 2)
        planner.plan_many([n + offset for n in sizes])  # lockstep batch sweep
        net = table2_network()
        lu_models = build_network_models(net, "lu")
        dist = variable_group_block(args.trace_n, args.block, lu_models)
        sim = simulate_lu(dist, lu_models)
    return planner, sim


def _http_json(addr: str, path: str) -> dict:
    """GET a JSON document from a running server's HTTP listener."""
    import json as _json
    import urllib.error
    import urllib.request

    url = f"http://{addr}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return _json.load(resp)
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            raise CommandError(f"{url}: {exc.read().decode('utf-8', 'replace')}")
        raise CommandError(f"{url}: HTTP {exc.code}")
    except (urllib.error.URLError, OSError) as exc:
        raise CommandError(f"cannot reach {url}: {exc}")


def _watch_loop(render: Callable[[], None], interval: float | None) -> None:
    """Run ``render`` once, or forever every ``interval`` seconds."""
    import time as _time

    if not interval:
        render()
        return
    try:
        while True:
            print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
            render()
            print(f"\n(refreshing every {interval:g}s — Ctrl-C to stop)")
            _time.sleep(interval)
    except KeyboardInterrupt:
        pass


def _render_serve_stats(args: argparse.Namespace) -> None:
    doc = _http_json(args.serve_addr, "/stats")
    if args.format == "json":
        import json as _json

        print(_json.dumps(doc, indent=2, sort_keys=True))
        return
    if "cluster" in doc:
        # The address points at a cluster router: render the aggregated
        # membership + per-node view instead of single-server counters.
        _render_cluster_stats(doc)
        return
    trace = doc.get("trace") or {}
    rows = [
        ("serve.requests", "", doc.get("requests", 0)),
        ("serve.responses", "status=ok", doc.get("responses_ok", 0)),
        ("serve.responses", "status=error", doc.get("responses_error", 0)),
        ("serve.shed", "", doc.get("shed", 0)),
        ("serve.batches", "", doc.get("batches", 0)),
        ("serve.trace.recorded", "", trace.get("recorded", 0)),
        ("serve.trace.retained", "", trace.get("retained", 0)),
        ("serve.trace.evicted", "", trace.get("evicted", 0)),
        ("serve.trace.sampled", "", trace.get("sampled", 0)),
    ]
    refit = doc.get("refit") or {}
    counters = refit.get("counters") or {}
    rows.extend(
        (f"model.refit.{name}", "", counters.get(name, 0)) for name in sorted(counters)
    )
    rows.append(
        ("planner.cache.invalidations", "refit", refit.get("invalidated", 0))
    )
    tenancy = doc.get("tenancy") or {}
    idem = tenancy.get("idempotency") or {}
    warm = tenancy.get("warm_tier") or {}
    rows.extend(
        (f"serve.idempotent.{name}", "", idem.get(name, 0))
        for name in ("hits", "coalesced", "misses", "evictions")
    )
    rows.append(("serve.warm_tier.entries",
                 "enabled" if warm.get("enabled") else "disabled",
                 warm.get("entries", 0)))
    print(ascii_table(["metric", "labels", "value"], rows, title="Serve counters"))
    tenants = tenancy.get("tenants") or {}
    if tenants:
        backlogs = tenancy.get("backlogs") or {}
        print()
        print(
            ascii_table(
                ["tenant", "requests", "throttled", "shed", "backlog"],
                [
                    (name, t.get("requests", 0), t.get("throttled", 0),
                     t.get("shed", 0), backlogs.get(name, 0))
                    for name, t in sorted(tenants.items())
                ],
                title="Tenants"
                + (" (quotas on)" if tenancy.get("enabled") else ""),
            )
        )
    recorder_rows = [
        (k, trace.get(k, 0))
        for k in ("ring_size", "error_store_size", "slow_store_size", "capacity")
    ]
    print()
    print(ascii_table(["flight recorder", "value"], recorder_rows))
    fleets = doc.get("fleets") or {}
    if fleets:
        per_fleet = refit.get("fleets") or {}
        print()
        print(
            ascii_table(
                ["fleet", "name", "p", "shard", "refits"],
                [
                    (fp[:16], info.get("name", ""), info.get("p", ""),
                     info.get("shard", ""),
                     per_fleet.get(fp, {}).get("refits", 0))
                    for fp, info in sorted(fleets.items())
                ],
                title="Registered fleets",
            )
        )


def _render_cluster_stats(doc: dict) -> None:
    """`repro stats --serve` against a router: the whole cluster at once."""
    router = doc.get("router") or {}
    rows = [
        ("cluster.requests", "", router.get("requests", 0)),
        ("cluster.route", "path=primary", router.get("routed_primary", 0)),
        ("cluster.route", "path=fallback", router.get("routed_fallback", 0)),
        ("cluster.route", "path=unavailable", router.get("unavailable", 0)),
        ("cluster.shed", "", router.get("shed", 0)),
        ("cluster.reshards", "", router.get("reshards", 0)),
        ("cluster.trace.recorded", "", (router.get("trace") or {}).get("recorded", 0)),
    ]
    print(ascii_table(["metric", "labels", "value"], rows, title="Router counters"))
    breakers = router.get("breakers") or {}
    nodes = doc.get("nodes") or {}
    node_rows = []
    for node_id in sorted(nodes):
        nd = nodes[node_id]
        if nd.get("ok"):
            node_rows.append(
                (node_id, breakers.get(node_id, "?"), nd.get("requests", 0),
                 nd.get("responses_ok", 0), nd.get("responses_error", 0),
                 nd.get("shed", 0), len(nd.get("fleets") or {}),
                 (nd.get("trace") or {}).get("recorded", 0))
            )
        else:
            node_rows.append(
                (node_id, breakers.get(node_id, "?"),
                 f"unreachable: {nd.get('error')}", "", "", "", "", "")
            )
    print()
    print(
        ascii_table(
            ["node", "breaker", "requests", "ok", "error", "shed", "fleets",
             "traces"],
            node_rows,
            title="Member nodes",
        )
    )
    cluster = doc.get("cluster") or {}
    fleets = cluster.get("fleets") or {}
    if fleets:
        print()
        print(
            ascii_table(
                ["fleet", "name", "replicas"],
                [
                    (fp[:16], info.get("name", ""),
                     " ".join(info.get("nodes") or []))
                    for fp, info in sorted(fleets.items())
                ],
                title="Fleet placement",
            )
        )


def _cmd_stats(args: argparse.Namespace) -> None:
    if args.serve_addr:
        _watch_loop(lambda: _render_serve_stats(args), args.watch)
        return
    if args.watch:
        _watch_loop(lambda: _cmd_stats_once(args), args.watch)
        return
    _cmd_stats_once(args)


def _cmd_stats_once(args: argparse.Namespace) -> None:
    obs.clear_all()
    obs.enable()
    try:
        planner, _sim = _run_stats_workload(args)
    finally:
        obs.disable()
    if args.format == "json":
        print(obs.to_json())
    elif args.format == "prom":
        print(obs.to_prometheus(), end="")
    else:
        registry = obs.get_registry()
        scalars = [
            (m.name, " ".join(f"{k}={v}" for k, v in m.labels), m.value)
            for m in registry.metrics()
            if m.kind in ("counter", "gauge")
        ]
        print(ascii_table(["metric", "labels", "value"], scalars, title="Counters"))
        print()
        hists = [
            (
                m.name,
                " ".join(f"{k}={v}" for k, v in m.labels),
                m.count,
                f"{m.mean:.3g}",
                f"{m.quantile(0.5):.3g}",
                f"{m.quantile(0.9):.3g}",
            )
            for m in registry.metrics()
            if m.kind == "histogram" and m.count
        ]
        print(
            ascii_table(
                ["histogram", "labels", "count", "mean", "~p50", "~p90"],
                hists,
                title="Histograms (bucketed)",
            )
        )
        print(f"\nplanner: {planner.stats()}")
    if args.metrics_out:
        obs.write_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")


def _member_http_addrs(stats_doc: dict) -> dict[str, str]:
    """``node_id -> host:http_port`` for a router's reachable members."""
    out: dict[str, str] = {}
    for info in (stats_doc.get("cluster") or {}).get("nodes") or []:
        if info.get("http_port"):
            out[info["node_id"]] = f"{info['host']}:{info['http_port']}"
    return out


def _graft_cluster_trace(router_doc: dict, node_docs: dict[str, dict]) -> dict:
    """Stitch member-node span trees into the router's tree by parent id.

    The router forwards each attempt with a child trace context, so a
    node's root span carries ``parent_id == <attempt span id>``; grafting
    is an index lookup, no heuristics.
    """
    spans = router_doc.get("spans")
    if not spans:
        return router_doc
    by_id: dict[str, dict] = {}
    stack = [spans]
    while stack:
        node = stack.pop()
        if node.get("span_id"):
            by_id[node["span_id"]] = node
        stack.extend(node.get("children", []))
    for node_id, doc in node_docs.items():
        sub = doc.get("spans")
        if not sub:
            continue
        sub.setdefault("attrs", {})["node"] = node_id
        parent = by_id.get(sub.get("parent_id", ""))
        if parent is not None:
            parent.setdefault("children", []).append(sub)
        else:  # orphaned subtree: keep it visible under the root
            spans.setdefault("children", []).append(sub)
    return router_doc


def _render_cluster_traces(args: argparse.Namespace, stats_doc: dict) -> None:
    """`repro trace --serve` against a router: the merged flight view."""
    members = _member_http_addrs(stats_doc)
    if args.trace_id:
        router_doc = _http_json(args.serve_addr, f"/debug/traces?id={args.trace_id}")
        node_docs: dict[str, dict] = {}
        for node_id, addr in members.items():
            try:
                node_docs[node_id] = _http_json(
                    addr, f"/debug/traces?id={args.trace_id}"
                )
            except CommandError:
                continue  # this member never saw the trace (or is down)
        doc = _graft_cluster_trace(router_doc, node_docs)
        print(
            f"trace {doc['trace_id']}  op={doc['op']} status={doc['status']} "
            f"n={doc.get('n')} {doc['seconds'] * 1e3:.3f}ms "
            f"(router + {len(node_docs)} node subtree(s))"
        )
        spans = doc.get("spans")
        if spans:
            print(obs.render_spans([obs.Span.from_dict(spans)], max_children=16))
        return
    query = f"/debug/traces?limit={args.limit}"
    if args.errors_only:
        query += "&errors=1"
    if args.slow_only:
        query += "&slow=1"
    rows = []
    sources = {"router": args.serve_addr, **members}
    reachable = 0
    for label, addr in sources.items():
        try:
            doc = _http_json(addr, query)
        except CommandError:
            rows.append((label, "-", "-", "unreachable", "", ""))
            continue
        reachable += 1
        for t in doc.get("traces", []):
            rows.append(
                (label, t["trace_id"], t["op"], t["status"], t.get("n", ""),
                 f"{t['seconds'] * 1e3:.3f}", t.get("started", 0.0))
            )
    rows.sort(key=lambda r: r[-1] if len(r) == 7 else 0.0, reverse=True)
    print(
        ascii_table(
            ["node", "trace_id", "op", "status", "n", "ms"],
            [r[:6] for r in rows[: args.limit]],
            title=f"Flight recorder — cluster view ({reachable} listeners)",
        )
    )
    print("use --trace-id <id> for one stitched span tree across the cluster")


def _render_serve_traces(args: argparse.Namespace) -> None:
    """Flight-recorder traces from a live server, rendered for humans."""
    stats_doc = _http_json(args.serve_addr, "/stats")
    if "cluster" in stats_doc:
        _render_cluster_traces(args, stats_doc)
        return
    if args.trace_id:
        doc = _http_json(args.serve_addr, f"/debug/traces?id={args.trace_id}")
        print(
            f"trace {doc['trace_id']}  op={doc['op']} status={doc['status']} "
            f"n={doc.get('n')} {doc['seconds'] * 1e3:.3f}ms"
        )
        spans = doc.get("spans")
        if spans:
            print(obs.render_spans([obs.Span.from_dict(spans)], max_children=16))
        return
    query = f"/debug/traces?limit={args.limit}"
    if args.errors_only:
        query += "&errors=1"
    if args.slow_only:
        query += "&slow=1"
    doc = _http_json(args.serve_addr, query)
    rows = [
        (
            t["trace_id"],
            t["op"],
            t["status"],
            t.get("n", ""),
            f"{t['seconds'] * 1e3:.3f}",
        )
        for t in doc.get("traces", [])
    ]
    print(
        ascii_table(
            ["trace_id", "op", "status", "n", "ms"],
            rows,
            title="Flight recorder — retained traces",
        )
    )
    st = doc.get("stats") or {}
    print(
        f"\nrecorded={st.get('recorded', 0)} retained={st.get('retained', 0)} "
        f"evicted={st.get('evicted', 0)} sampled={st.get('sampled', 0)} "
        f"(ring {st.get('ring_size', 0)}/{st.get('capacity', 0)})"
    )
    print("use --trace-id <id> for one full span tree")


def _cmd_trace(args: argparse.Namespace) -> None:
    if args.serve_addr:
        _watch_loop(lambda: _render_serve_traces(args), args.watch)
        return
    obs.clear_all()
    obs.enable()
    try:
        _planner, sim = _run_stats_workload(args)
    finally:
        obs.disable()
    print(obs.render_spans(max_children=12))
    recorded = sum(
        1
        for root in obs.get_tracer().roots()
        for s in root.walk()
        if s.name == "simulate.lu.step"
    )
    print(
        f"\nsimulated LU: {recorded} step spans, "
        f"{len(sim.trace)} SimulationTrace records, "
        f"modelled total {sim.total_seconds:.6g}s"
    )


def _serve_config(args: argparse.Namespace):
    """A :class:`~repro.serve.ServeConfig` from the CLI flags."""
    from .serve import ServeConfig

    return ServeConfig(
        shards=args.shards,
        worker_mode=args.workers,
        batch_window=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        queue_depth=args.queue_depth,
        host=args.host,
        port=args.port,
        http_port=None if args.http_port < 0 else args.http_port,
    )


def _cmd_serve(args: argparse.Namespace) -> None:
    """Boot the planning service, pre-register the testbed fleet, serve.

    ``--once`` answers a single self-issued query and exits (a built-in
    sanity check, also used by the CLI tests); without it the server
    runs until interrupted and drains in-flight requests on Ctrl-C.
    """
    import time as _time

    from .experiments import tile_speed_functions
    from .serve import ServeClient, start_in_thread

    net = table2_network()
    models = build_network_models(net, args.kernel)
    p = args.p if args.p is not None else len(models)
    sfs = tile_speed_functions(models, p) if p != len(models) else models
    handle = start_in_thread(_serve_config(args))
    try:
        with ServeClient(handle.host, handle.port) as client:
            info = client.register_fleet(
                sfs, name=f"table2-{args.kernel}-p{p}", algorithm=args.algorithm
            )
            http = "disabled" if handle.http_port is None else handle.http_port
            print(f"serving on {handle.host}:{handle.port} (http {http})")
            print(
                f"fleet {info['name']} registered: fingerprint "
                f"{info['fingerprint']} (p={info['p']}, shard {info['shard']})"
            )
            if args.once:
                n = max(1, int(info["capacity"]) // 2)
                result = client.plan(info["fingerprint"], n, allocation=False)
                print(
                    f"self-check plan n={n}: makespan {result['makespan']:.6g}s "
                    f"in {result['iterations']} iterations"
                )
                print("draining")
                return
            print("press Ctrl-C to drain and stop")
            while True:  # pragma: no cover - interactive loop
                _time.sleep(1.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive loop
        print("draining")
    finally:
        handle.stop()


def _parse_hostport(value: str, flag: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise CommandError(f"{flag} must look like HOST:PORT, got {value!r}")
    return host, int(port)


def _cmd_cluster(args: argparse.Namespace) -> None:
    """Operate a multi-node planning cluster (see ``docs/cluster.md``).

    ``repro cluster up`` boots a router plus ``--nodes`` planner node
    processes and serves until interrupted (``--once`` self-checks one
    routed plan and exits).  ``status`` / ``join`` / ``leave`` are admin
    calls against a running router named by ``--router HOST:PORT`` —
    they ride the same NDJSON protocol as the data path.
    """
    action = args.action or "status"
    if action not in ("status", "join", "leave", "up"):
        raise CommandError(
            f"unknown cluster action {action!r}; pick status, join, leave or up"
        )
    if action == "up":
        _cluster_up(args)
        return
    if not args.router:
        raise CommandError(f"cluster {action} needs --router HOST:PORT")
    from .serve import ServeClient

    host, port = _parse_hostport(args.router, "--router")
    with ServeClient(host, port) as client:
        if action == "status":
            resp = client.call("cluster_status")
        elif action == "join":
            if not args.node_addr:
                raise CommandError("cluster join needs --node-addr HOST:PORT")
            node_host, node_port = _parse_hostport(args.node_addr, "--node-addr")
            fields: dict = {"host": node_host, "port": node_port}
            if args.node_http is not None:
                fields["http_port"] = args.node_http
            resp = client.call("cluster_join", **fields)
        else:
            if not args.node_id:
                raise CommandError("cluster leave needs --node-id HOST:PORT")
            resp = client.call("cluster_leave", node=args.node_id)
    if not resp.get("ok"):
        err = resp.get("error") or {}
        raise CommandError(
            f"cluster {action}: {err.get('code')}: {err.get('message')}"
        )
    result = resp["result"]
    if action == "status":
        _print_cluster_status(result)
    elif action == "join":
        node = result.get("node") or {}
        note = " (already a member)" if result.get("already_member") else ""
        print(
            f"joined {node.get('node_id')}{note}: {result.get('fleets_moved', 0)} "
            f"fleet(s) remapped, {result.get('registered', 0)} registration(s) sent"
        )
    else:
        drained = "drained" if result.get("drained") else "NOT fully drained"
        print(
            f"left {result.get('node_id')}: {result.get('fleets_moved', 0)} "
            f"fleet(s) remapped, {result.get('registered', 0)} "
            f"registration(s) sent, in-flight work {drained}"
        )


def _print_cluster_status(doc: dict) -> None:
    router = doc.get("router") or {}
    breakers = {
        node_id: info.get("breaker", "?")
        for node_id, info in (router.get("nodes") or {}).items()
    }
    print(
        ascii_table(
            ["node", "host", "port", "http", "breaker"],
            [
                (
                    n["node_id"], n["host"], n["port"], n.get("http_port") or "-",
                    breakers.get(n["node_id"], "?"),
                )
                for n in doc.get("nodes", [])
            ],
            title=f"Cluster members (replication {doc.get('replication')})",
        )
    )
    fleets = doc.get("fleets") or {}
    if fleets:
        print()
        print(
            ascii_table(
                ["fleet", "name", "replicas"],
                [
                    (fp[:16], info.get("name", ""), " ".join(info.get("nodes", [])))
                    for fp, info in sorted(fleets.items())
                ],
                title="Fleet placement",
            )
        )


def _cluster_up(args: argparse.Namespace) -> None:
    import time as _time

    from .cluster import RouterConfig, start_process_node, start_router_in_thread
    from .experiments import tile_speed_functions
    from .serve import ServeClient

    models = build_network_models(table2_network(), args.kernel)
    p = args.p if args.p is not None else len(models)
    sfs = tile_speed_functions(models, p) if p != len(models) else models

    members = [start_process_node(f"n{i}") for i in range(args.nodes)]
    router = start_router_in_thread(
        RouterConfig(
            host=args.host,
            port=args.port,
            http_port=None if args.http_port < 0 else args.http_port,
            replication=args.replication,
        ),
        [m.info for m in members],
    )
    try:
        http = "disabled" if router.http_port is None else router.http_port
        print(
            f"cluster router on {router.host}:{router.port} (http {http}) over "
            f"{args.nodes} node(s): " + ", ".join(m.node_id for m in members)
        )
        with ServeClient(router.host, router.port) as client:
            info = client.register_fleet(
                sfs, name=f"table2-{args.kernel}-p{p}", algorithm=args.algorithm
            )
            print(
                f"fleet {info['name']} registered: fingerprint "
                f"{info['fingerprint']} on {' '.join(info['registered'])}"
            )
            if args.once:
                n = max(1, int(info["capacity"]) // 2)
                result = client.plan(info["fingerprint"], n, allocation=False)
                print(
                    f"self-check plan n={n}: makespan {result['makespan']:.6g}s "
                    f"in {result['iterations']} iterations"
                )
                print("draining")
                return
            print("press Ctrl-C to drain and stop")
            while True:  # pragma: no cover - interactive loop
                _time.sleep(1.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive loop
        print("draining")
    finally:
        router.stop()
        for m in members:
            try:
                m.stop()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass


def _cmd_verify(args: argparse.Namespace) -> None:
    """Run the :mod:`repro.verify` harness (see ``docs/testing.md``).

    Four sweeps — differential conformance, protocol fuzzing, adapt
    chaos, and (opt-in via ``--cluster-runs``) kill-a-node cluster chaos
    — all seeded, all replayable.  The ``--only-*`` flags replay a
    single case/frame/run and skip the other sweeps; any confirmed bug
    makes the command exit non-zero after printing one replay line per
    failure.
    """
    from .verify import fuzz_adapt, fuzz_protocol, run_differential

    replaying = (
        args.only_case is not None
        or args.only_frame is not None
        or args.only_run is not None
    )
    failures = 0

    if args.only_case is not None or not replaying:
        report = run_differential(
            cases=args.cases, seed=args.seed, only_case=args.only_case,
            log=print,
        )
        print(report.summary())
        failures += len(report.bugs)

    if args.only_frame is not None or not replaying:
        frames = args.fuzz_frames if args.only_frame is None else 1
        if frames > 0:
            report = fuzz_protocol(
                frames=args.fuzz_frames, seed=args.seed,
                only_frame=args.only_frame, log=print,
            )
            print(report.summary())
            failures += len(report.failures)

    if args.only_run is not None or not replaying:
        runs = args.chaos_runs if args.only_run is None else 1
        if runs > 0:
            report = fuzz_adapt(
                runs=args.chaos_runs, seed=args.seed,
                only_run=args.only_run, log=print,
            )
            print(report.summary())
            failures += len(report.failures)

    if args.cluster_runs > 0 and not replaying:
        from .verify import run_cluster_chaos

        report = run_cluster_chaos(runs=args.cluster_runs, seed=args.seed)
        print(report.summary())
        for failure in report.failures:
            print(f"  {failure.summary()}")
        failures += len(report.failures)

    if failures:
        raise CommandError(f"verification found {failures} failure(s)")
    print("verify: all sweeps clean")


class CommandError(RuntimeError):
    """A command-level failure: report it and exit non-zero, no traceback."""


_COMMANDS: dict[str, Callable[[argparse.Namespace], None]] = {
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "fig21": _cmd_fig21,
    "fig22a": _cmd_fig22a,
    "fig22b": _cmd_fig22b,
    "traces": _cmd_traces,
    "report": _cmd_report,
    "plan": _cmd_plan,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "verify": _cmd_verify,
}

#: Telemetry/serving tooling, not paper artefacts: excluded from ``repro all``.
_TELEMETRY_COMMANDS = frozenset({"stats", "trace", "serve", "cluster", "verify"})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of Lastovetsky & Reddy, "
            "'Data Partitioning with a Realistic Performance Model of "
            "Networks of Heterogeneous Computers' (IPPS 2004)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "action", nargs="?", default=None,
        choices=["status", "join", "leave", "up"],
        help="subaction for `repro cluster` (default: status)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="benchmark repeats where applicable"
    )
    parser.add_argument(
        "--block", type=int, default=64, help="LU column block width (fig22b)"
    )
    parser.add_argument(
        "--out", default="report.md", help="output file for `repro report`"
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the full figure-22 sweeps in `repro report`",
    )
    parser.add_argument(
        "--sizes", default="",
        help="comma-separated problem sizes for `repro plan` "
        "(default: six sizes spread over the fleet capacity)",
    )
    parser.add_argument(
        "--p", type=int, default=None,
        help="fleet size for `repro plan` (tiles the testbed models; "
        "default: the testbed itself)",
    )
    parser.add_argument(
        "--kernel", default="matmul", choices=["matmul", "lu"],
        help="speed-function kernel for `repro plan`",
    )
    parser.add_argument(
        "--algorithm", default="bisection",
        choices=["bisection", "combined", "modified"],
        help="partitioning algorithm for `repro plan`",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="structured logging: -v for INFO, -vv for DEBUG",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error"],
        help="explicit log level (overrides -v)",
    )
    parser.add_argument(
        "--format", default="table", choices=["table", "json", "prom"],
        help="output format for `repro stats`",
    )
    parser.add_argument(
        "--metrics-out", default="",
        help="also write the JSON metrics snapshot here (`repro stats`)",
    )
    parser.add_argument(
        "--trace-n", type=int, default=1024,
        help="matrix dimension of the simulated LU in `repro stats/trace`",
    )
    parser.add_argument(
        "--serve", dest="serve_addr", default=None, metavar="HOST:HTTP_PORT",
        help="read `repro stats` / `repro trace` from a running server's "
        "HTTP listener instead of running a local workload",
    )
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="refresh `repro stats` / `repro trace` output periodically",
    )
    parser.add_argument(
        "--trace-id", default=None,
        help="show one retained trace's full span tree (`repro trace --serve`)",
    )
    parser.add_argument(
        "--limit", type=int, default=20,
        help="traces to list in `repro trace --serve`",
    )
    parser.add_argument(
        "--errors-only", action="store_true",
        help="list only error/shed/deadline traces (`repro trace --serve`)",
    )
    parser.add_argument(
        "--slow-only", action="store_true",
        help="list only the top-K slowest traces (`repro trace --serve`)",
    )
    serve = parser.add_argument_group("serve", "options for `repro serve`")
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address for `repro serve`"
    )
    serve.add_argument(
        "--port", type=int, default=7077,
        help="TCP port for the NDJSON protocol (0 = ephemeral)",
    )
    serve.add_argument(
        "--http-port", type=int, default=0,
        help="HTTP port for /metrics, /health, /stats "
        "(0 = ephemeral, negative disables HTTP)",
    )
    serve.add_argument(
        "--shards", type=int, default=2, help="number of planner worker shards"
    )
    serve.add_argument(
        "--workers", default="thread", choices=["thread", "process"],
        help="shard worker mode",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="micro-batching window in milliseconds",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a micro-batch early once it reaches this many requests",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=128,
        help="per-shard admission queue depth (beyond this, requests "
        "are shed with an `overloaded` response)",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="answer one self-issued plan request, then drain and exit",
    )
    cluster = parser.add_argument_group("cluster", "options for `repro cluster`")
    cluster.add_argument(
        "--router", default=None, metavar="HOST:PORT",
        help="router address for `repro cluster status/join/leave`",
    )
    cluster.add_argument(
        "--node-addr", default=None, metavar="HOST:PORT",
        help="planner-node TCP address for `repro cluster join`",
    )
    cluster.add_argument(
        "--node-http", type=int, default=None, metavar="PORT",
        help="the joining node's HTTP port (enables aggregated tracing)",
    )
    cluster.add_argument(
        "--node-id", default=None, metavar="HOST:PORT",
        help="member node id for `repro cluster leave`",
    )
    cluster.add_argument(
        "--nodes", type=int, default=3,
        help="planner node processes for `repro cluster up`",
    )
    cluster.add_argument(
        "--replication", type=int, default=2,
        help="replica-set size per fleet for `repro cluster up`",
    )
    verify = parser.add_argument_group("verify", "options for `repro verify`")
    verify.add_argument(
        "--cases", type=int, default=200,
        help="differential conformance cases to generate",
    )
    verify.add_argument(
        "--seed", type=int, default=0,
        help="root seed; every case is a pure function of (seed, index)",
    )
    verify.add_argument(
        "--fuzz-frames", type=int, default=500,
        help="mutated protocol frames to throw at a live server "
        "(0 skips the protocol fuzzer)",
    )
    verify.add_argument(
        "--chaos-runs", type=int, default=6,
        help="randomized fault-script runs of the adaptive simulator "
        "(0 skips the chaos sweep)",
    )
    verify.add_argument(
        "--cluster-runs", type=int, default=0,
        help="kill-a-node cluster chaos runs — router + node processes, "
        "SIGKILL mid-load (0 skips; `make verify-smoke` runs one)",
    )
    verify.add_argument(
        "--only-case", type=int, default=None, metavar="K",
        help="replay one differential case and skip the other sweeps",
    )
    verify.add_argument(
        "--only-frame", type=int, default=None, metavar="K",
        help="replay one fuzzed protocol frame and skip the other sweeps",
    )
    verify.add_argument(
        "--only-run", type=int, default=None, metavar="K",
        help="replay one chaos run and skip the other sweeps",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        obs.configure_logging(args.log_level)
    elif args.verbose:
        obs.configure_logging(obs.verbosity_to_level(args.verbose))
    try:
        if args.experiment == "all":
            for name in sorted(_COMMANDS):
                if name in _TELEMETRY_COMMANDS:
                    continue
                print(f"\n===== {name} =====")
                _COMMANDS[name](args)
        else:
            _COMMANDS[args.experiment](args)
    except CommandError as exc:
        print(f"repro {args.experiment}: {exc}", file=sys.stderr)
        return 1
    except (ReproError, ValueError) as exc:
        # Bad flag values (unparseable --sizes, infeasible configs, ...)
        # should read like argparse errors, not tracebacks.
        print(f"repro {args.experiment}: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

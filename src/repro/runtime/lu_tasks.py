"""Stateful worker tasks for the real parallel LU factorisation.

Each emulated machine is one pinned worker process (a single-worker pool),
so module-level globals inside the worker persist across submissions —
that is where the worker keeps *its own column blocks* between elimination
steps, exactly like a process in the paper's parallel LU owns its columns
for the whole factorisation.

Protocol per block step ``k`` (right-looking, no pivoting — the parallel
example uses diagonally dominant matrices, as the paper's timing runs
effectively do):

1. the owner of block ``k`` calls :func:`lu_factor_panel` — it factorises
   its local panel and returns the ``L`` panel below the diagonal plus the
   pivot block;
2. every worker (including the owner) calls :func:`lu_apply_update` with
   that panel — it solves the triangular block row for its own columns and
   applies the rank-``b`` update.

Work inflation multiplies the update arithmetic, emulating slower
machines.
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "lu_worker_init",
    "lu_factor_panel",
    "lu_apply_update",
    "lu_collect_columns",
]

#: Worker-local state: the columns this worker owns, keyed by session id.
_STATE: dict[str, dict] = {}


def lu_worker_init(
    session: str,
    columns: np.ndarray,
    global_cols: np.ndarray,
    n: int,
    b: int,
    repetitions: int,
) -> int:
    """Install this worker's column block matrix.

    ``columns`` is the ``n x (owned columns)`` slab; ``global_cols`` maps
    local column index to global column index.  Returns the number of
    owned columns (handshake).
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    _STATE[session] = {
        "cols": np.array(columns, dtype=float, order="F"),
        "global": np.asarray(global_cols, dtype=np.int64),
        "n": int(n),
        "b": int(b),
        "reps": int(repetitions),
    }
    return int(columns.shape[1])


def _local_block(state: dict, k: int) -> np.ndarray:
    """Local column indices of global block ``k`` (may be empty)."""
    b = state["b"]
    lo, hi = k * b, min((k + 1) * b, state["n"])
    g = state["global"]
    return np.nonzero((g >= lo) & (g < hi))[0]


def lu_factor_panel(session: str, k: int) -> tuple[np.ndarray, float]:
    """Factorise global panel ``k`` held by this worker.

    Returns the factored panel rows ``k*b..n`` (unit-lower L below the
    diagonal block, U on/above within the block) and the elapsed seconds.
    """
    state = _STATE[session]
    cols = _local_block(state, k)
    if cols.size == 0:
        raise ConfigurationError(f"worker does not own block {k}")
    b = state["b"]
    n = state["n"]
    row0 = k * b
    t0 = time.perf_counter()
    panel = state["cols"][row0:, cols]
    width = panel.shape[1]
    for _ in range(state["reps"]):
        work = np.array(panel, order="F")
        for j in range(width):
            if work[j, j] == 0.0:
                raise ConfigurationError(
                    "zero pivot: the parallel LU example requires a "
                    "diagonally dominant matrix"
                )
            work[j + 1 :, j] /= work[j, j]
            if j + 1 < width:
                work[j + 1 :, j + 1 :] -= np.outer(
                    work[j + 1 :, j], work[j, j + 1 :]
                )
    state["cols"][row0:, cols] = work
    return work, time.perf_counter() - t0


def lu_apply_update(session: str, k: int, panel: np.ndarray) -> float:
    """Apply step ``k``'s panel to this worker's trailing columns.

    Solves ``L11 @ U12 = A12`` for the owned columns right of block ``k``
    and applies ``A22 -= L21 @ U12``.  Returns elapsed seconds (inflated).
    """
    state = _STATE[session]
    b = state["b"]
    n = state["n"]
    row0 = k * b
    width = panel.shape[1]
    mine = np.nonzero(state["global"] >= row0 + width)[0]
    # Skip columns belonging to earlier blocks (already final).
    if mine.size == 0:
        return 0.0
    t0 = time.perf_counter()
    l11 = np.tril(panel[:width, :], -1) + np.eye(width)
    l21 = panel[width:, :]
    for _ in range(state["reps"]):
        a12 = np.array(state["cols"][row0 : row0 + width, mine])
        # Forward substitution with unit-lower L11.
        for r in range(1, width):
            a12[r, :] -= l11[r, :r] @ a12[:r, :]
        a22 = state["cols"][row0 + width :, mine] - l21 @ a12
    state["cols"][row0 : row0 + width, mine] = a12
    state["cols"][row0 + width :, mine] = a22
    return time.perf_counter() - t0


def lu_collect_columns(session: str) -> tuple[np.ndarray, np.ndarray]:
    """Return (global column indices, factored columns) and drop state."""
    state = _STATE.pop(session)
    return state["global"], state["cols"]

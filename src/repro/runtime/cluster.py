"""An emulated heterogeneous cluster of real worker processes.

:class:`EmulatedCluster` turns this machine into a miniature "network of
heterogeneous computers": each emulated machine is one pinned worker
process (its own single-worker :class:`~concurrent.futures.
ProcessPoolExecutor`, so tasks cannot migrate) with a *work-inflation
factor* making it behave ``r`` times slower than the host.

The cluster supports the whole paper workflow on real execution:

* :meth:`benchmark` — measure each machine's speed at a set of sizes
  (runs the real MM kernel inside the worker, inflation included);
* :meth:`build_models` — feed those measurements through the section-3.1
  builder to get per-machine piecewise speed functions;
* :meth:`run_striped_matmul` — execute ``C = A @ B.T`` with an arbitrary
  row distribution, in parallel, returning the assembled result and the
  per-machine wall times.

Use as a context manager to guarantee worker shutdown::

    with EmulatedCluster([1, 2, 4]) as cluster:
        models = cluster.build_models(a_dim=48, b_dim=256)
        ...
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

import numpy as np

from ..core.speed_function import PiecewiseLinearSpeedFunction
from ..exceptions import ConfigurationError
from ..kernels.striped import row_slices
from ..model.builder import BuiltModel, build_piecewise_model
from .tasks import benchmark_task, mm_stripe_task

__all__ = ["EmulatedCluster", "StripedRunResult"]


class StripedRunResult:
    """Outcome of one parallel striped run.

    Attributes
    ----------
    result:
        The assembled output matrix.
    worker_seconds:
        Wall time each machine spent computing its stripe (0 for empty
        stripes).
    """

    def __init__(self, result: np.ndarray, worker_seconds: np.ndarray):
        self.result = result
        self.worker_seconds = worker_seconds

    @property
    def makespan(self) -> float:
        """Slowest machine's compute time."""
        return float(self.worker_seconds.max()) if self.worker_seconds.size else 0.0

    @property
    def imbalance(self) -> float:
        """Makespan over mean busy time — 1.0 is a perfect balance."""
        busy = self.worker_seconds[self.worker_seconds > 0]
        if busy.size == 0:
            return 1.0
        return float(busy.max() / busy.mean())


class EmulatedCluster:
    """A set of pinned worker processes with per-worker slowdown factors."""

    def __init__(self, repetitions: Sequence[int]):
        if len(repetitions) == 0:
            raise ConfigurationError("at least one machine is required")
        reps = [int(r) for r in repetitions]
        if any(r < 1 for r in reps):
            raise ConfigurationError("repetition factors must be >= 1")
        self._reps = reps
        self._pools: list[ProcessPoolExecutor] | None = [
            ProcessPoolExecutor(max_workers=1) for _ in reps
        ]

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "EmulatedCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Terminate all worker processes (idempotent)."""
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True, cancel_futures=True)
            self._pools = None

    def _require_pools(self) -> list[ProcessPoolExecutor]:
        if self._pools is None:
            raise ConfigurationError("cluster has been shut down")
        return self._pools

    # -- introspection -------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of emulated machines."""
        return len(self._reps)

    @property
    def repetitions(self) -> tuple[int, ...]:
        """Per-machine work-inflation factors."""
        return tuple(self._reps)

    # -- benchmarking / model building ----------------------------------------
    def benchmark(self, machine: int, n: int, *, repeats: int = 2) -> float:
        """Measure one machine's square-MM speed (MFlops) at dimension ``n``."""
        pools = self._require_pools()
        if not (0 <= machine < self.size):
            raise ConfigurationError(f"no machine {machine} in a {self.size}-node cluster")
        fut = pools[machine].submit(benchmark_task, n, self._reps[machine], repeats)
        return float(fut.result())

    def build_models(
        self,
        *,
        a_dim: int = 32,
        b_dim: int = 256,
        eps: float = 0.25,
    ) -> list[BuiltModel]:
        """Section-3.1 models of every machine from real in-worker runs.

        ``a_dim``/``b_dim`` bound the benchmarked matrix dimensions; the
        element axis of the resulting functions is the square-matrix
        element count ``n*n``.  Real hosts are noisy, hence the loose
        default acceptance band.
        """
        models = []
        for machine in range(self.size):

            def bench(elements: float, _m=machine) -> float:
                n = max(int(math.sqrt(elements)), 2)
                return self.benchmark(_m, n)

            models.append(
                build_piecewise_model(
                    bench,
                    a=float(a_dim * a_dim),
                    b=float(b_dim * b_dim),
                    eps=eps,
                    spacing="log",
                    pin_zero_at_b=False,
                    min_ratio=2.0,
                )
            )
        return models

    def speed_functions(
        self, models: Sequence[BuiltModel]
    ) -> list[PiecewiseLinearSpeedFunction]:
        """Convenience: unwrap built models to their speed functions."""
        return [m.function for m in models]

    # -- parallel execution -----------------------------------------------------
    def run_striped_matmul(
        self, a: np.ndarray, b: np.ndarray, rows: Sequence[int]
    ) -> StripedRunResult:
        """Execute ``C = A @ B.T`` in parallel with the given row stripes.

        ``rows`` has one stripe height per machine and must sum to
        ``a.shape[0]``.  Every machine computes its stripe concurrently
        (with its inflation factor); the stripes are reassembled in order.
        """
        pools = self._require_pools()
        rows_arr = np.asarray(rows, dtype=np.int64)
        if rows_arr.size != self.size:
            raise ConfigurationError(
                f"got {rows_arr.size} stripes for {self.size} machines"
            )
        if rows_arr.sum() != a.shape[0]:
            raise ConfigurationError(
                f"stripes sum to {rows_arr.sum()}, matrix has {a.shape[0]} rows"
            )
        futures = []
        for machine, sl in enumerate(row_slices(rows_arr)):
            if sl.stop == sl.start:
                futures.append(None)
                continue
            futures.append(
                pools[machine].submit(
                    mm_stripe_task, a[sl, :], b, self._reps[machine]
                )
            )
        stripes: list[np.ndarray] = []
        seconds = np.zeros(self.size, dtype=float)
        for machine, fut in enumerate(futures):
            if fut is None:
                continue
            stripe, elapsed = fut.result()
            stripes.append(stripe)
            seconds[machine] = elapsed
        result = (
            np.vstack(stripes)
            if stripes
            else np.zeros((0, b.shape[0]), dtype=float)
        )
        return StripedRunResult(result, seconds)

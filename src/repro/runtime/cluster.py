"""An emulated heterogeneous cluster of real worker processes.

:class:`EmulatedCluster` turns this machine into a miniature "network of
heterogeneous computers": each emulated machine is one pinned worker
process (its own single-worker :class:`~concurrent.futures.
ProcessPoolExecutor`, so tasks cannot migrate) with a *work-inflation
factor* making it behave ``r`` times slower than the host.

The cluster supports the whole paper workflow on real execution:

* :meth:`benchmark` — measure each machine's speed at a set of sizes
  (runs the real MM kernel inside the worker, inflation included);
* :meth:`build_models` — feed those measurements through the section-3.1
  builder to get per-machine piecewise speed functions;
* :meth:`run_striped_matmul` — execute ``C = A @ B.T`` with an arbitrary
  row distribution, in parallel, returning the assembled result and the
  per-machine wall times.

Use as a context manager to guarantee worker shutdown::

    with EmulatedCluster([1, 2, 4]) as cluster:
        models = cluster.build_models(a_dim=48, b_dim=256)
        ...
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..adapt.faults import FaultInjector, FaultScript
from ..adapt.retry import RetryExhaustedError, RetryPolicy, call_with_retry
from ..core.bounded import partition_bounded
from ..core.speed_function import PiecewiseLinearSpeedFunction, SpeedFunction
from ..exceptions import ConfigurationError, InfeasiblePartitionError
from ..kernels.striped import row_slices
from ..model.builder import BuiltModel, build_piecewise_model
from .tasks import benchmark_task, mm_stripe_task

__all__ = ["EmulatedCluster", "StripedRunResult"]


class StripedRunResult:
    """Outcome of one parallel striped run.

    Attributes
    ----------
    result:
        The assembled output matrix.
    worker_seconds:
        Wall time each machine spent computing its stripe (0 for empty
        stripes).
    """

    def __init__(self, result: np.ndarray, worker_seconds: np.ndarray):
        self.result = result
        self.worker_seconds = worker_seconds

    @property
    def makespan(self) -> float:
        """Slowest machine's compute time."""
        return float(self.worker_seconds.max()) if self.worker_seconds.size else 0.0

    @property
    def imbalance(self) -> float:
        """Makespan over mean busy time — 1.0 is a perfect balance."""
        busy = self.worker_seconds[self.worker_seconds > 0]
        if busy.size == 0:
            return 1.0
        return float(busy.max() / busy.mean())


class EmulatedCluster:
    """A set of pinned worker processes with per-worker slowdown factors.

    Parameters
    ----------
    repetitions:
        Per-machine work-inflation factors (``r`` = ``r`` times slower).
    faults:
        Optional scripted fault scenario (a
        :class:`~repro.adapt.faults.FaultScript` or a live
        :class:`~repro.adapt.faults.FaultInjector`); scripted comm faults
        and dropouts surface as dispatch errors, exercised through the
        retry path.
    retry:
        Optional :class:`~repro.adapt.retry.RetryPolicy` applied to every
        task dispatch (exponential backoff plus a per-attempt timeout on
        the future).  ``None`` keeps the historical behaviour: one
        attempt, wait for ever.
    """

    def __init__(
        self,
        repetitions: Sequence[int],
        *,
        faults: FaultScript | FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ):
        if len(repetitions) == 0:
            raise ConfigurationError("at least one machine is required")
        reps = [int(r) for r in repetitions]
        if any(r < 1 for r in reps):
            raise ConfigurationError("repetition factors must be >= 1")
        self._reps = reps
        if faults is None or isinstance(faults, FaultInjector):
            self._injector = faults
        else:
            self._injector = FaultInjector(faults)
        self._retry = retry
        self._pools: list[ProcessPoolExecutor] | None = [
            ProcessPoolExecutor(max_workers=1) for _ in reps
        ]

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "EmulatedCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Terminate all worker processes (idempotent)."""
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True, cancel_futures=True)
            self._pools = None

    def _require_pools(self) -> list[ProcessPoolExecutor]:
        if self._pools is None:
            raise ConfigurationError("cluster has been shut down")
        return self._pools

    # -- guarded dispatch ----------------------------------------------------
    @property
    def fault_injector(self) -> FaultInjector | None:
        return self._injector

    @property
    def retry_policy(self) -> RetryPolicy | None:
        return self._retry

    def dispatch(self, machine: int, fn: Callable, /, *args):
        """Run ``fn(*args)`` in a machine's worker under faults and retry.

        Every attempt first consults the fault injector (scripted comm
        faults and dropouts surface here), then submits and waits with
        the policy's per-attempt timeout.  Without a retry policy this is
        a single attempt with no timeout — the historical behaviour.
        """
        pools = self._require_pools()
        if not (0 <= machine < self.size):
            raise ConfigurationError(
                f"no machine {machine} in a {self.size}-node cluster"
            )
        timeout = self._retry.timeout if self._retry is not None else None

        def attempt():
            if self._injector is not None:
                self._injector.check_dispatch(machine)
            return pools[machine].submit(fn, *args).result(timeout=timeout)

        if self._retry is None:
            return attempt()
        return call_with_retry(
            attempt,
            policy=self._retry,
            description=f"task on machine {machine}",
        )

    # -- introspection -------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of emulated machines."""
        return len(self._reps)

    @property
    def repetitions(self) -> tuple[int, ...]:
        """Per-machine work-inflation factors."""
        return tuple(self._reps)

    # -- benchmarking / model building ----------------------------------------
    def benchmark(self, machine: int, n: int, *, repeats: int = 2) -> float:
        """Measure one machine's square-MM speed (MFlops) at dimension ``n``."""
        if not (0 <= machine < self.size):
            raise ConfigurationError(
                f"no machine {machine} in a {self.size}-node cluster"
            )
        return float(
            self.dispatch(machine, benchmark_task, n, self._reps[machine], repeats)
        )

    def build_models(
        self,
        *,
        a_dim: int = 32,
        b_dim: int = 256,
        eps: float = 0.25,
    ) -> list[BuiltModel]:
        """Section-3.1 models of every machine from real in-worker runs.

        ``a_dim``/``b_dim`` bound the benchmarked matrix dimensions; the
        element axis of the resulting functions is the square-matrix
        element count ``n*n``.  Real hosts are noisy, hence the loose
        default acceptance band.
        """
        models = []
        for machine in range(self.size):

            def bench(elements: float, _m=machine) -> float:
                n = max(int(math.sqrt(elements)), 2)
                return self.benchmark(_m, n)

            models.append(
                build_piecewise_model(
                    bench,
                    a=float(a_dim * a_dim),
                    b=float(b_dim * b_dim),
                    eps=eps,
                    spacing="log",
                    pin_zero_at_b=False,
                    min_ratio=2.0,
                )
            )
        return models

    def speed_functions(
        self, models: Sequence[BuiltModel]
    ) -> list[PiecewiseLinearSpeedFunction]:
        """Convenience: unwrap built models to their speed functions."""
        return [m.function for m in models]

    # -- parallel execution -----------------------------------------------------
    def run_striped_matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        rows: Sequence[int],
        *,
        recovery_models: Sequence[SpeedFunction] | None = None,
    ) -> StripedRunResult:
        """Execute ``C = A @ B.T`` in parallel with the given row stripes.

        ``rows`` has one stripe height per machine and must sum to
        ``a.shape[0]``.  Every machine computes its stripe concurrently
        (with its inflation factor); the stripes are reassembled in order.

        Failure handling: transient dispatch errors are retried under the
        cluster's :class:`~repro.adapt.retry.RetryPolicy`.  A machine
        whose retries are exhausted is treated as dead; when
        ``recovery_models`` (per-machine speed functions) are given, its
        rows are redistributed over the survivors with
        :func:`~repro.core.bounded.partition_bounded` (each survivor's
        residual memory as its bound) and recomputed — otherwise the
        failure propagates.
        """
        pools = self._require_pools()
        rows_arr = np.asarray(rows, dtype=np.int64)
        if rows_arr.size != self.size:
            raise ConfigurationError(
                f"got {rows_arr.size} stripes for {self.size} machines"
            )
        if rows_arr.sum() != a.shape[0]:
            raise ConfigurationError(
                f"stripes sum to {rows_arr.sum()}, matrix has {a.shape[0]} rows"
            )
        slices = list(row_slices(rows_arr))
        timeout = self._retry.timeout if self._retry is not None else None
        futures: list = [None] * self.size
        needs_retry: list[int] = []
        for machine, sl in enumerate(slices):
            if sl.stop == sl.start:
                continue
            try:
                if self._injector is not None:
                    self._injector.check_dispatch(machine)
                futures[machine] = pools[machine].submit(
                    mm_stripe_task, a[sl, :], b, self._reps[machine]
                )
            except Exception:
                if self._retry is None and recovery_models is None:
                    raise
                needs_retry.append(machine)
        # pieces: (first_row, stripe) so recovered chunks interleave correctly.
        pieces: list[tuple[int, np.ndarray]] = []
        seconds = np.zeros(self.size, dtype=float)
        for machine, fut in enumerate(futures):
            if fut is None:
                continue
            try:
                stripe, elapsed = fut.result(timeout=timeout)
            except Exception:
                if self._retry is None and recovery_models is None:
                    raise
                needs_retry.append(machine)
                continue
            pieces.append((slices[machine].start, stripe))
            seconds[machine] = elapsed
        dead: list[int] = []
        for machine in sorted(needs_retry):
            sl = slices[machine]
            if self._retry is not None:
                try:
                    stripe, elapsed = call_with_retry(
                        lambda m=machine, s=sl: self._stripe_attempt(a, b, m, s),
                        policy=self._retry,
                        description=f"stripe on machine {machine}",
                    )
                except RetryExhaustedError:
                    dead.append(machine)
                    continue
                pieces.append((sl.start, stripe))
                seconds[machine] += elapsed
            else:
                dead.append(machine)
        if dead:
            if recovery_models is None:
                raise InfeasiblePartitionError(
                    f"machine(s) {dead} failed permanently and no recovery "
                    "models were given"
                )
            self._recover_dead_stripes(
                a, b, dead, slices, rows_arr, recovery_models, pieces, seconds
            )
        pieces.sort(key=lambda item: item[0])
        stripes = [s for _, s in pieces]
        result = (
            np.vstack(stripes)
            if stripes
            else np.zeros((0, b.shape[0]), dtype=float)
        )
        return StripedRunResult(result, seconds)

    def _stripe_attempt(
        self, a: np.ndarray, b: np.ndarray, machine: int, sl: slice
    ):
        """One guarded stripe dispatch (used by the retry path)."""
        if self._injector is not None:
            self._injector.check_dispatch(machine)
        timeout = self._retry.timeout if self._retry is not None else None
        fut = self._require_pools()[machine].submit(
            mm_stripe_task, a[sl, :], b, self._reps[machine]
        )
        return fut.result(timeout=timeout)

    def _recover_dead_stripes(
        self,
        a: np.ndarray,
        b: np.ndarray,
        dead: Sequence[int],
        slices: Sequence[slice],
        rows_arr: np.ndarray,
        recovery_models: Sequence[SpeedFunction],
        pieces: list[tuple[int, np.ndarray]],
        seconds: np.ndarray,
    ) -> None:
        """Recompute dead machines' stripes on the survivors, in place.

        The dead rows are split over the survivors by
        :func:`~repro.core.bounded.partition_bounded` in element units
        (``3 * rows * n`` per the striped layout), bounded by each
        survivor's residual memory given what it already computed.
        """
        if len(recovery_models) != self.size:
            raise ConfigurationError(
                f"got {len(recovery_models)} recovery models for "
                f"{self.size} machines"
            )
        dead_set = set(int(d) for d in dead)
        survivors = [i for i in range(self.size) if i not in dead_set]
        if not survivors:
            raise InfeasiblePartitionError(
                "every machine failed; nothing left to recover on"
            )
        n = a.shape[1]
        elements_per_row = 3.0 * n
        migrated = 0
        for machine in sorted(dead_set):
            sl = slices[machine]
            dead_rows = int(rows_arr[machine])
            if dead_rows == 0:
                continue
            survivor_sfs = [recovery_models[i] for i in survivors]
            bounds = [
                max(
                    recovery_models[i].max_size
                    - float(rows_arr[i]) * elements_per_row,
                    0.0,
                )
                for i in survivors
            ]
            extra = partition_bounded(
                int(dead_rows * elements_per_row), survivor_sfs, bounds
            ).allocation
            # Largest-remainder rounding back to whole rows of the stripe.
            raw = extra / elements_per_row
            chunk_rows = np.floor(raw).astype(np.int64)
            short = dead_rows - int(chunk_rows.sum())
            order = np.argsort(-(raw - chunk_rows), kind="stable")
            for j in order[:short]:
                chunk_rows[j] += 1
            start = sl.start
            for j, survivor in enumerate(survivors):
                r = int(chunk_rows[j])
                if r == 0:
                    continue
                chunk = slice(start, start + r)
                stripe, elapsed = call_with_retry(
                    lambda m=survivor, s=chunk: self._stripe_attempt(a, b, m, s),
                    policy=self._retry if self._retry is not None else RetryPolicy(),
                    description=f"recovery stripe on machine {survivor}",
                )
                pieces.append((chunk.start, stripe))
                seconds[survivor] += elapsed
                start += r
            migrated += int(dead_rows * elements_per_row)
        if obs.is_enabled():
            obs.record_adapt(dropouts=len(dead_set), migrated_elements=migrated)

"""Picklable task functions executed inside worker processes.

Worker processes receive their payload by pickling, so everything here is
a module-level function of plain arrays/numbers.  Heterogeneity is
emulated by *work inflation*: a worker with repetition factor ``r``
executes its kernel ``r`` times, making it behave like a machine ``r``
times slower — deterministic, CPU-bound and measurable, unlike sleeping.
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["mm_stripe_task", "benchmark_task", "arrayops_task"]


def mm_stripe_task(
    a_stripe: np.ndarray, b: np.ndarray, repetitions: int
) -> tuple[np.ndarray, float]:
    """Compute ``a_stripe @ b.T`` with work inflation.

    Returns the stripe of ``C`` and the wall time spent computing (the
    inflated time — what the emulated slower machine would take).
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    t0 = time.perf_counter()
    out = a_stripe @ b.T
    for _ in range(repetitions - 1):
        out = a_stripe @ b.T
    return out, time.perf_counter() - t0


def arrayops_task(
    data: np.ndarray, repetitions: int
) -> tuple[np.ndarray, float]:
    """Streaming array kernel with work inflation."""
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    t0 = time.perf_counter()
    out = data
    for _ in range(repetitions):
        out = (out * 1.000001 + 0.5) ** 2 + data
    return out, time.perf_counter() - t0


def benchmark_task(n: int, repetitions: int, repeats: int = 2) -> float:
    """Measure this worker's square-MM speed (MFlops) at dimension ``n``.

    The measurement includes the worker's inflation factor, so the
    returned speed is the *emulated machine's* speed — exactly what the
    model builder should see.
    """
    if n < 2:
        raise ConfigurationError(f"benchmark dimension must be >= 2, got {n}")
    rng = np.random.default_rng(n)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    best = float("inf")
    for _ in range(max(repeats, 1)):
        _, seconds = mm_stripe_task(a, b, repetitions)
        best = min(best, seconds)
    return 2.0 * float(n) ** 3 / best / 1e6

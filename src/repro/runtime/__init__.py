"""Real parallel execution on an emulated heterogeneous cluster.

The paper targets physical networks of heterogeneous computers; this
package emulates one on the local host — pinned worker processes with
deterministic work-inflation factors — so the whole benchmark -> model ->
partition -> execute loop can run against *real* wall clocks instead of
the simulator.  See :mod:`repro.runtime.cluster`.
"""

from .cluster import EmulatedCluster, StripedRunResult
from .lu_parallel import ParallelLUResult, run_parallel_lu
from .tasks import arrayops_task, benchmark_task, mm_stripe_task

__all__ = [
    "EmulatedCluster",
    "ParallelLUResult",
    "StripedRunResult",
    "arrayops_task",
    "benchmark_task",
    "mm_stripe_task",
    "run_parallel_lu",
]

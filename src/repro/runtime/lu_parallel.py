"""Driver for the real parallel LU factorisation on the emulated cluster.

Executes a right-looking block LU (no pivoting; supply a diagonally
dominant matrix) over an :class:`~repro.runtime.cluster.EmulatedCluster`,
with columns statically distributed by any
:class:`~repro.kernels.group_block.GroupBlockDistribution` — in particular
the Variable Group Block distribution the paper proposes.

Per step: the owner factorises its panel in its own process, the panel is
shipped to every worker holding trailing columns (the "broadcast"), and
the updates run concurrently.  Per-step wall times are recorded so the
load balance of different distributions can be compared on real clocks.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..adapt.faults import InjectedCommError
from ..exceptions import ConfigurationError
from ..kernels.group_block import GroupBlockDistribution
from .cluster import EmulatedCluster
from .lu_tasks import (
    lu_apply_update,
    lu_collect_columns,
    lu_factor_panel,
    lu_worker_init,
)

__all__ = ["ParallelLUResult", "run_parallel_lu"]


@dataclass
class ParallelLUResult:
    """Outcome of one real parallel LU run.

    Attributes
    ----------
    lu:
        The packed factors, reassembled in global column order (L unit
        lower, U upper — same packing as :func:`repro.kernels.lu.lu_factor`
        without pivoting).
    total_seconds:
        Sum over steps of (panel time + slowest update time) — the
        modelled critical path, from real measurements.
    step_seconds:
        Per-step critical-path times.
    worker_update_seconds:
        Total update seconds per worker (busy-time profile).
    """

    lu: np.ndarray
    total_seconds: float
    step_seconds: list[float] = field(default_factory=list)
    worker_update_seconds: np.ndarray | None = None


def run_parallel_lu(
    cluster: EmulatedCluster,
    a: np.ndarray,
    dist: GroupBlockDistribution,
) -> ParallelLUResult:
    """Factorise ``a`` on the cluster under the given column distribution.

    Dispatches honour the cluster's fault injector and retry policy:
    scripted communication faults are retried with exponential backoff
    and each attempt is bounded by the policy's timeout.  A permanent
    worker loss is unrecoverable here — the factored columns live in the
    dead worker — so exhausted retries propagate as
    :class:`~repro.adapt.retry.RetryExhaustedError`.
    """
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ConfigurationError("parallel LU expects a square matrix")
    if dist.n != n:
        raise ConfigurationError(
            f"distribution is for n={dist.n}, matrix has n={n}"
        )
    owners = dist.block_owners
    if owners.size and int(owners.max()) >= cluster.size:
        raise ConfigurationError(
            f"distribution uses processor {int(owners.max())} but the "
            f"cluster has {cluster.size} machines"
        )
    pools = cluster._require_pools()  # driver is a friend of the cluster
    session = uuid.uuid4().hex
    b = dist.b
    injector = cluster.fault_injector
    timeout = (
        cluster.retry_policy.timeout if cluster.retry_policy is not None else None
    )

    # Scatter columns to their owners (guarded, sequential: init is cheap).
    col_owner = np.repeat(owners, b)[:n]
    for w in range(cluster.size):
        mine = np.nonzero(col_owner == w)[0]
        got = cluster.dispatch(
            w,
            lu_worker_init,
            session,
            np.ascontiguousarray(a[:, mine]),
            mine,
            n,
            b,
            cluster.repetitions[w],
        )
        assert got == int((col_owner == w).sum())

    step_seconds: list[float] = []
    worker_update = np.zeros(cluster.size)
    total = 0.0
    telemetry = obs.is_enabled()
    with obs.span("runtime.lu", n=n, b=b, workers=cluster.size):
        for k in range(dist.num_blocks):
            owner = int(owners[k])
            panel, panel_s = cluster.dispatch(owner, lu_factor_panel, session, k)
            # Broadcast + concurrent updates on trailing columns.  Scripted
            # comm faults surface at submit time and are re-dispatched
            # through the guarded (retrying) path; updates that made it
            # into a worker stay concurrent.
            update_futs = {}
            faulted = []
            for w in range(cluster.size):
                try:
                    if injector is not None:
                        injector.check_dispatch(w)
                    update_futs[w] = pools[w].submit(
                        lu_apply_update, session, k, panel
                    )
                except InjectedCommError:
                    if cluster.retry_policy is None:
                        raise
                    faulted.append(w)
            update_times = {
                w: f.result(timeout=timeout) for w, f in update_futs.items()
            }
            for w in faulted:
                update_times[w] = cluster.dispatch(
                    w, lu_apply_update, session, k, panel
                )
            for w, t in update_times.items():
                worker_update[w] += t
            update_s = max(update_times.values(), default=0.0)
            step = panel_s + update_s
            step_seconds.append(step)
            total += step
            if telemetry:
                obs.record(
                    "runtime.lu.step",
                    step,
                    kind="wall",
                    attrs={"step": k, "owner": owner},
                    children=[
                        ("runtime.lu.panel", panel_s),
                        ("runtime.lu.update", update_s),
                    ],
                )
    if telemetry:
        obs.get_registry().counter("runtime.lu.calls").inc()

    # Gather the factored columns back into global order (guarded).
    lu = np.empty_like(a, dtype=float)
    for w in range(cluster.size):
        cols, block = cluster.dispatch(w, lu_collect_columns, session)
        lu[:, cols] = block
    return ParallelLUResult(
        lu=lu,
        total_seconds=total,
        step_seconds=step_seconds,
        worker_update_seconds=worker_update,
    )

"""Build a speed function of THIS machine from real benchmark runs.

Runs the section-3.1 procedure against the host you are sitting at: the
benchmark callable times the real NumPy matrix-multiplication kernel, and
the trisection procedure decides where to measure next.  (Sizes are kept
modest so the example finishes in seconds; on a real deployment you would
let ``b`` reach the paging region.)

Run:  python examples/build_speed_function.py
"""

from __future__ import annotations

import math

from repro.experiments import ascii_table
from repro.model import build_piecewise_model, measure_mm_speed

A_DIM = 32     # smallest benchmark: 32 x 32 (fits every cache)
B_DIM = 700    # largest benchmark dimension


def bench(elements: float) -> float:
    """One real benchmark run: square MM with the given element count."""
    n = max(int(math.sqrt(elements)), 2)
    return measure_mm_speed(n, repeats=2).speed


def main() -> None:
    print("Benchmarking this host's matrix multiplication ...")
    built = build_piecewise_model(
        bench,
        a=A_DIM * A_DIM,
        b=B_DIM * B_DIM,
        eps=0.10,          # real hosts are noisier than the paper's 5 %
        spacing="log",
        pin_zero_at_b=False,  # 700x700 is solvable here: measure it
    )
    print(f"\n{built.experiments} benchmark runs -> "
          f"{built.function.num_knots} knots\n")
    rows = [
        (f"{int(math.sqrt(x))}x{int(math.sqrt(x))}", int(x), round(s))
        for x, s in built.points
    ]
    print(
        ascii_table(
            ["matrix", "elements", "speed (MFlops)"],
            rows,
            title="Piecewise speed function of this host (MM kernel)",
        )
    )
    mid = (A_DIM * A_DIM + B_DIM * B_DIM) / 2
    print(f"\nInterpolated speed at {int(mid)} elements: "
          f"{float(built.function.speed(mid)):,.0f} MFlops")
    print("Feed a list of these functions (one per machine) to "
          "repro.partition() to balance a real cluster.")


if __name__ == "__main__":
    main()

"""Parallel LU factorisation with the Variable Group Block distribution.

The figure-17 pipeline:

1. build LU speed functions for the twelve-machine testbed;
2. compute the Variable Group Block column distribution, which re-derives
   the optimal split from the functional model at every group boundary as
   the active matrix shrinks;
3. simulate the factorisation step by step and compare against the
   classical (single-number) Group Block distribution;
4. verify the serial blocked LU kernel against SciPy on a real matrix.

Run:  python examples/lu_factorization.py
"""

from __future__ import annotations

import numpy as np

from repro import ConstantSpeedFunction, single_number_speeds
from repro.experiments import ascii_table, build_network_models
from repro.kernels import apply_pivots, lu_factor, lu_reconstruct, variable_group_block
from repro.machines import table2_network
from repro.simulate import simulate_lu

N = 28_000    # matrix dimension for the simulated run
B = 64        # column block width
PROBE = 2000  # single-number benchmark size (paper's solid curve)


def simulated_comparison() -> None:
    net = table2_network()
    truth = net.speed_functions("lu")
    print(f"Building LU speed-function models for {len(net)} machines ...")
    models = build_network_models(net, "lu")

    func_dist = variable_group_block(N, B, models)
    single = [
        ConstantSpeedFunction(float(s))
        for s in single_number_speeds(truth, PROBE * PROBE)
    ]
    single_dist = variable_group_block(N, B, single)

    func_sim = simulate_lu(func_dist, truth)
    single_sim = simulate_lu(single_dist, truth)

    print()
    print(
        ascii_table(
            ["model", "groups", "first group (blocks)", "simulated time (s)"],
            [
                (
                    "functional",
                    len(func_dist.groups),
                    int(func_dist.group_sizes()[0]),
                    f"{func_sim.total_seconds:,.0f}",
                ),
                (
                    f"single ({PROBE}x{PROBE})",
                    len(single_dist.groups),
                    int(single_dist.group_sizes()[0]),
                    f"{single_sim.total_seconds:,.0f}",
                ),
            ],
            title=f"LU factorisation at n = {N}, b = {B} on the Table 2 testbed",
        )
    )
    print(
        f"  speedup of the functional model: "
        f"{single_sim.total_seconds / func_sim.total_seconds:.2f}x"
    )
    busy = func_sim.trace.busy_fraction(len(net))
    print(f"  per-machine busy fraction (functional): "
          f"{np.array2string(busy, precision=2)}")


def real_verification() -> None:
    """Factorise an actual matrix with the blocked kernel."""
    import scipy.linalg

    rng = np.random.default_rng(3)
    a = rng.standard_normal((300, 300))
    lu, piv = lu_factor(a, block=B)
    err = float(np.max(np.abs(lu_reconstruct(lu, piv) - apply_pivots(a, piv))))
    lu_ref, _ = scipy.linalg.lu_factor(a)
    scipy_err = float(np.max(np.abs(lu - lu_ref)))
    print(f"\nReal blocked LU at n=300: reconstruction error {err:.2e}, "
          f"vs SciPy {scipy_err:.2e}")
    assert err < 1e-9 and scipy_err < 1e-8


if __name__ == "__main__":
    simulated_comparison()
    real_verification()

"""Parallel matrix multiplication C = A * B^T with striped partitioning.

The full figure-16 pipeline on the paper's twelve-machine testbed:

1. benchmark every (simulated) machine with the section-3.1 procedure and
   build its piecewise speed function;
2. partition the 3*n^2 elements so stripe sizes are proportional to the
   speeds *at the assigned sizes*;
3. simulate the run on the ground-truth machines and compare against the
   single-number and even distributions;
4. verify numerical correctness of the striped algorithm itself by
   actually multiplying a small matrix with NumPy stripes.

Run:  python examples/matmul_partitioning.py
"""

from __future__ import annotations

import numpy as np

from repro import partition, partition_constant, partition_even, single_number_speeds
from repro.experiments import ascii_table, build_network_models
from repro.kernels import matmul_abt, mm_elements, rows_from_elements, stripe_matrix
from repro.machines import table2_network
from repro.simulate import simulate_striped_matmul

N = 25_000          # matrix dimension for the simulated run
PROBE = 500         # single-number model benchmark size (paper's solid curve)
N_REAL = 240        # matrix dimension for the real NumPy verification


def simulated_comparison() -> None:
    net = table2_network()
    truth = net.speed_functions("matmul")
    print(f"Building speed-function models for {len(net)} machines ...")
    models = build_network_models(net, "matmul")

    total = mm_elements(N)
    candidates = {
        "functional": partition(total, models).allocation,
        f"single ({PROBE}x{PROBE})": partition_constant(
            total, single_number_speeds(truth, mm_elements(PROBE))
        ).allocation,
        "even": partition_even(total, len(net)).allocation,
    }
    rows = []
    times = {}
    for name, alloc in candidates.items():
        sim = simulate_striped_matmul(N, alloc, truth)
        times[name] = sim.makespan
        rows.append((name, sim.rows.max(), sim.rows.min(), f"{sim.makespan:,.0f}"))
    print()
    print(
        ascii_table(
            ["model", "largest stripe", "smallest stripe", "simulated time (s)"],
            rows,
            title=f"Striped C = A*B^T at n = {N} on the Table 2 testbed",
        )
    )
    base = times["functional"]
    for name, t in times.items():
        if name != "functional":
            print(f"  functional is {t / base:.2f}x faster than {name}")


def real_verification() -> None:
    """Multiply an actual matrix through the striped code path."""
    rng = np.random.default_rng(7)
    a = rng.standard_normal((N_REAL, N_REAL))
    b = rng.standard_normal((N_REAL, N_REAL))

    # Pretend three heterogeneous processors with 1:2:3 constant speeds.
    alloc = partition_constant(mm_elements(N_REAL), [1.0, 2.0, 3.0]).allocation
    stripe_rows = rows_from_elements(alloc, N_REAL)
    stripes = stripe_matrix(a, stripe_rows)
    c = np.vstack([matmul_abt(s, b) for s in stripes])
    err = float(np.max(np.abs(c - a @ b.T)))
    print(f"\nReal striped multiply at n={N_REAL}: stripes {stripe_rows.tolist()}, "
          f"max error {err:.2e}")
    assert err < 1e-9


if __name__ == "__main__":
    simulated_comparison()
    real_verification()

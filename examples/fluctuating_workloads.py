"""Partitioning under fluctuating background workloads (speed bands).

Section 1 of the paper models transient load as a *band* of speed curves.
This example quantifies what that does to a distribution:

1. take the Table 2 testbed with its high/low-integration bands;
2. partition once using the band midlines (what a deployment would do);
3. replay the same distribution against many stochastic draws from the
   bands and report the spread of the achieved makespan;
4. show the band-shift behaviour under an extra heavy load.

Run:  python examples/fluctuating_workloads.py
"""

from __future__ import annotations

import numpy as np

from repro import partition
from repro.experiments import ascii_table, build_network_models
from repro.kernels import mm_elements
from repro.machines import table2_network
from repro.simulate import simulate_striped_matmul

N = 20_000
RUNS = 30


def main() -> None:
    net = table2_network()
    rng = np.random.default_rng(2004)

    models = build_network_models(net, "matmul")
    alloc = partition(mm_elements(N), models).allocation

    nominal = simulate_striped_matmul(
        N, alloc, net.speed_functions("matmul")
    ).makespan
    samples = []
    for _ in range(RUNS):
        truth = net.sample_speed_functions("matmul", rng)
        samples.append(simulate_striped_matmul(N, alloc, truth).makespan)
    arr = np.asarray(samples)
    print(
        ascii_table(
            ["statistic", "seconds"],
            [
                ("nominal (midline) makespan", f"{nominal:,.0f}"),
                (f"mean over {RUNS} fluctuating runs", f"{arr.mean():,.0f}"),
                ("best run", f"{arr.min():,.0f}"),
                ("worst run", f"{arr.max():,.0f}"),
                ("relative spread", f"{(arr.max() - arr.min()) / arr.mean():.1%}"),
            ],
            title=f"Makespan of one fixed distribution under workload bands (n={N})",
        )
    )

    # Band shift: an extra heavy job on X5 moves its whole band down at
    # constant absolute width (the paper's observation).
    band = net["X5"].band("matmul")
    x = mm_elements(6000) // 2
    shifted = band.shifted(40.0)
    print("\nHeavy extra load on X5 (band shifted down by 40 MFlops):")
    print(f"  before: mid {float(band.midline.speed(x)):6.1f} MFlops, "
          f"abs width {float(band.upper_speed(x) - band.lower_speed(x)):5.1f}")
    print(f"  after : mid {float(shifted.midline.speed(x)):6.1f} MFlops, "
          f"abs width {float(shifted.upper_speed(x) - shifted.lower_speed(x)):5.1f}")


if __name__ == "__main__":
    main()

"""The full paper workflow on REAL parallel execution.

Emulates a three-machine heterogeneous network with pinned worker
processes (work-inflation factors 1x / 2x / 4x), then runs the complete
loop against real wall clocks:

1. benchmark each machine in-process (section 3.1, real MM kernel);
2. build piecewise speed functions from the measurements;
3. partition the rows of a real matrix multiplication with the functional
   model;
4. execute the striped multiply in parallel and compare the achieved
   makespan against the naive even distribution.

Run:  python examples/real_parallel_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro import partition
from repro.experiments import ascii_table
from repro.kernels import rows_from_elements
from repro.runtime import EmulatedCluster

N = 2048                # matrix dimension of the real multiply
FACTORS = [1, 2, 4]     # emulated machines: host speed, half, quarter


def main() -> None:
    rng = np.random.default_rng(42)
    a = rng.standard_normal((N, N))
    b = rng.standard_normal((N, N))
    reference = a @ b.T

    with EmulatedCluster(FACTORS) as cluster:
        print(f"Benchmarking {cluster.size} emulated machines "
              f"(inflation {FACTORS}) ...")
        # Benchmark up to dimension N so even "all rows to one machine"
        # stays inside every model's domain.
        models = cluster.build_models(a_dim=48, b_dim=N)
        for i, m in enumerate(models):
            print(f"  machine {i}: {m.experiments} runs -> "
                  f"{m.function.num_knots} knots, "
                  f"~{float(m.function.speed(256 * 256)):,.0f} MFlops at 256^2")

        # Functional-model distribution: a stripe of r rows holds r*N
        # elements of A (one-matrix convention, matching the benchmark's
        # n*n element axis).
        funcs = cluster.speed_functions(models)
        alloc = partition(N * N, funcs).allocation
        rows_func = rows_from_elements(alloc, N, matrices=1)
        rows_even = np.array([N // 3, N // 3, N - 2 * (N // 3)])

        print("\nExecuting the real striped multiply ...")
        run_func = cluster.run_striped_matmul(a, b, rows_func)
        run_even = cluster.run_striped_matmul(a, b, rows_even)

    for name, run in [("functional", run_func), ("even", run_even)]:
        err = float(np.max(np.abs(run.result - reference)))
        assert err < 1e-9, f"{name}: wrong result ({err})"

    print()
    print(
        ascii_table(
            ["distribution", "stripe rows", "per-machine seconds", "makespan (s)", "imbalance"],
            [
                (
                    "functional",
                    str(rows_func.tolist()),
                    np.array2string(run_func.worker_seconds, precision=2),
                    f"{run_func.makespan:.2f}",
                    f"{run_func.imbalance:.2f}",
                ),
                (
                    "even",
                    str(rows_even.tolist()),
                    np.array2string(run_even.worker_seconds, precision=2),
                    f"{run_even.makespan:.2f}",
                    f"{run_even.imbalance:.2f}",
                ),
            ],
            title=f"Real parallel C = A*B^T at n = {N} over 3 emulated machines",
        )
    )
    print(f"\nFunctional distribution finished "
          f"{run_even.makespan / run_func.makespan:.2f}x faster than the even split.")


if __name__ == "__main__":
    main()

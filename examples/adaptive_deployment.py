"""Model persistence and online maintenance over a deployment's lifetime.

The paper leaves "efficient building and maintaining of our model" to
future research; this example shows the reproduction's answer:

1. benchmark the simulated testbed once and **save** the fitted models to
   JSON (`repro.io`);
2. in a later session, **load** them and partition instantly;
3. a machine's behaviour changes (a permanent heavy job appears — the
   band shifts down); production runs feed observations to an
   :class:`~repro.model.AdaptiveModel`, which absorbs the change and
   flags the drift;
4. repartitioning with the adapted model recovers most of the lost
   balance without a full re-benchmark.

Run:  python examples/adaptive_deployment.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import partition
from repro.experiments import ascii_table, build_network_models
from repro.io import load_models, save_models
from repro.kernels import mm_elements
from repro.machines import table2_network
from repro.model import AdaptiveModel
from repro.simulate import simulate_striped_matmul

N = 21_000
SLOWED = "X5"           # this machine picks up a permanent heavy job
SLOWDOWN = 0.45         # it loses 55% of its speed


def main() -> None:
    net = table2_network()
    truth = net.speed_functions("matmul")

    # --- day 0: benchmark once, save to disk -----------------------------
    print("Benchmarking the 12-machine testbed (once) ...")
    models = build_network_models(net, "matmul")
    path = Path(tempfile.mkdtemp()) / "matmul-models.json"
    save_models(path, dict(zip(net.names, models)), kernel="matmul")
    print(f"Models saved to {path}")

    # --- day 30: load and partition instantly ------------------------------
    loaded = load_models(path)
    models = [loaded[name] for name in net.names]
    alloc0 = partition(mm_elements(N), models).allocation

    # --- the world changes: X5 under permanent heavy load --------------------
    slowed_idx = net.names.index(SLOWED)
    new_truth = list(truth)
    new_truth[slowed_idx] = truth[slowed_idx].scaled(SLOWDOWN)
    t_stale = simulate_striped_matmul(N, alloc0, new_truth).makespan

    # --- production observations feed the adaptive model --------------------
    # Each production run reveals the slowed machine's speed AT THE SIZE IT
    # WAS ASSIGNED; the adaptive model absorbs it and the next run is
    # repartitioned with the updated curve.
    adaptive = AdaptiveModel(models[slowed_idx], tolerance=0.05,
                             smoothing=0.8, drift_limit=3)
    models_adapted = list(models)
    alloc1 = alloc0
    for run in range(6):
        x = float(alloc1[slowed_idx])
        observed = float(new_truth[slowed_idx].speed(x))
        adaptive.observe(x, observed)
        models_adapted[slowed_idx] = adaptive.function
        alloc1 = partition(mm_elements(N), models_adapted).allocation
    print(f"\n{SLOWED} slowed to {SLOWDOWN:.0%}: adaptive model absorbed "
          f"{adaptive.updates} out-of-band observations over 6 production "
          f"runs (drift flagged: {adaptive.needs_rebuild})")
    t_adapted = simulate_striped_matmul(N, alloc1, new_truth).makespan

    # Oracle: partition straight from the new ground truth.
    alloc_best = partition(mm_elements(N), new_truth).allocation
    t_best = simulate_striped_matmul(N, alloc_best, new_truth).makespan

    print()
    print(
        ascii_table(
            ["distribution", f"{SLOWED} share (elements)", "simulated time (s)"],
            [
                ("stale models", int(alloc0[slowed_idx]), f"{t_stale:,.0f}"),
                ("adapted models", int(alloc1[slowed_idx]), f"{t_adapted:,.0f}"),
                ("oracle (full re-benchmark)", int(alloc_best[slowed_idx]), f"{t_best:,.0f}"),
            ],
            title=f"MM at n = {N} after {SLOWED} slows down",
        )
    )
    print(f"\nAdaptation recovered "
          f"{(t_stale - t_adapted) / max(t_stale - t_best, 1e-9):.0%} of the "
          "gap between stale models and a full re-benchmark.")


if __name__ == "__main__":
    main()

"""Quickstart: partition a data-parallel workload over heterogeneous processors.

The one-screen version of the library:

1. describe each processor by a speed *function* of problem size (built
   from a few benchmark points) instead of a single number;
2. call :func:`repro.partition`;
3. compare against the classical single-number distribution.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PiecewiseLinearSpeedFunction,
    makespan,
    partition,
    partition_constant,
)


def main() -> None:
    # Two workstations, benchmarked at a handful of problem sizes
    # (elements vs speed).  The first is fast but has little memory: its
    # speed collapses past ~2e6 elements.  The second is slower but steady
    # up to 40e6 elements.
    fast_small = PiecewiseLinearSpeedFunction(
        sizes=[1e4, 1e6, 2e6, 4e6, 8e6],
        speeds=[500.0, 480.0, 420.0, 60.0, 5.0],
    )
    slow_big = PiecewiseLinearSpeedFunction(
        sizes=[1e4, 1e6, 1e7, 4e7],
        speeds=[220.0, 215.0, 205.0, 150.0],
    )
    processors = [fast_small, slow_big]

    n = 10_000_000  # elements to distribute

    # --- functional model -------------------------------------------------
    result = partition(n, processors)
    print("Functional model distribution")
    print(f"  allocation : {result.allocation.tolist()}")
    print(f"  makespan   : {result.makespan:,.1f} model seconds")
    print(f"  ({result.iterations} bisection steps, "
          f"{result.intersections} ray intersections)")

    # --- single-number model ----------------------------------------------
    # Benchmark both machines at ONE size (1e6 elements, where the small
    # machine still looks 2.2x faster) and split proportionally.
    probe = 1e6
    single_speeds = [float(sf.speed(probe)) for sf in processors]
    single = partition_constant(n, single_speeds)
    t_single = makespan(processors, single.allocation)
    print("\nSingle-number model (speeds measured at 1e6 elements)")
    print(f"  allocation : {single.allocation.tolist()}")
    print(f"  makespan   : {t_single:,.1f} model seconds")

    print(f"\nSpeedup of the functional model: {t_single / result.makespan:.2f}x")
    print("The single-number model overloads the small machine into its")
    print("paging region; the functional model sees the collapse coming.")


if __name__ == "__main__":
    main()

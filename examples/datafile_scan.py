"""Partitioned pattern search in a very large linear data file.

The paper's introduction motivates the whole line of work with "search for
patterns in text, audio, graphical files, processing of very large linear
data files".  This example runs that application class end to end:

1. synthesise a large byte buffer (the "data file");
2. model three heterogeneous processors whose scanning speed degrades at
   their memory limits;
3. partition the bytes with the functional model (chunk sizes proportional
   to speed *at the assigned chunk size*);
4. scan for a pattern chunk by chunk — boundary-straddling matches are
   handled by the overlapping-window scan — and verify the total against a
   whole-buffer reference scan.

Run:  python examples/datafile_scan.py
"""

from __future__ import annotations

import numpy as np

from repro import PiecewiseLinearSpeedFunction, partition, partition_even
from repro.experiments import ascii_table
from repro.kernels import count_pattern, scan_chunks

FILE_BYTES = 6_000_000
PATTERN = b"needle"


def main() -> None:
    rng = np.random.default_rng(2004)
    data = rng.integers(97, 123, FILE_BYTES, dtype=np.uint8)  # a-z noise
    # Plant some needles, a few straddling future chunk boundaries.
    pattern_arr = np.frombuffer(PATTERN, dtype=np.uint8)
    for pos in rng.integers(0, FILE_BYTES - len(PATTERN), 500):
        data[pos : pos + len(PATTERN)] = pattern_arr

    # Three machines: MB/s-style scan speeds over bytes held in memory.
    laptop = PiecewiseLinearSpeedFunction(
        [1e5, 2e6, 4e6, 8e6], [900.0, 850.0, 200.0, 20.0])
    server = PiecewiseLinearSpeedFunction(
        [1e5, 8e6, 3e7], [1500.0, 1450.0, 1100.0])
    old_box = PiecewiseLinearSpeedFunction(
        [1e5, 3e6, 1.2e7], [400.0, 390.0, 280.0])
    machines = [laptop, server, old_box]

    result = partition(FILE_BYTES, machines)
    even = partition_even(FILE_BYTES, 3)

    reference = count_pattern(data, PATTERN)
    total, counts = scan_chunks(data, PATTERN, result.allocation)
    assert total == reference, (total, reference)

    def modelled_time(alloc):
        return max(sf.time(int(x)) for sf, x in zip(machines, alloc))

    print(f"File: {FILE_BYTES:,} bytes, pattern {PATTERN!r}, "
          f"{reference} occurrences (all found: {total == reference})\n")
    print(
        ascii_table(
            ["distribution", "chunk bytes", "matches/chunk", "modelled time (s)"],
            [
                (
                    "functional",
                    str(result.allocation.tolist()),
                    str(counts),
                    f"{modelled_time(result.allocation):,.0f}",
                ),
                (
                    "even",
                    str(even.allocation.tolist()),
                    str(scan_chunks(data, PATTERN, even.allocation)[1]),
                    f"{modelled_time(even.allocation):,.0f}",
                ),
            ],
            title="Partitioned pattern scan",
        )
    )
    speedup = modelled_time(even.allocation) / modelled_time(result.allocation)
    print(f"\nThe functional distribution is {speedup:.2f}x faster than the "
          "even split — the laptop's chunk stays inside its memory.")


if __name__ == "__main__":
    main()

"""Two-level partitioning over a multi-site heterogeneous network.

Global networks of heterogeneous computers are hierarchical: sites
connected by a WAN, machines inside each site.  The functional model
composes across the levels — a whole site collapses into one *composite
speed function* ``s_G(x) = x / T_G(x)`` (the optimal within-site makespan
defines the site's speed), which is itself a valid member of the model
family.

This example splits the Table 2 testbed into three sites (the PIII lab,
the Xeon cluster, the sparc corner), partitions a large MM workload across
the composites, then within each site, and shows the result matches the
flat twelve-machine partition.

Run:  python examples/hierarchical_sites.py
"""

from __future__ import annotations

from repro import partition, partition_hierarchical
from repro.experiments import ascii_table, build_network_models
from repro.kernels import mm_elements
from repro.machines import table2_network

N = 20_000

SITES = {
    "PIII lab": ["X1", "X2"],
    "Xeon cluster": ["X3", "X4", "X5", "X6", "X7", "X8", "X9"],
    "sparc corner": ["X10", "X11", "X12"],
}


def main() -> None:
    net = table2_network()
    models = dict(zip(net.names, build_network_models(net, "matmul")))
    groups = [[models[name] for name in members] for members in SITES.values()]

    n = mm_elements(N)
    h = partition_hierarchical(n, groups)
    flat = partition(n, [models[name] for name in net.names])

    rows = []
    for (site, members), total, alloc in zip(
        SITES.items(), h.group_totals, h.allocations
    ):
        rows.append(
            (
                site,
                len(members),
                f"{int(total):,}",
                f"{100 * total / n:.1f}%",
                str([int(a) for a in alloc]),
            )
        )
    print(
        ascii_table(
            ["site", "machines", "elements", "share", "within-site split"],
            rows,
            title=f"Hierarchical partition of {n:,} elements (MM at n = {N})",
        )
    )
    print(f"\nhierarchical makespan : {h.makespan:,.0f} model-s")
    print(f"flat 12-way makespan  : {flat.makespan:,.0f} model-s")
    print(f"overhead of the site abstraction: "
          f"{h.makespan / flat.makespan - 1:+.2%}")
    print("\nThe composite-site abstraction costs only the sampling error of")
    print("the site curves (a few per cent; raise samples_per_group to shrink")
    print("it) — the functional model's optimal substructure carries across")
    print("levels.")


if __name__ == "__main__":
    main()

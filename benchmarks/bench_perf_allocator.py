"""Performance micro-benchmarks: the ray-intersection hot path.

The partitioner's cost is dominated by ray-graph intersections (figure
21); these benches pin down the two implementations — the per-function
Python loop and the padded-array vectorised set — at testbed and
figure-21 scales, so regressions in the hot path show up immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vectorized import PiecewiseLinearSet, make_allocator
from repro.experiments import tile_speed_functions


@pytest.fixture(scope="module")
def packed_1080(mm_models):
    return PiecewiseLinearSet(tile_speed_functions(mm_models, 1080))


@pytest.fixture(scope="module")
def functions_1080(mm_models):
    return tile_speed_functions(mm_models, 1080)


def test_perf_vectorised_allocations_p1080(packed_1080, benchmark):
    slope = 1e-7
    out = benchmark(lambda: packed_1080.allocations(slope))
    assert out.shape == (1080,)
    assert np.all(out > 0)


def test_perf_scalar_allocations_p1080(functions_1080, benchmark):
    slope = 1e-7
    out = benchmark(
        lambda: np.array([sf.intersect_ray(slope) for sf in functions_1080])
    )
    assert out.shape == (1080,)


def test_vectorised_and_scalar_agree_at_scale(packed_1080, functions_1080, benchmark):
    def check():
        for slope in (1e-9, 1e-7, 1e-5, 1e-3):
            expected = np.array(
                [sf.intersect_ray(slope) for sf in functions_1080]
            )
            np.testing.assert_allclose(
                packed_1080.allocations(slope), expected, rtol=1e-9
            )
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_perf_partition_p1080(functions_1080, benchmark):
    from repro.core.partition import partition

    n = 2_000_000_000
    result = benchmark(lambda: partition(n, functions_1080))
    assert int(result.allocation.sum()) == n


# ---------------------------------------------------------------------------
# Planner: cold vs warm-started vs cached vs batched queries (ISSUE: the
# plan_many sweep must beat 64 independent cold solves by >= 3x, and a
# cache hit must be >= 100x faster than a cold solve).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet_1080(mm_models):
    from repro.planner import Fleet

    return Fleet(tile_speed_functions(mm_models, 1080), name="bench-p1080")


def _sweep_sizes(k: int = 64) -> list[int]:
    return [int(n) for n in np.linspace(2e8, 2e9, k)]


def test_perf_plan_cold_p1080(fleet_1080, benchmark):
    from repro.core.bisection import partition_bisection

    n = 2_000_000_000
    result = benchmark(
        lambda: partition_bisection(n, fleet_1080.speed_functions)
    )
    assert int(result.allocation.sum()) == n


def test_perf_plan_warm_p1080(fleet_1080, benchmark):
    from repro.core.bisection import partition_bisection
    from repro.planner import Planner

    planner = Planner(fleet_1080)
    n = 2_000_000_000
    planner.plan(n - 1_000_000)  # neighbouring plan to warm-start from

    def warm():
        planner.cache.clear()  # hit the warm path, not the cache
        return planner.plan(n)

    result = benchmark(warm)
    cold = partition_bisection(n, fleet_1080.speed_functions)
    assert np.array_equal(result.allocation, cold.allocation)


def test_perf_plan_cache_hit_p1080(fleet_1080, benchmark):
    from repro.planner import Planner

    planner = Planner(fleet_1080)
    n = 2_000_000_000
    expected = planner.plan(n)
    result = benchmark(lambda: planner.plan(n))
    assert result is expected


def test_perf_plan_many_sweep64_p1080(fleet_1080, benchmark):
    from repro.planner import Planner

    sizes = _sweep_sizes(64)

    def sweep():
        planner = Planner(fleet_1080)  # fresh cache: all 64 actually solved
        return planner.plan_many(sizes)

    results = benchmark(sweep)
    assert [int(r.allocation.sum()) for r in results] == sizes


def test_perf_plan_many_cold_baseline64_p1080(fleet_1080, benchmark):
    from repro.core.bisection import partition_bisection

    sizes = _sweep_sizes(64)
    sfs = fleet_1080.speed_functions

    def baseline():
        return [partition_bisection(n, sfs) for n in sizes]

    results = benchmark.pedantic(baseline, rounds=1, iterations=1)
    assert [int(r.allocation.sum()) for r in results] == sizes

"""Performance micro-benchmarks: the ray-intersection hot path.

The partitioner's cost is dominated by ray-graph intersections (figure
21); these benches pin down the two implementations — the per-function
Python loop and the padded-array vectorised set — at testbed and
figure-21 scales, so regressions in the hot path show up immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vectorized import PiecewiseLinearSet, make_allocator
from repro.experiments import tile_speed_functions


@pytest.fixture(scope="module")
def packed_1080(mm_models):
    return PiecewiseLinearSet(tile_speed_functions(mm_models, 1080))


@pytest.fixture(scope="module")
def functions_1080(mm_models):
    return tile_speed_functions(mm_models, 1080)


def test_perf_vectorised_allocations_p1080(packed_1080, benchmark):
    slope = 1e-7
    out = benchmark(lambda: packed_1080.allocations(slope))
    assert out.shape == (1080,)
    assert np.all(out > 0)


def test_perf_scalar_allocations_p1080(functions_1080, benchmark):
    slope = 1e-7
    out = benchmark(
        lambda: np.array([sf.intersect_ray(slope) for sf in functions_1080])
    )
    assert out.shape == (1080,)


def test_vectorised_and_scalar_agree_at_scale(packed_1080, functions_1080, benchmark):
    def check():
        for slope in (1e-9, 1e-7, 1e-5, 1e-3):
            expected = np.array(
                [sf.intersect_ray(slope) for sf in functions_1080]
            )
            np.testing.assert_allclose(
                packed_1080.allocations(slope), expected, rtol=1e-9
            )
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_perf_partition_p1080(functions_1080, benchmark):
    from repro.core.partition import partition

    n = 2_000_000_000
    result = benchmark(lambda: partition(n, functions_1080))
    assert int(result.allocation.sum()) == n

#!/usr/bin/env python
"""Compiled-pack speedup bench: every model family at figure-21 scale.

Times a cold ``partition_bisection`` at ``p = 1080`` over three fleets —
piecewise-linear (the original fast path), step-model and EWMA-rescaled
(both newly compiled through the knot protocol) — against the per-object
oracle obtained by suppressing knot compilation with
:func:`repro.core.vectorized.packing_disabled`.  The measured quantity
is the dimensionless ratio ``per-object / compiled`` on the same
machine, so it needs no external calibration; ``perf_guard.py`` imports
:func:`measure_speedups` and gates the step and rescaled ratios at
``MIN_COMPILED_SPEEDUP`` as part of ``make bench-smoke``.

Both paths must also produce bit-identical allocations (these families
compile exactly); a mismatch fails the run before any timing is
reported.

Usage::

    python benchmarks/bench_core_vectorised.py
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.bisection import partition_bisection  # noqa: E402
from repro.core.step_model import StepSpeedFunction  # noqa: E402
from repro.core.vectorized import packing_disabled  # noqa: E402
from repro.experiments import build_network_models, tile_speed_functions  # noqa: E402
from repro.machines import table2_network  # noqa: E402

P = 1080
N = 2_000_000_000

#: The acceptance floor: the compiled path must beat the per-object
#: oracle by at least this factor on the newly compiled fleets.  The
#: ratio compares two runs on the same machine in the same process, so
#: machine-speed drift cancels and the gate is stable on shared hosts.
MIN_COMPILED_SPEEDUP = 5.0


def _step_fleet(p: int) -> list[StepSpeedFunction]:
    """A heterogeneous cache/memory/swap staircase fleet."""
    rng = np.random.default_rng(1080)
    fleet = []
    for _ in range(p):
        peak = float(rng.uniform(40.0, 400.0))
        bs = np.array([2e5, 8e5, 4e6]) * float(rng.uniform(0.6, 1.4))
        ss = peak * np.array([1.0, float(rng.uniform(0.3, 0.7)),
                              float(rng.uniform(0.02, 0.15))])
        fleet.append(StepSpeedFunction(bs, ss))
    return fleet


def build_fleets() -> dict[str, list]:
    """The three p=1080 fleets of the guarded workload."""
    mm_models = build_network_models(table2_network(), "matmul")
    pwl = list(tile_speed_functions(mm_models, P))
    rng = np.random.default_rng(2004)
    factors = rng.uniform(0.7, 1.3, P)
    rescaled = [sf.scaled(float(f)) for sf, f in zip(pwl, factors)]
    return {"pwl": pwl, "step": _step_fleet(P), "rescaled": rescaled}


def _best_of(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def measure_speedups(repeats: int = 2) -> dict[str, dict[str, float]]:
    """Cold compiled-vs-per-object solve times per fleet.

    Each compiled timing includes the pack construction (the solve is
    *cold*: ``partition_bisection`` packs the fleet itself), so the
    ratio reflects what a one-shot caller actually gains.
    """
    results: dict[str, dict[str, float]] = {}
    for name, sfs in build_fleets().items():
        compiled_result = partition_bisection(N, sfs)
        with packing_disabled():
            pure_result = partition_bisection(N, sfs)
        if not np.array_equal(compiled_result.allocation, pure_result.allocation):
            raise AssertionError(
                f"{name}: compiled and per-object allocations diverged"
            )
        compiled_s = _best_of(lambda: partition_bisection(N, sfs), repeats)

        def _pure():
            with packing_disabled():
                partition_bisection(N, sfs)

        pure_s = _best_of(_pure, repeats)
        results[name] = {
            "compiled_seconds": compiled_s,
            "per_object_seconds": pure_s,
            "speedup": pure_s / compiled_s,
        }
    return results


def main() -> int:
    status = 0
    for name, r in measure_speedups().items():
        print(
            f"bench-core-vectorised: {name:9s} p={P} compiled "
            f"{r['compiled_seconds'] * 1e3:8.2f} ms  per-object "
            f"{r['per_object_seconds'] * 1e3:8.2f} ms  -> "
            f"{r['speedup']:6.1f}x"
        )
        if name in ("step", "rescaled") and r["speedup"] < MIN_COMPILED_SPEEDUP:
            print(
                f"bench-core-vectorised: FAIL — {name} fleet compiled path is "
                f"only {r['speedup']:.1f}x the per-object oracle "
                f"(floor {MIN_COMPILED_SPEEDUP:.0f}x)",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())

"""Serving throughput: the batched, sharded service vs a naive loop.

The acceptance gate for :mod:`repro.serve`: on the p=1080 synthetic
fleet (the testbed's 12 machines tiled, as in figure 21), the serving
path — plan-cache hits, warm-started bisection and micro-batched
``plan_many`` sweeps behind one TCP front-end — must sustain at least
**5x** the plans/sec of a naive one-request-one-solve loop that calls
the paper's partitioner cold for every request, at client concurrency
32, with zero shed requests (the offered load sits below the admission
limit) and zero errors.

The workload repeats ``DISTINCT`` problem sizes across ``REQUESTS``
requests — the realistic shape for a scheduler asking about the same
fleet all day — which is exactly what the plan cache and the batcher
exploit.  ``REPRO_BENCH_SMOKE=1`` shrinks the fleet and the request
count so the file runs in seconds.
"""

from __future__ import annotations

import os
import time

from repro.core.partition import partition
from repro.experiments import ascii_table, tile_speed_functions
from repro.planner import Fleet
from repro.serve import ServeClient, ServeConfig, run_load, start_in_thread

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))

P = 120 if SMOKE else 1080
REQUESTS = 96 if SMOKE else 512
DISTINCT = 16 if SMOKE else 64
CONCURRENCY = 32
SPEEDUP_GATE = 5.0


def _workload(capacity: int) -> list[int]:
    """REQUESTS sizes cycling over DISTINCT distinct values, shuffled
    deterministically by a coprime stride so batches mix sizes."""
    pool = [capacity // (DISTINCT + 2) * (k + 1) for k in range(DISTINCT)]
    return [pool[(k * 7) % DISTINCT] for k in range(REQUESTS)]


def test_serve_throughput_vs_naive_loop(mm_models, benchmark):
    sfs = tile_speed_functions(mm_models, P)
    fleet = Fleet(sfs, name=f"bench-p{P}")
    sizes = _workload(int(fleet.capacity))

    def run():
        # -- naive baseline: one cold paper-partitioner solve per request
        begin = time.perf_counter()
        for n in sizes:
            partition(n, sfs)
        naive_seconds = time.perf_counter() - begin
        naive_rate = len(sizes) / naive_seconds

        # -- the serving path: same workload, concurrency 32, one server
        config = ServeConfig(
            shards=2, batch_window=0.002, max_batch=64, queue_depth=128
        )
        with start_in_thread(config) as handle:
            with ServeClient(handle.host, handle.port) as client:
                info = client.register_fleet(sfs, name=fleet.name)
                report = run_load(
                    handle.host,
                    handle.port,
                    info["fingerprint"],
                    sizes,
                    concurrency=CONCURRENCY,
                    connections=8,
                    allocation=False,
                )
                stats = client.stats()
        return naive_rate, report, stats

    naive_rate, report, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = report.plans_per_second / naive_rate

    print()
    print(
        ascii_table(
            ["path", "plans/s", "p50 (ms)", "p99 (ms)", "errors"],
            [
                (f"naive cold loop (p={P})", round(naive_rate, 1), "-", "-", 0),
                (
                    f"repro.serve (conc={CONCURRENCY})",
                    round(report.plans_per_second, 1),
                    round(report.p50 * 1e3, 2),
                    round(report.p99 * 1e3, 2),
                    report.error_count,
                ),
            ],
            title=f"Serving throughput — {REQUESTS} requests, "
            f"{DISTINCT} distinct sizes (speedup {speedup:.1f}x)",
        )
    )

    # The acceptance gates: throughput, zero drops, zero errors.
    assert report.ok == REQUESTS, f"missing responses: {report.summary()}"
    assert report.errors == {}, f"request errors: {report.errors}"
    assert stats["shed"] == 0, f"{stats['shed']} requests shed below the limit"
    assert speedup >= SPEEDUP_GATE, (
        f"serving must beat the naive loop {SPEEDUP_GATE}x, got {speedup:.2f}x "
        f"({report.plans_per_second:.0f} vs {naive_rate:.0f} plans/s)"
    )

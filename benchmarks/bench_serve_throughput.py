"""Serving throughput: the batched, sharded service vs a naive loop.

The acceptance gate for :mod:`repro.serve`: on the p=1080 synthetic
fleet (the testbed's 12 machines tiled, as in figure 21), the serving
path — plan-cache hits, warm-started bisection and micro-batched
``plan_many`` sweeps behind one TCP front-end — must sustain at least
**5x** the plans/sec of a naive one-request-one-solve loop that calls
the paper's partitioner cold for every request, at client concurrency
32, with zero shed requests (the offered load sits below the admission
limit) and zero errors.

The workload repeats ``DISTINCT`` problem sizes across ``REQUESTS``
requests — the realistic shape for a scheduler asking about the same
fleet all day — which is exactly what the plan cache and the batcher
exploit.  ``REPRO_BENCH_SMOKE=1`` shrinks the fleet and the request
count so the file runs in seconds.
"""

from __future__ import annotations

import bisect
import os
import threading
import time

from repro.core.partition import partition
from repro.experiments import ascii_table, tile_speed_functions
from repro.planner import Fleet
from repro.serve import ServeClient, ServeConfig, run_load, start_in_thread

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))

P = 120 if SMOKE else 1080
REQUESTS = 96 if SMOKE else 512
DISTINCT = 16 if SMOKE else 64
CONCURRENCY = 32
SPEEDUP_GATE = 5.0

#: Multi-tenant fairness gates (see ``measure_multitenant``): under a
#: 10:1 heavy:light zipfian skew the light tenant's p99 must stay
#: within this factor of its *solo* p99, it must lose zero requests
#: (the starvation-freedom contract of the weighted fair queue), and a
#: server with tenancy *configured but idle* may cost at most this
#: fraction of a served single-tenant request (budget-vs-measured, the
#: same idiom as the tracing and adaptation overhead gates).
TENANT_P99_LIMIT = 3.0
TENANT_IDLE_OVERHEAD_LIMIT = 0.03
HEAVY_SKEW = 10
LIGHT_REQUESTS = 12 if SMOKE else 48

#: Cluster topology gates (see ``measure_cluster_throughput``): the
#: router may cost at most this fraction of single-node throughput, and
#: the routed 3-fleet aggregate must stay within this gap of the
#: direct-to-nodes aggregate.
ROUTER_OVERHEAD_LIMIT = 0.15
AGGREGATE_GAP_LIMIT = 0.10
CLUSTER_NODES = 3
CLUSTER_REQUESTS = 48 if SMOKE else 192


def _workload(capacity: int) -> list[int]:
    """REQUESTS sizes cycling over DISTINCT distinct values, shuffled
    deterministically by a coprime stride so batches mix sizes."""
    pool = [capacity // (DISTINCT + 2) * (k + 1) for k in range(DISTINCT)]
    return [pool[(k * 7) % DISTINCT] for k in range(REQUESTS)]


#: Disjoint measurement phases per cluster run (see ``_phase_sizes``).
_PHASES = 8


def _phase_sizes(capacity: int, count: int, phase: int) -> list[int]:
    """``count`` distinct sizes, disjoint across ``_PHASES`` phases.

    Every request is a distinct size the server has never planned, so a
    measured phase is pure solve work (warm-started ``plan_many`` sweeps,
    no cache hits) — the same amount of it on both sides of each gate.
    The per-phase sets are disjoint so an earlier phase cannot warm the
    plan cache for a later one; the *bracket* pool still warms every
    solve slightly, which is why the callers interleave direct/routed
    passes and take best-of per side.
    """
    lo, span = capacity // 10, int(capacity * 0.8)
    sizes = [
        lo + (k * _PHASES + phase) * span // (_PHASES * count)
        for k in range(count)
    ]
    return [sizes[(k * 7) % count] for k in range(count)]


def measure_cluster_throughput(
    *,
    p: int = P,
    requests: int = CLUSTER_REQUESTS,
    concurrency: int = CONCURRENCY,
) -> dict:
    """Router + 3 node processes vs the same nodes driven directly.

    Two comparisons, both empirical and interleaved on the same machine
    so CPU-speed drift cancels:

    * **single** — one fleet's workload straight at its primary node,
      then the identical-shape workload through the router (the router
      hop is the only difference);
    * **aggregate** — all three fleets at once, one per node (distinct
      ring primaries by construction), three concurrent loads straight
      at the owning nodes vs the same three loads through the one
      router (queue-based load leveling must not serialize them).

    Returns the four plans/sec rates plus total error counts; the gates
    live in the callers (the pytest test below and ``perf_guard.py``).
    """
    from repro.cluster import (
        ClusterMembership,
        RouterConfig,
        start_process_node,
        start_router_in_thread,
    )
    from repro.experiments import build_network_models
    from repro.machines import table2_network

    models = build_network_models(table2_network(), "matmul")
    nodes = [start_process_node(f"bench-n{i}") for i in range(CLUSTER_NODES)]
    router = start_router_in_thread(
        RouterConfig(replication=2), [n.info for n in nodes]
    )
    try:
        # Pick CLUSTER_NODES tiled fleets whose ring primaries are
        # distinct nodes, mirroring the router's membership math locally
        # (same blake2b ring, same vnode count).
        ring = ClusterMembership(replication=1)
        for node in nodes:
            ring.add(node.info)
        fleets = []
        taken: set[str] = set()
        q = p
        while len(fleets) < CLUSTER_NODES:
            sfs = tile_speed_functions(models, q)
            fleet = Fleet(sfs, name=f"bench-cluster-p{q}")
            primary = ring.replicas_for(fleet.fingerprint)[0]
            if primary not in taken:
                taken.add(primary)
                owner = next(n for n in nodes if n.node_id == primary)
                fleets.append((fleet, sfs, owner))
            q += 1
        with ServeClient(router.host, router.port) as client:
            for fleet, sfs, _ in fleets:
                client.register_fleet(sfs, name=fleet.name)

        errors = 0

        def load(host: str, port: int, fleet: Fleet, phase: int):
            nonlocal errors
            report = run_load(
                host, port, fleet.fingerprint,
                _phase_sizes(int(fleet.capacity), requests, phase),
                concurrency=concurrency, connections=8, allocation=False,
            )
            errors += report.error_count
            return report

        fleet0, _, owner0 = fleets[0]

        def aggregate(phase: int, *, use_router: bool) -> float:
            reports: list = [None] * len(fleets)

            def drive(i: int) -> None:
                fleet, _, owner = fleets[i]
                host, port = (
                    (router.host, router.port) if use_router
                    else (owner.host, owner.port)
                )
                reports[i] = load(host, port, fleet, phase)

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(len(fleets))
            ]
            begin = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - begin
            return sum(r.ok for r in reports) / wall

        # Interleave direct/routed passes and keep the best rate per
        # side: solver bracket pools warm monotonically across phases,
        # so back-to-back one-shot measurements would systematically
        # flatter whichever side ran second.  Interleaving hands the
        # warming (and any machine-load drift) to both sides equally.
        direct_single = routed_single = 0.0
        for pass_no in range(2):
            direct_single = max(
                direct_single,
                load(owner0.host, owner0.port, fleet0, pass_no * 2).plans_per_second,
            )
            routed_single = max(
                routed_single,
                load(router.host, router.port, fleet0, pass_no * 2 + 1).plans_per_second,
            )
        direct_aggregate = routed_aggregate = 0.0
        for pass_no in range(2, 4):
            direct_aggregate = max(
                direct_aggregate, aggregate(pass_no * 2, use_router=False)
            )
            routed_aggregate = max(
                routed_aggregate, aggregate(pass_no * 2 + 1, use_router=True)
            )
        return {
            "p": p,
            "requests": requests,
            "concurrency": concurrency,
            "direct_single": direct_single,
            "routed_single": routed_single,
            "direct_aggregate": direct_aggregate,
            "routed_aggregate": routed_aggregate,
            "errors": errors,
        }
    finally:
        router.stop()
        for node in nodes:
            try:
                node.stop()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass


def _zipf_sizes(capacity: int, count: int) -> list[int]:
    """``count`` sizes drawn zipfian over the ``DISTINCT`` workload pool.

    Rank r is drawn with frequency proportional to 1/(r+1) via a
    golden-ratio low-discrepancy sequence — deterministic, no RNG — so
    the heavy tenant's traffic has the classic skewed popularity shape
    (a few hot sizes dominating a long tail) every run, identically.
    """
    pool = [capacity // (DISTINCT + 2) * (k + 1) for k in range(DISTINCT)]
    cum: list[float] = []
    total = 0.0
    for rank in range(DISTINCT):
        total += 1.0 / (rank + 1)
        cum.append(total)
    sizes = []
    for k in range(count):
        u = ((k + 1) * 0.6180339887498949) % 1.0 * total
        sizes.append(pool[bisect.bisect_left(cum, u)])
    return sizes


def measure_multitenant(*, p: int = P) -> dict:
    """Weighted fairness under skew, and the cost of idle tenancy.

    Two interleaved comparisons on one machine (drift cancels):

    * **fairness** — on a server with per-tenant weights (light=8,
      heavy=1) and small batches, a light tenant's workload is timed
      *solo* and then again while a heavy tenant floods the same fleet
      with ``HEAVY_SKEW``x more zipfian-distributed requests.  Passes
      alternate solo/mixed and keep the best p99 per side.
    * **overhead** — the per-request work that *only* runs when tenancy
      is configured (quota admission, weight lookup) is timed directly
      over thousands of calls and expressed as a fraction of a real
      served request, bounding the throughput cost of idle tenancy.

    Returns the raw numbers; the gates live in the callers (the pytest
    test below and ``perf_guard.py``).
    """
    from repro.experiments import build_network_models
    from repro.machines import table2_network
    from repro.serve.tenancy import QuotaManager, TenancyConfig, TenantQuota

    models = build_network_models(table2_network(), "matmul")
    sfs = tile_speed_functions(models, p)
    fleet = Fleet(sfs, name=f"bench-tenants-p{p}")
    capacity = int(fleet.capacity)

    light_sizes = [capacity // 12 * (k % 6 + 1) for k in range(LIGHT_REQUESTS)]
    heavy_sizes = _zipf_sizes(capacity, HEAVY_SKEW * LIGHT_REQUESTS)
    tenancy = TenancyConfig(
        tenants={
            "light": TenantQuota(weight=8.0),
            "heavy": TenantQuota(weight=1.0),
        }
    )

    # -- fairness: small batches so one tenant cannot hog a whole shard
    # turn; the weighted fair queue interleaves lanes between batches.
    fair = ServeConfig(
        shards=2, batch_window=0.002, max_batch=8, queue_depth=256,
        tenancy=tenancy,
    )
    solo_p99 = mixed_p99 = float("inf")
    heavy_rate = 0.0
    light_errors: dict[str, int] = {}
    light_lost = 0
    with start_in_thread(fair) as handle:
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(sfs, name=fleet.name)["fingerprint"]
        # Untimed warm-up: both workloads' sizes enter the plan cache so
        # the measured passes compare queueing, not first-solve cost.
        run_load(handle.host, handle.port, fp, sorted(set(light_sizes)),
                 concurrency=4, connections=2, tenant="light")
        run_load(handle.host, handle.port, fp, sorted(set(heavy_sizes)),
                 concurrency=8, connections=4, tenant="heavy")

        for _ in range(3):
            solo = run_load(
                handle.host, handle.port, fp, light_sizes,
                concurrency=4, connections=2, tenant="light",
            )
            solo_p99 = min(solo_p99, solo.p99)
            light_lost += solo.error_count

            reports: dict[str, object] = {}

            def drive(tenant: str, sizes: list[int], conc: int) -> None:
                reports[tenant] = run_load(
                    handle.host, handle.port, fp, sizes,
                    concurrency=conc, connections=4, tenant=tenant,
                )

            # The skew is in request *volume* (HEAVY_SKEW x), not client
            # thread count: moderate flood concurrency keeps the GIL-
            # shared load generators from distorting the latency they
            # are supposed to observe.
            flood = threading.Thread(
                target=drive, args=("heavy", heavy_sizes, 16)
            )
            trickle = threading.Thread(
                target=drive, args=("light", light_sizes, 4)
            )
            flood.start()
            trickle.start()
            trickle.join()
            flood.join()
            light, heavy = reports["light"], reports["heavy"]
            mixed_p99 = min(mixed_p99, light.p99)
            heavy_rate = max(heavy_rate, heavy.plans_per_second)
            light_lost += light.error_count + (LIGHT_REQUESTS - light.ok)
            for code, count in light.errors.items():
                light_errors[code] = light_errors.get(code, 0) + count

    # -- overhead: a wall-clock A/B of two servers cannot resolve 3% on
    # a shared machine (the serve stack's run-to-run swing is larger),
    # so the idle-tenancy cost is measured *directly* — the same
    # budget-vs-measured idiom as the tracing and adaptation gates.
    # With tenancy configured and no tenant on the wire, a plan request
    # additionally executes one quota admission check and one scheduling
    # weight lookup; that per-call cost over a real served request is
    # the guarded ratio (everything else on the path — tenant counters,
    # fair-queue stamping — runs identically with tenancy off).
    quotas = QuotaManager(tenancy)
    quotas.try_acquire("", 1.0)  # populate the cached default-lane bucket

    def _tenancy_once() -> None:
        quotas.try_acquire("", 1.0)
        quotas.weight_for("")

    budget_s = float("inf")
    for _ in range(5):
        begin = time.perf_counter()
        for _ in range(5000):
            _tenancy_once()
        budget_s = min(budget_s, (time.perf_counter() - begin) / 5000)

    probe_n = capacity // 2
    served_s = float("inf")
    overhead_errors = 0
    with start_in_thread(ServeConfig(shards=2, batch_window=0.0005)) as handle:
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(sfs, name=fleet.name)["fingerprint"]
            client.plan(fp, probe_n)  # warm the shard
            for _ in range(3):
                begin = time.perf_counter()
                for _ in range(20):
                    resp = client.plan(fp, probe_n, allocation=False)
                    overhead_errors += 0 if resp.get("ok") else 1
                served_s = min(served_s, (time.perf_counter() - begin) / 20)

    return {
        "p": p,
        "light_requests": LIGHT_REQUESTS,
        "heavy_requests": HEAVY_SKEW * LIGHT_REQUESTS,
        "solo_p99": solo_p99,
        "mixed_p99": mixed_p99,
        "heavy_rate": heavy_rate,
        "light_errors": light_errors,
        "light_lost": light_lost,
        "tenancy_budget_seconds": budget_s,
        "served_seconds": served_s,
        "overhead_errors": overhead_errors,
    }


def test_serve_throughput_vs_naive_loop(mm_models, benchmark):
    sfs = tile_speed_functions(mm_models, P)
    fleet = Fleet(sfs, name=f"bench-p{P}")
    sizes = _workload(int(fleet.capacity))

    def run():
        # -- naive baseline: one cold paper-partitioner solve per request
        begin = time.perf_counter()
        for n in sizes:
            partition(n, sfs)
        naive_seconds = time.perf_counter() - begin
        naive_rate = len(sizes) / naive_seconds

        # -- the serving path: same workload, concurrency 32, one server
        config = ServeConfig(
            shards=2, batch_window=0.002, max_batch=64, queue_depth=128
        )
        with start_in_thread(config) as handle:
            with ServeClient(handle.host, handle.port) as client:
                info = client.register_fleet(sfs, name=fleet.name)
                report = run_load(
                    handle.host,
                    handle.port,
                    info["fingerprint"],
                    sizes,
                    concurrency=CONCURRENCY,
                    connections=8,
                    allocation=False,
                )
                stats = client.stats()
        return naive_rate, report, stats

    naive_rate, report, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = report.plans_per_second / naive_rate

    print()
    print(
        ascii_table(
            ["path", "plans/s", "p50 (ms)", "p99 (ms)", "errors"],
            [
                (f"naive cold loop (p={P})", round(naive_rate, 1), "-", "-", 0),
                (
                    f"repro.serve (conc={CONCURRENCY})",
                    round(report.plans_per_second, 1),
                    round(report.p50 * 1e3, 2),
                    round(report.p99 * 1e3, 2),
                    report.error_count,
                ),
            ],
            title=f"Serving throughput — {REQUESTS} requests, "
            f"{DISTINCT} distinct sizes (speedup {speedup:.1f}x)",
        )
    )

    # The acceptance gates: throughput, zero drops, zero errors.
    assert report.ok == REQUESTS, f"missing responses: {report.summary()}"
    assert report.errors == {}, f"request errors: {report.errors}"
    assert stats["shed"] == 0, f"{stats['shed']} requests shed below the limit"
    assert speedup >= SPEEDUP_GATE, (
        f"serving must beat the naive loop {SPEEDUP_GATE}x, got {speedup:.2f}x "
        f"({report.plans_per_second:.0f} vs {naive_rate:.0f} plans/s)"
    )


def test_cluster_router_vs_direct_nodes(benchmark):
    """The multi-process topology gates: router overhead and aggregate gap."""
    r = benchmark.pedantic(measure_cluster_throughput, rounds=1, iterations=1)
    overhead = 1.0 - r["routed_single"] / r["direct_single"]
    gap = 1.0 - r["routed_aggregate"] / r["direct_aggregate"]

    print()
    print(
        ascii_table(
            ["topology", "direct plans/s", "routed plans/s", "loss"],
            [
                (
                    f"single fleet (p={r['p']})",
                    round(r["direct_single"], 1),
                    round(r["routed_single"], 1),
                    f"{overhead:.1%}",
                ),
                (
                    f"{CLUSTER_NODES} fleets on {CLUSTER_NODES} nodes",
                    round(r["direct_aggregate"], 1),
                    round(r["routed_aggregate"], 1),
                    f"{gap:.1%}",
                ),
            ],
            title=f"Cluster routing — {r['requests']} distinct-size requests "
            f"per fleet, concurrency {r['concurrency']}",
        )
    )

    assert r["errors"] == 0, f"cluster loads saw {r['errors']} errors"
    assert overhead < ROUTER_OVERHEAD_LIMIT, (
        f"router costs {overhead:.1%} of single-node throughput "
        f"(limit {ROUTER_OVERHEAD_LIMIT:.0%})"
    )
    assert gap < AGGREGATE_GAP_LIMIT, (
        f"routed aggregate trails direct-to-nodes by {gap:.1%} "
        f"(limit {AGGREGATE_GAP_LIMIT:.0%})"
    )


def test_multitenant_fairness(benchmark):
    """The tenancy gates: bounded skew impact, no starvation, idle cost."""
    r = benchmark.pedantic(measure_multitenant, rounds=1, iterations=1)
    ratio = r["mixed_p99"] / r["solo_p99"]
    overhead = r["tenancy_budget_seconds"] / r["served_seconds"]

    print()
    print(
        ascii_table(
            ["scenario", "p99 (ms)", "vs solo", "requests"],
            [
                (
                    "light tenant, solo",
                    round(r["solo_p99"] * 1e3, 2),
                    "1.0x",
                    r["light_requests"],
                ),
                (
                    f"light tenant under {HEAVY_SKEW}:1 skew",
                    round(r["mixed_p99"] * 1e3, 2),
                    f"{ratio:.1f}x",
                    r["light_requests"],
                ),
                (
                    f"heavy tenant ({r['heavy_rate']:.0f} plans/s)",
                    "-",
                    "-",
                    r["heavy_requests"],
                ),
            ],
            title=f"Multi-tenant fairness — p={r['p']}, weights light=8 "
            f"heavy=1 (idle-tenancy overhead {overhead:.1%})",
        )
    )

    # The acceptance gates: bounded unfairness, zero light-tenant loss,
    # and near-free tenancy for single-tenant deployments.
    assert r["light_lost"] == 0, (
        f"light tenant lost {r['light_lost']} requests under skew: "
        f"{r['light_errors']}"
    )
    assert ratio <= TENANT_P99_LIMIT, (
        f"light-tenant p99 degrades {ratio:.1f}x under {HEAVY_SKEW}:1 skew "
        f"(limit {TENANT_P99_LIMIT:.0f}x)"
    )
    assert r["overhead_errors"] == 0, (
        f"overhead probes saw {r['overhead_errors']} errors"
    )
    assert overhead < TENANT_IDLE_OVERHEAD_LIMIT, (
        f"idle tenancy costs {overhead:.1%} of a served request "
        f"(limit {TENANT_IDLE_OVERHEAD_LIMIT:.0%})"
    )

"""Ablation: adaptive versus static execution under drift and failure.

The adaptive layer (``repro.adapt``) only earns its complexity if it
beats the static plan when the environment actually changes.  Two
scenarios, both in the striped-MM and the LU simulators:

* **load shift** — the fastest machine permanently loses most of its
  speed mid-run (the paper's "permanently shifted band"), on top of a
  stochastic OU background load;
* **dropout** — a machine dies mid-run; the static baseline fails over
  naively to the model-fastest survivor, the adaptive path redistributes
  with the functional model over residual capacity.

The tables report the makespan margin; the assertions are the
acceptance gate ("adaptive beats static by a reported margin").  With
``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` path) the problem
sizes shrink so the whole file runs in seconds.
"""

from __future__ import annotations

import os

from repro import partition
from repro.adapt import (
    AdaptivePolicy,
    Dropout,
    FaultScript,
    LoadShift,
    simulate_lu_adaptive,
    simulate_striped_matmul_adaptive,
)
from repro.adapt.replanner import DISABLED
from repro.core.speed_function import PiecewiseLinearSpeedFunction
from repro.experiments import ascii_table
from repro.kernels.group_block import variable_group_block

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))

#: Matrix dimensions (smoke keeps the scenarios but shrinks the sizes;
#: the LU size must stay large enough to amortise block migration).
N_MM = 300 if SMOKE else 600
N_LU = 1152 if SMOKE else 2304
B_LU = 32

POLICY = AdaptivePolicy(patience=2)
SEED = 20040426


def _pwl(peak: float, scale: float = 1.0) -> PiecewiseLinearSpeedFunction:
    xs = [x * scale for x in (1e3, 1e4, 1e5, 5e5, 1e6, 2e6)]
    ss = [peak * s for s in (1.00, 0.98, 0.92, 0.70, 0.20, 0.02)]
    return PiecewiseLinearSpeedFunction(xs, ss)


def _mm_fleet():
    return [_pwl(800.0), _pwl(400.0), _pwl(200.0)]


def _lu_fleet():
    scale = 2.0 if N_LU <= 1152 else 4.0
    return [_pwl(700.0, scale), _pwl(420.0, scale), _pwl(260.0, scale)]


def _margin(static: float, adaptive: float) -> str:
    return f"{(static - adaptive) / static:+.1%}"


def test_mm_adaptive_vs_static(benchmark):
    sfs = _mm_fleet()
    alloc = partition(3 * N_MM * N_MM, sfs).allocation
    t0 = simulate_striped_matmul_adaptive(
        N_MM, alloc, sfs, policy=DISABLED
    ).makespan

    scenarios = {
        "load shift": FaultScript(
            events=(LoadShift(machine=0, at_time=0.2 * t0, factor=0.4),)
        ),
        "dropout": FaultScript(events=(Dropout(machine=1, at_time=0.25 * t0),)),
    }

    def run():
        rows = []
        for name, script in scenarios.items():
            static = simulate_striped_matmul_adaptive(
                N_MM, alloc, sfs, policy=DISABLED, script=script,
                seed=SEED, load_mean=0.1, load_sigma=0.05,
            )
            adaptive = simulate_striped_matmul_adaptive(
                N_MM, alloc, sfs, policy=POLICY, script=script,
                seed=SEED, load_mean=0.1, load_sigma=0.05,
            )
            rows.append((name, static.makespan, adaptive.makespan,
                         adaptive.replans, adaptive.migrated_elements))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["scenario", "static (s)", "adaptive (s)", "margin",
             "replans", "moved elements"],
            [
                (name, f"{st:.4f}", f"{ad:.4f}", _margin(st, ad), rp, mv)
                for name, st, ad, rp, mv in rows
            ],
            title=f"Striped MM n={N_MM}: adaptive vs static under faults",
        )
    )
    for name, static_s, adaptive_s, _, _ in rows:
        assert adaptive_s < static_s, f"adaptive lost the {name} scenario"


def test_lu_adaptive_vs_static(benchmark):
    sfs = _lu_fleet()
    dist = variable_group_block(N_LU, B_LU, sfs)
    t0 = simulate_lu_adaptive(dist, sfs, policy=DISABLED).total_seconds

    scenarios = {
        "load shift": FaultScript(
            events=(LoadShift(machine=0, at_time=0.05 * t0, factor=0.35),)
        ),
        "dropout": FaultScript(events=(Dropout(machine=0, at_time=0.1 * t0),)),
    }

    def run():
        rows = []
        for name, script in scenarios.items():
            static = simulate_lu_adaptive(
                dist, sfs, policy=DISABLED, script=script,
                seed=SEED, keep_trace=False,
            )
            adaptive = simulate_lu_adaptive(
                dist, sfs, policy=POLICY, script=script,
                seed=SEED, keep_trace=False,
            )
            rows.append((name, static.makespan, adaptive.makespan,
                         adaptive.replans, adaptive.migrated_blocks))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["scenario", "static (s)", "adaptive (s)", "margin",
             "replans", "moved blocks"],
            [
                (name, f"{st:.4f}", f"{ad:.4f}", _margin(st, ad), rp, mv)
                for name, st, ad, rp, mv in rows
            ],
            title=f"LU n={N_LU}, b={B_LU}: adaptive vs static under faults",
        )
    )
    for name, static_s, adaptive_s, _, _ in rows:
        assert adaptive_s < static_s, f"adaptive lost the {name} scenario"

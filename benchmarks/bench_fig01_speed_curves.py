"""Table 1 + Figure 1: machine specs and the three kernel speed curves.

Regenerates:

* Table 1 — the specifications of the four heterogeneous computers;
* Figure 1 — absolute speed versus problem size for ArrayOpsF,
  MatrixMultATLAS and MatrixMult on each machine, with the paging point P.

Shape claims checked: the efficient kernels hold a flat plateau and then
collapse at P; the naive kernel declines smoothly well before P; machine
ordering by speed follows the hardware.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ascii_plot, ascii_table, fig1_curves
from repro.machines import TABLE1_SPECS

KERNEL_LABELS = {
    "arrayops": "ArrayOpsF",
    "matmul_atlas": "MatrixMultATLAS",
    "matmul_naive": "MatrixMult",
}


def test_table1_specs(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (s.name, s.os, s.arch, int(s.cpu_mhz), s.main_memory_kb, s.cache_kb)
            for s in TABLE1_SPECS
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print(
        ascii_table(
            ["Machine", "OS", "Architecture", "cpu MHz", "Main Memory (kB)", "Cache (kB)"],
            rows,
            title="Table 1: specifications of four heterogeneous computers",
        )
    )
    assert len(rows) == 4


def test_fig01_curve_shapes(net1, benchmark):
    curves = benchmark.pedantic(fig1_curves, args=(net1,), rounds=1, iterations=1)
    print()
    for kernel, series in curves.items():
        rows = []
        for c in series:
            plateau = c.speeds[
                (c.sizes > c.paging_onset * 0.05) & (c.sizes < c.paging_onset * 0.8)
            ]
            post = c.speeds[c.sizes > min(c.paging_onset * 2.5, c.sizes[-1])]
            rows.append(
                (
                    c.machine,
                    float(c.peak),
                    float(plateau.min()) if plateau.size else float("nan"),
                    float(c.paging_onset),
                    float(post.min()) if post.size else float(c.speeds[-1]),
                )
            )
        print(
            ascii_table(
                ["Machine", "peak MFlops", "plateau min", "paging point P (elems)", "post-P speed"],
                rows,
                title=f"Figure 1 ({KERNEL_LABELS[kernel]}): speed vs problem size",
            )
        )
        print()

    print(
        ascii_plot(
            [
                (c.machine, c.sizes, c.speeds)
                for c in curves["matmul_atlas"]
            ],
            log_x=True,
            title="Figure 1(b) analogue: MatrixMultATLAS speed vs size",
            x_label="elements",
            y_label="MFlops",
        )
    )
    print()

    # Shape assertions (paper's qualitative claims).
    for c in curves["matmul_atlas"]:
        plateau = c.speeds[
            (c.sizes > c.paging_onset * 0.05) & (c.sizes < c.paging_onset * 0.8)
        ]
        assert plateau.max() / plateau.min() < 1.25  # near-flat before P
        post = c.speeds[c.sizes > c.paging_onset * 2.5]
        if post.size:
            assert post.max() < 0.3 * plateau.min()  # collapse after P
    for c in curves["matmul_naive"]:
        mid = c.speeds[(c.sizes > c.sizes[0] * 100) & (c.sizes < c.paging_onset)]
        assert mid.min() < 0.8 * c.peak  # smooth decline before paging
    # Hardware ordering: Comp3 (3.0 GHz P4) fastest, Comp2 (440 MHz sparc)
    # slowest on the ATLAS kernel.
    atlas = {c.machine: c.peak for c in curves["matmul_atlas"]}
    assert atlas["Comp3"] == max(atlas.values())
    assert atlas["Comp2"] == min(atlas.values())

"""Ablation: piecewise-constant [19] vs the paper's smooth functional model.

The paper's related-work argument: the Drozdowski-Wolniewicz model
(piecewise *constant* speed per memory level) fits carefully designed
applications on dedicated systems, but common applications on shared
networks have smooth curves, so the step model misjudges sizes near the
transitions.  This bench quantifies that on the twelve-machine testbed:

* fit each machine with (i) a 3-segment step model (cache / pre-paging /
  paging regimes, speeds probed at the regime midpoints) and (ii) the
  section-3.1 piecewise-linear model;
* partition the figure-22(a) MM workload with both;
* execute on the ground truth and compare makespans.
"""

from __future__ import annotations

import numpy as np

from repro import StepSpeedFunction, partition
from repro.experiments import ascii_table
from repro.kernels import mm_elements
from repro.machines import TABLE2_PAGING_MM
from repro.simulate import simulate_striped_matmul


def _fit_step_models(net2) -> list[StepSpeedFunction]:
    models = []
    for m in net2:
        truth = m.speed_function("matmul")
        cache = float(m.spec.cache_elements)
        page = 3.0 * TABLE2_PAGING_MM[m.name] ** 2
        cap = truth.max_size
        # Probe each regime at its (geometric) midpoint — the natural
        # 3-experiment parameterisation of the step model.
        s_cache = float(truth.speed(np.sqrt(cache * max(cache, 1.0))))
        s_ram = float(truth.speed(np.sqrt(cache * page)))
        s_swap = float(truth.speed(np.sqrt(page * cap)))
        # Enforce the model's strict decrease (flat synthetic plateaus can
        # probe equal speeds).
        s_ram = min(s_ram, s_cache * (1 - 1e-6))
        s_swap = min(s_swap, s_ram * (1 - 1e-6))
        models.append(StepSpeedFunction([cache, page, cap], [s_cache, s_ram, s_swap]))
    return models


def test_step_vs_functional_distribution_quality(net2, mm_models, benchmark):
    truth = net2.speed_functions("matmul")
    step_models = benchmark.pedantic(
        _fit_step_models, args=(net2,), rounds=1, iterations=1
    )
    rows = []
    for n in (17_000, 21_000, 25_000, 29_000):
        total = mm_elements(n)
        t_linear = simulate_striped_matmul(
            n, partition(total, mm_models).allocation, truth
        ).makespan
        t_step = simulate_striped_matmul(
            n, partition(total, step_models).allocation, truth
        ).makespan
        rows.append((n, f"{t_linear:,.0f}", f"{t_step:,.0f}", round(t_step / t_linear, 2)))
    print()
    print(
        ascii_table(
            ["n", "piecewise-linear t (s)", "step model t (s)", "step / linear"],
            rows,
            title="Ablation: step model [19] vs the smooth functional model",
        )
    )
    ratios = [r[3] for r in rows]
    # The step model never beats the smooth model materially, and loses
    # visibly somewhere in the sweep (its flat segments misplace the
    # allocation near the paging knees).
    assert all(r > 0.95 for r in ratios)
    assert max(ratios) > 1.05

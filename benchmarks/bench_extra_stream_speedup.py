"""Extra experiment: the streaming application class (figure-22 protocol).

The paper's introduction motivates the model with "processing of very
large linear data files" but evaluates only MM and LU.  This bench closes
the loop: the figure-22 comparison (functional vs single-number model) on
the ArrayOpsF-analogue streaming kernel over the four Table 1 machines.

Streaming collapse under paging is far harsher than matrix compute (no
arithmetic to hide the swap traffic behind), so the single-number model's
failure mode is extreme: once its distribution pushes one machine past
its memory, the run is orders of magnitude slower.
"""

from __future__ import annotations

from repro.experiments import ascii_table, build_network_models, stream_speedup_experiment


def test_stream_speedup(net1, benchmark):
    truth = net1.speed_functions("arrayops")
    capacity = int(sum(t.max_size for t in truth))
    # Up to 70% of the combined memory+swap capacity; beyond that every
    # machine thrashes so deeply that *no* model is meaningfully accurate
    # (the paper never operates there either).
    sizes = [int(capacity * f) for f in (0.10, 0.25, 0.40, 0.55, 0.70)]
    probe = int(min(t.max_size for t in truth) * 0.05)

    def run():
        models = build_network_models(net1, "arrayops")
        return stream_speedup_experiment(net1, sizes, probe, models=models)

    pts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["elements", "% of capacity", "functional t (s)", "single t (s)", "speedup"],
            [
                (
                    p.n,
                    f"{100 * p.n / capacity:.0f}%",
                    p.functional_seconds,
                    p.single_seconds,
                    round(p.speedup, 2),
                )
                for p in pts
            ],
            title="Extra: streaming-kernel speedup, functional vs single-number",
        )
    )
    for p in pts:
        assert p.speedup > 0.95, f"n={p.n}: {p.speedup:.2f}"
    # The single-number model falls off a cliff once its allocation pushes
    # a machine past memory; the functional model never does.
    assert max(p.speedup for p in pts) > 2.0

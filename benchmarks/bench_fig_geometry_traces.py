"""Figures 3-15 (illustrative constructions): regenerated geometric data.

These are not evaluation figures, but the paper's algorithmic claims live
in them; the bench regenerates each construction on the twelve-machine
testbed models and asserts the claimed invariant:

* fig 4/6 — optimal points share one ray through the origin; perturbing
  the allocation strictly increases the execution time;
* fig 8/18 — the initial lines straddle ``n`` and every bisection step
  keeps the optimum bracketed;
* fig 13/15 — step counts of basic vs modified on benign shapes.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ascii_table
from repro.experiments.traces import (
    algorithm_step_comparison,
    bisection_trace,
    optimal_line_demo,
)
from repro.kernels import mm_elements


def test_fig04_06_optimal_line(mm_models, benchmark):
    n = mm_elements(20_000)
    demo = benchmark.pedantic(
        optimal_line_demo, args=(n, mm_models), rounds=1, iterations=1
    )
    print()
    print(
        ascii_table(
            ["processor", "allocation x_i", "point slope s_i(x_i)/x_i"],
            [
                (i, int(x), s)
                for i, (x, s) in enumerate(
                    zip(demo.allocation[demo.allocation > 0], demo.point_slopes)
                )
            ],
            title="Figure 4/6: the optimal points lie on one line through the origin",
        )
    )
    spread = demo.point_slopes.max() / demo.point_slopes.min()
    print(f"slope spread: {spread - 1:.2e};  optimal {demo.optimal_makespan:.4g}s "
          f"vs perturbed {demo.perturbed_makespan:.4g}s")
    # One ray (integer rounding allows a whisker of spread).
    assert spread < 1.01
    # Figure 6's claim: any other allocation takes at least as long.
    assert demo.perturbed_makespan >= demo.optimal_makespan


def test_fig08_18_bisection_trace(mm_models, benchmark):
    n = mm_elements(23_000)
    trace = benchmark.pedantic(
        bisection_trace, args=(n, mm_models), rounds=1, iterations=1
    )
    print()
    rows = [
        ("line1 (initial, steep)", trace.initial_upper[0], trace.initial_upper[1]),
        ("line2 (initial, shallow)", trace.initial_lower[0], trace.initial_lower[1]),
    ] + [
        (f"line{k + 3}", slope, total)
        for k, (slope, total) in enumerate(trace.steps[:10])
    ]
    print(
        ascii_table(
            ["line", "slope", "total allocation"],
            rows,
            title=f"Figure 8/18: bisection lines for n = {n} "
            f"({trace.num_steps} steps total)",
        )
    )
    # Initial lines bracket n (figure 18's construction).
    assert trace.initial_upper[1] <= n <= trace.initial_lower[1]
    # Every bisecting line lies inside the initial slope wedge.
    for slope, _ in trace.steps:
        assert trace.initial_lower[0] <= slope <= trace.initial_upper[0]
    # Totals approach n: the last step is far closer than the first.
    first_gap = abs(trace.steps[0][1] - n)
    last_gap = abs(trace.steps[-1][1] - n)
    assert last_gap <= first_gap


def test_fig13_15_step_counts(mm_models, benchmark):
    n = mm_elements(20_000)
    counts = benchmark.pedantic(
        algorithm_step_comparison, args=(n, mm_models), rounds=1, iterations=1
    )
    print()
    print(
        ascii_table(
            ["algorithm", "steps"],
            list(counts.items()),
            title="Figure 13/15: step counts on real-life shapes (polynomial slopes)",
        )
    )
    # Real-life shapes: both algorithms take O(log n)-ish steps.
    assert counts["bisection"] <= int(np.log2(n)) + 10
    assert counts["modified"] <= 12 * np.log2(n) + 12

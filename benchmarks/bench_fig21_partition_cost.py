"""Figure 21: the cost of finding the optimal partition.

The paper sweeps p in {270, 540, 810, 1080} processors and problem sizes
up to 2e9 elements and reports costs below ~0.12 s — negligible against
application run times of minutes to hours.  The bench replays the sweep on
speed functions tiled from the twelve built models and asserts the two
shape claims: sub-second cost everywhere, cost growing with p.
"""

from __future__ import annotations

from repro.core.partition import partition
from repro.experiments import (
    FIG21_PROBLEM_SIZES,
    FIG21_PROCESSOR_COUNTS,
    ascii_table,
    fig21_sweep,
    tile_speed_functions,
)


def test_fig21_cost_sweep(mm_models, benchmark):
    points = benchmark.pedantic(
        fig21_sweep, args=(mm_models,), kwargs=dict(repeats=2), rounds=1, iterations=1
    )
    print()
    print(
        ascii_table(
            ["p", "problem size n", "cost (s)", "bisection steps"],
            [(pt.p, pt.n, pt.seconds, pt.iterations) for pt in points],
            title="Figure 21: cost of the partitioning algorithm",
        )
    )
    for pt in points:
        assert pt.seconds < 1.0, f"p={pt.p}, n={pt.n}: {pt.seconds:.3f}s"
    # Cost grows with the number of processors (the paper's four curves
    # stack in p order).  Compare totals across the whole size axis so a
    # single noisy timing sample cannot flip the ordering.
    total_by_p: dict[int, float] = {}
    for pt in points:
        total_by_p[pt.p] = total_by_p.get(pt.p, 0.0) + pt.seconds
    assert total_by_p[1080] > total_by_p[270]


def test_fig21_benchmark_largest_case(mm_models, benchmark):
    sfs = tile_speed_functions(mm_models, max(FIG21_PROCESSOR_COUNTS))
    n = max(FIG21_PROBLEM_SIZES)
    result = benchmark(lambda: partition(n, sfs))
    assert int(result.allocation.sum()) == n

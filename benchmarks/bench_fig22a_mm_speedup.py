"""Figure 22(a): matrix multiplication — functional vs single-number model.

For n = 15000..31000, partitions C = A*B^T over the twelve-machine testbed
with (i) the functional model built by the section-3.1 procedure and (ii)
the single-number model with speeds measured at 500x500 (solid curve) and
4000x4000 (dashed curve) matrices, then simulates both distributions on
the ground-truth machines.

Shape claims asserted: speedup >= ~1 everywhere (the paper argues the
single-number distribution "cannot in principle be better"), and clearly
> 1 in the paging regime, for both probe sizes.
"""

from __future__ import annotations

from repro.experiments import (
    FIG22A_PROBES,
    FIG22A_SIZES,
    ascii_plot,
    ascii_table,
    mm_speedup_experiment,
)


def test_fig22a_mm_speedup(net2, mm_models, benchmark):
    all_points = {}

    def run():
        return {
            probe: mm_speedup_experiment(
                net2, sizes=FIG22A_SIZES, probe=probe, models=mm_models
            )
            for probe in FIG22A_PROBES
        }

    all_points = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = []
    for n, p_small, p_large in zip(
        FIG22A_SIZES, all_points[FIG22A_PROBES[0]], all_points[FIG22A_PROBES[1]]
    ):
        rows.append(
            (
                n,
                p_small.functional_seconds,
                p_small.single_seconds,
                round(p_small.speedup, 2),
                round(p_large.speedup, 2),
            )
        )
    print(
        ascii_table(
            [
                "n",
                "functional t (s)",
                f"single t (s, {FIG22A_PROBES[0]}^2)",
                f"speedup ({FIG22A_PROBES[0]}^2)",
                f"speedup ({FIG22A_PROBES[1]}^2)",
            ],
            rows,
            title="Figure 22(a): MM speedup of the functional over the single-number model",
        )
    )
    print()
    print(
        ascii_plot(
            [
                (
                    f"probe {probe}^2",
                    [p.n for p in pts],
                    [p.speedup for p in pts],
                )
                for probe, pts in all_points.items()
            ],
            title="Figure 22(a): speedup vs matrix size",
            x_label="n",
            y_label="speedup",
        )
    )
    for probe, pts in all_points.items():
        for pt in pts:
            assert pt.speedup > 0.9, f"probe {probe}, n={pt.n}: {pt.speedup:.2f}"
        # Clear wins once tasks stop fitting in memory.
        assert max(pt.speedup for pt in pts) > 1.5, f"probe {probe}"
        # The speedup trend rises over the sweep (compare endpoints' means).
        first3 = sum(p.speedup for p in pts[:3]) / 3
        last3 = sum(p.speedup for p in pts[-3:]) / 3
        assert last3 > first3, f"probe {probe}"

"""Ablation: robustness of distributions under workload-fluctuation bands.

Figure 2 motivates the band model; this study quantifies its operational
consequence: a distribution derived once (from band midlines) is replayed
against many stochastic band draws, and the makespan spread is compared to
the band widths that produced it.  A second column shows distributions
derived from *noisy* (band-sampled) benchmarks — the realistic deployment
case — versus the noise-free ideal.
"""

from __future__ import annotations

import numpy as np

from repro import partition
from repro.experiments import ascii_table, build_network_models
from repro.kernels import mm_elements
from repro.simulate import simulate_striped_matmul

N = 20_000
RUNS = 25


def test_band_robustness(net2, mm_models, benchmark):
    rng = np.random.default_rng(42)
    truth = net2.speed_functions("matmul")
    total = mm_elements(N)
    alloc = partition(total, mm_models).allocation

    def replay():
        times = []
        for _ in range(RUNS):
            sampled = net2.sample_speed_functions("matmul", rng)
            times.append(simulate_striped_matmul(N, alloc, sampled).makespan)
        return np.asarray(times)

    times = benchmark.pedantic(replay, rounds=1, iterations=1)
    nominal = simulate_striped_matmul(N, alloc, truth).makespan

    noisy_models = build_network_models(net2, "matmul", noisy=True, seed=7)
    noisy_alloc = partition(total, noisy_models).allocation
    t_noisy_dist = simulate_striped_matmul(N, noisy_alloc, truth).makespan

    print()
    print(
        ascii_table(
            ["quantity", "seconds"],
            [
                ("nominal makespan (midline truth)", f"{nominal:,.0f}"),
                (f"mean over {RUNS} band draws", f"{times.mean():,.0f}"),
                ("worst band draw", f"{times.max():,.0f}"),
                ("relative spread (max-min)/mean", f"{(times.max() - times.min()) / times.mean():.1%}"),
                ("makespan from noisy-benchmark models", f"{t_noisy_dist:,.0f}"),
            ],
            title=f"Robustness under fluctuation bands (MM, n = {N})",
        )
    )
    # The spread of replayed makespans is commensurate with the band widths
    # (6-40%), not catastrophically amplified by the distribution.
    spread = (times.max() - times.min()) / times.mean()
    assert 0.0 < spread < 0.6
    # Models fitted from noisy benchmarks still yield a competitive
    # distribution on the true machines.
    assert t_noisy_dist < 1.3 * nominal

"""Table 3: serial MM speed on square vs non-square equal-element matrices.

The paper shows the serial matrix-multiplication benchmark running at
essentially the same MFlops for an ``n1 x n2`` task as for the square task
with the same element count (aspect ratios up to 64:1) — which is what
licenses building speed functions from square benchmarks only.

This bench genuinely runs the NumPy kernel on the host.  Sizes are scaled
down from the paper's 2003-era 256..4096 ladder; the reproduced claim is
the *invariance* (small relative spread per element-count group), not the
absolute MFlops.
"""

from __future__ import annotations

from repro.experiments import ascii_table, mm_invariance

BASE_SIZES = (256, 512, 768, 1024)


def test_table3_mm_invariance(benchmark):
    rows = benchmark.pedantic(
        mm_invariance,
        kwargs=dict(base_sizes=BASE_SIZES, steps=4, kernel="reference", repeats=2),
        rounds=1,
        iterations=1,
    )
    print()
    table = []
    for row in rows:
        for (n1, n2), s in zip(row.shapes, row.speeds):
            table.append((f"{n1}x{n2}", row.elements, round(s)))
        table.append((f"-- spread {row.spread:.1%} --", "", ""))
    print(
        ascii_table(
            ["Size of matrix", "Elements", "Absolute speed (MFlops)"],
            table,
            title="Table 3: serial matrix-matrix multiplication, square vs non-square",
        )
    )
    for row in rows:
        # Paper: speeds within a few per cent on 2003 hardware.  Modern
        # multi-threaded SIMD BLAS is considerably more shape-sensitive at
        # small sizes, so the reproduced claim is a *bounded* fastest/
        # slowest ratio per equal-element group rather than near-equality;
        # EXPERIMENTS.md records the measured numbers and the deviation.
        ratio = max(row.speeds) / min(row.speeds)
        assert ratio < 3.0, f"{row.elements}: fastest/slowest {ratio:.2f}"
    # Per-group mean speeds should not differ wildly either (flat MFlops
    # across the whole table in the paper).
    means = [sum(r.speeds) / len(r.speeds) for r in rows]
    assert max(means) / min(means) < 5.0

"""Ablation: deriving the band-width law from time-varying load.

Section 1's empirical observations about performance bands — ~40 % wide
for short runs, shrinking "close to linearly" to ~6 % for the longest, and
a heavy permanent load shifting the band down at constant width — are
*derived* here from the Ornstein-Uhlenbeck background-load model: the
longer a run, the more it time-averages the load, so the spread of
measured effective speeds concentrates.
"""

from __future__ import annotations

import numpy as np

from repro import ConstantSpeedFunction
from repro.experiments import ascii_table
from repro.machines.dynamic import effective_speed, ou_load_trace

RUNS = 60
DT = 0.25
TAU = 5.0


def _band_width(task_seconds: float, rng: np.random.Generator, mean: float = 0.15) -> float:
    """Relative peak-to-peak spread of measured speeds for a task length."""
    sf = ConstantSpeedFunction(100.0, max_size=1e12)
    x = 100.0 * (1.0 - mean) * task_seconds  # sized to take ~task_seconds
    steps = int(task_seconds * 40 / DT) + 200
    speeds = [
        effective_speed(sf, x, ou_load_trace(rng, steps, DT, mean=mean, tau=TAU), DT)
        for _ in range(RUNS)
    ]
    arr = np.asarray(speeds)
    return float((arr.max() - arr.min()) / arr.mean())


def test_band_width_shrinks_with_execution_time(benchmark):
    rng = np.random.default_rng(20040426)
    durations = [2.0, 8.0, 32.0, 128.0, 512.0]

    def run():
        return [(d, _band_width(d, rng)) for d in durations]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["task duration (s)", "measured band width (rel.)"],
            [(d, f"{w:.1%}") for d, w in rows],
            title="Derived band width vs execution time (OU load, tau = 5s)",
        )
    )
    widths = [w for _, w in rows]
    # Short runs fluctuate like the instantaneous load (tens of per cent);
    # long runs concentrate to a few per cent — the paper's observation.
    assert widths[0] > 0.15
    assert widths[-1] < 0.08
    # Monotone narrowing across the sweep (allow small sampling noise).
    for a, b in zip(widths, widths[1:]):
        assert b < a * 1.25


def test_heavy_load_shifts_not_widens(benchmark):
    rng = np.random.default_rng(7)
    sf = ConstantSpeedFunction(100.0, max_size=1e12)
    duration = 32.0
    steps = int(duration * 40 / DT) + 200

    def stats(mean_load):
        x = 100.0 * (1.0 - mean_load) * duration
        speeds = np.asarray(
            [
                effective_speed(
                    sf, x, ou_load_trace(rng, steps, DT, mean=mean_load, tau=TAU), DT
                )
                for _ in range(RUNS)
            ]
        )
        return speeds.mean(), speeds.max() - speeds.min()

    light_mean, light_width = benchmark.pedantic(
        stats, args=(0.10,), rounds=1, iterations=1
    )
    heavy_mean, heavy_width = stats(0.45)
    print()
    print(
        ascii_table(
            ["load", "mean speed", "absolute band width"],
            [
                ("routine (10%)", light_mean, light_width),
                ("heavy (45%)", heavy_mean, heavy_width),
            ],
            title="Band shift under a permanent heavy load",
        )
    )
    # The band moves down...
    assert heavy_mean < 0.75 * light_mean
    # ...while its absolute width stays the same order (paper: "the width
    # representing the difference between the levels remaining the same").
    assert 0.4 * light_width < heavy_width < 2.5 * light_width

"""Ablation: basic vs modified vs combined vs exact partitioners.

Reproduces the algorithmic story of section 2 (figures 8, 10-12, 15):

* on benign real-life speed functions the basic bisection converges in
  O(log n) steps and all algorithms return the same (optimal) makespan;
* on a pathological flat-plateau shape the basic bisection's step count
  blows up while the modified algorithm stays within its p*log2(n) bound,
  and the combined algorithm tracks the better of the two.
"""

from __future__ import annotations

import numpy as np

from repro import (
    PiecewiseLinearSpeedFunction,
    partition_bisection,
    partition_combined,
    partition_exact,
    partition_modified,
)
from repro.experiments import ascii_table

ALGOS = {
    "bisection": partition_bisection,
    "modified": partition_modified,
    "combined": partition_combined,
    "exact": partition_exact,
}


def _pathological(p: int = 4) -> list[PiecewiseLinearSpeedFunction]:
    """Nearly flat plateaus ending in cliffs at staggered sizes.

    On such shapes the optimal-line slope is extremely sensitive to n and
    slope bisection makes little x-progress per step.
    """
    sfs = []
    for i in range(p):
        edge = 1e6 * (1.0 + 0.37 * i)
        xs = np.array([1e3, edge, edge * 1.001])
        ss = np.array([100.0, 99.0, 0.01]) * (1.0 + 0.2 * i)
        sfs.append(PiecewiseLinearSpeedFunction(xs, ss))
    return sfs


def test_ablation_realistic(mm_models, benchmark):
    n = 3 * 25_000**2
    rows = []
    for name, fn in ALGOS.items():
        r = fn(n, mm_models)
        rows.append((name, r.iterations, r.intersections, r.makespan))
    print()
    print(
        ascii_table(
            ["algorithm", "steps", "ray intersections", "makespan (model s)"],
            rows,
            title=f"Ablation (12-machine testbed models, n = 3*25000^2)",
        )
    )
    makespans = [r[3] for r in rows]
    assert max(makespans) / min(makespans) < 1 + 1e-9  # all optimal
    benchmark(lambda: partition_combined(n, mm_models))


def test_ablation_pathological(benchmark):
    sfs = _pathological()
    n = int(sum(sf.max_size for sf in sfs) * 0.9)

    def run():
        return {name: fn(n, sfs) for name, fn in ALGOS.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, r.iterations, r.intersections, r.makespan)
        for name, r in results.items()
    ]
    print()
    print(
        ascii_table(
            ["algorithm", "steps", "ray intersections", "makespan (model s)"],
            rows,
            title="Ablation (pathological flat plateaus)",
        )
    )
    p = len(sfs)
    # The modified algorithm honours its bound even here.
    assert results["modified"].iterations <= p * np.log2(n) + p
    # All algorithms still agree on the optimum.
    ms = [r.makespan for r in results.values()]
    assert max(ms) / min(ms) < 1 + 1e-6

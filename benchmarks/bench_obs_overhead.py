"""Observability overhead: the disabled path must be free.

The ISSUE's acceptance bar: with telemetry disabled, the instrumented
``partition_bisection`` / ``Planner.plan`` hot paths show < 2% overhead.
The instrumentation was designed so a disabled call executes exactly one
``is_enabled()`` attribute read (solvers) or one no-op ``span()`` plus
two always-on structural counter bumps (planner) — nanoseconds against
solve times of hundreds of microseconds to milliseconds.  These benches
measure both sides of that ratio and assert the budget directly, and
additionally pin the primitive costs so a regression in the gate itself
(say, a lock sneaking into ``is_enabled``) shows up even before it is
multiplied into a hot loop.

The serve-tracing gates at the bottom apply the same idiom to request
tracing: the full per-request tracing budget (trace-context mint, span
tree build, wire round-trip, flight-recorder write, exemplar) must stay
under 5% of a served p=1080 request, and the tracing-disabled path —
one branch plus a sampled-counter bump — under 2%.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro import obs
from repro.core.bisection import partition_bisection
from repro.experiments import tile_speed_functions
from repro.obs import FleetTelemetrySink, FlightRecorder, RequestTrace, TraceContext
from repro.obs.context import new_span_id
from repro.obs.spans import Span
from repro.planner import Fleet, Planner
from repro.serve.client import ServeClient
from repro.serve.server import start_in_thread
from repro.serve.service import ServeConfig

#: Acceptance bar from the ISSUE: disabled telemetry costs < 2%.
MAX_DISABLED_OVERHEAD = 0.02

#: Acceptance bar from the ISSUE: request tracing costs < 5% of a serve.
MAX_TRACING_OVERHEAD = 0.05


@pytest.fixture(autouse=True)
def telemetry_disabled():
    """Benches run against the default (disabled) state and restore it."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def fleet_1080(mm_models):
    return Fleet(tile_speed_functions(mm_models, 1080), name="obs-bench-p1080")


def _per_call_seconds(fn, *, number: int = 20_000, repeats: int = 5) -> float:
    """Best-of-``repeats`` mean cost of one ``fn()`` call."""
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (perf_counter() - t0) / number)
    return best


def _best_of(fn, *, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _noop_span():
    with obs.span("bench.noop"):
        pass


# ---------------------------------------------------------------------------
# Primitive costs: the only instructions a disabled hot path executes.
# ---------------------------------------------------------------------------


def test_perf_disabled_is_enabled(benchmark):
    assert obs.is_enabled() is False
    benchmark(obs.is_enabled)
    # An attribute read should be well under a microsecond even on a
    # loaded CI box; 5µs is an order-of-magnitude safety margin.
    assert _per_call_seconds(obs.is_enabled) < 5e-6


def test_perf_disabled_noop_span(benchmark):
    benchmark(_noop_span)
    assert _per_call_seconds(_noop_span) < 5e-6


# ---------------------------------------------------------------------------
# The acceptance assertions: measured instrumentation budget vs measured
# solve time, on the figure-21 p=1080 configuration.
# ---------------------------------------------------------------------------


def test_disabled_overhead_partition_bisection_under_2pct(fleet_1080, benchmark):
    sfs = fleet_1080.speed_functions
    n = 2_000_000_000

    def check():
        solve = _best_of(lambda: partition_bisection(n, sfs))
        # One gated is_enabled() read per solve call — everything else
        # (record_solver and its counters) sits behind the gate.
        budget = _per_call_seconds(obs.is_enabled)
        ratio = budget / solve
        assert ratio < MAX_DISABLED_OVERHEAD, (
            f"disabled telemetry costs {ratio:.3%} of a p=1080 solve "
            f"({budget * 1e9:.0f}ns vs {solve * 1e3:.2f}ms)"
        )
        return ratio

    ratio = benchmark.pedantic(check, rounds=1, iterations=1)
    assert ratio < MAX_DISABLED_OVERHEAD


def test_disabled_overhead_planner_plan_under_2pct(fleet_1080, benchmark):
    planner = Planner(fleet_1080)
    n = 2_000_000_000
    counter = obs.get_registry().counter("bench.obs.budget")

    def cold_plan():
        planner.cache.clear()
        return planner.plan(n)

    def check():
        plan = _best_of(cold_plan)
        # A disabled cold plan executes: one no-op planner.solve span,
        # one is_enabled() read in the solver, and the always-on
        # structural counters (cache miss + cold-plan count).
        budget = (
            _per_call_seconds(_noop_span)
            + _per_call_seconds(obs.is_enabled)
            + 2 * _per_call_seconds(counter.inc)
        )
        ratio = budget / plan
        assert ratio < MAX_DISABLED_OVERHEAD, (
            f"disabled telemetry costs {ratio:.3%} of a p=1080 cold plan "
            f"({budget * 1e9:.0f}ns vs {plan * 1e3:.2f}ms)"
        )
        return ratio

    ratio = benchmark.pedantic(check, rounds=1, iterations=1)
    assert ratio < MAX_DISABLED_OVERHEAD


# ---------------------------------------------------------------------------
# Enabled mode still has to work (and stay sane) on the same hot path.
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# Serve tracing: the per-request tracing budget vs a measured served
# request on the figure-21 p=1080 fleet.
# ---------------------------------------------------------------------------


def _measure_served_request(fleet, *, tracing: bool) -> float:
    """Best-of mean per-request latency through a real server."""
    config = ServeConfig(shards=2, batch_window=0.0005, tracing=tracing)
    best = float("inf")
    with start_in_thread(config) as handle:
        with ServeClient(handle.host, handle.port) as client:
            info = client.register_fleet(fleet.speed_functions, name=fleet.name)
            fingerprint = info["fingerprint"]
            client.plan(fingerprint, 2_000_000_000)  # warm the shard
            for _ in range(3):
                t0 = perf_counter()
                for _ in range(20):
                    client.plan(fingerprint, 2_000_000_000, allocation=False)
                best = min(best, (perf_counter() - t0) / 20)
    return best


def _tracing_budget_once(hist, recorder, sink) -> None:
    """Every tracing primitive one served ``plan`` request executes.

    Mirrors the request lifecycle exactly: mint identity + root span
    (listener ``_open_trace``), ship the context to the shard, build the
    batch/solve/item span tree and serialize it back (worker), re-root
    the subtree under the request span (``_deliver``), then observe the
    latency with an exemplar, file the trace in the flight recorder and
    feed the telemetry sink (``_close_trace``).
    """
    ctx = TraceContext.new()
    root = Span(
        name="serve.plan", trace_id=ctx.trace_id, span_id=ctx.span_id,
        attrs={"n": 2_000_000_000},
    )
    wire = ctx.to_dict()
    batch = Span(
        name="serve.shard.batch", span_id=new_span_id(),
        trace_id=str(wire["trace_id"]), parent_id=str(wire["span_id"]),
        attrs={"shard": 0, "items": 1},
    )
    batch.children.append(
        Span(
            name="serve.shard.solve", seconds=1e-3, span_id=new_span_id(),
            trace_id=batch.trace_id, parent_id=batch.span_id,
            attrs={"sizes": 1},
        )
    )
    batch.children.append(
        Span(
            name="serve.shard.item", span_id=new_span_id(),
            trace_id=batch.trace_id, parent_id=batch.span_id,
            attrs={"n": 2_000_000_000, "request_span_id": ctx.span_id},
        )
    )
    subtree = Span.from_dict(batch.to_dict())
    for node in subtree.walk():
        node.trace_id = ctx.trace_id
    subtree.parent_id = root.span_id
    root.children.append(subtree)
    hist.observe(1e-3, exemplar=ctx.trace_id)
    root.seconds = 1e-3
    recorder.record(
        RequestTrace(
            trace_id=ctx.trace_id, op="plan", fleet="bench", n=2_000_000_000,
            started=0.0, seconds=1e-3, root=root,
        )
    )
    sink.observe_solve("bench", n=2_000_000_000, seconds=1e-3)


def test_serve_tracing_enabled_overhead_under_5pct(fleet_1080, benchmark):
    hist = obs.get_registry().histogram("bench.trace.latency")
    recorder = FlightRecorder(capacity=256)
    sink = FleetTelemetrySink()

    def check():
        serve = _measure_served_request(fleet_1080, tracing=True)
        budget = _per_call_seconds(
            lambda: _tracing_budget_once(hist, recorder, sink),
            number=2_000, repeats=5,
        )
        ratio = budget / serve
        assert ratio < MAX_TRACING_OVERHEAD, (
            f"request tracing costs {ratio:.3%} of a served p=1080 plan "
            f"({budget * 1e6:.1f}µs vs {serve * 1e3:.2f}ms)"
        )
        return ratio

    ratio = benchmark.pedantic(check, rounds=1, iterations=1)
    assert ratio < MAX_TRACING_OVERHEAD


def test_serve_tracing_disabled_overhead_under_2pct(fleet_1080, benchmark):
    recorder = FlightRecorder(capacity=256)

    def check():
        serve = _measure_served_request(fleet_1080, tracing=False)
        # Tracing off executes exactly one branch plus the sampled
        # counter bump in _open_trace; nothing else on the request path.
        budget = _per_call_seconds(recorder.note_sampled)
        ratio = budget / serve
        assert ratio < MAX_DISABLED_OVERHEAD, (
            f"disabled tracing costs {ratio:.3%} of a served p=1080 plan "
            f"({budget * 1e9:.0f}ns vs {serve * 1e3:.2f}ms)"
        )
        return ratio

    ratio = benchmark.pedantic(check, rounds=1, iterations=1)
    assert ratio < MAX_DISABLED_OVERHEAD


def test_enabled_mode_records_solver_metrics(fleet_1080, benchmark):
    sfs = fleet_1080.speed_functions
    n = 2_000_000_000

    def check():
        with obs.enabled(True):
            result = partition_bisection(n, sfs)
        reg = obs.get_registry()
        calls = reg.counter("core.solve.calls", labels={"algorithm": "bisection"})
        iters = reg.counter(
            "core.solve.iterations.total", labels={"algorithm": "bisection"}
        )
        assert calls.value >= 1
        assert iters.value >= result.iterations
        return result

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert int(result.allocation.sum()) == n

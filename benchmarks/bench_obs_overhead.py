"""Observability overhead: the disabled path must be free.

The ISSUE's acceptance bar: with telemetry disabled, the instrumented
``partition_bisection`` / ``Planner.plan`` hot paths show < 2% overhead.
The instrumentation was designed so a disabled call executes exactly one
``is_enabled()`` attribute read (solvers) or one no-op ``span()`` plus
two always-on structural counter bumps (planner) — nanoseconds against
solve times of hundreds of microseconds to milliseconds.  These benches
measure both sides of that ratio and assert the budget directly, and
additionally pin the primitive costs so a regression in the gate itself
(say, a lock sneaking into ``is_enabled``) shows up even before it is
multiplied into a hot loop.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro import obs
from repro.core.bisection import partition_bisection
from repro.experiments import tile_speed_functions
from repro.planner import Fleet, Planner

#: Acceptance bar from the ISSUE: disabled telemetry costs < 2%.
MAX_DISABLED_OVERHEAD = 0.02


@pytest.fixture(autouse=True)
def telemetry_disabled():
    """Benches run against the default (disabled) state and restore it."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def fleet_1080(mm_models):
    return Fleet(tile_speed_functions(mm_models, 1080), name="obs-bench-p1080")


def _per_call_seconds(fn, *, number: int = 20_000, repeats: int = 5) -> float:
    """Best-of-``repeats`` mean cost of one ``fn()`` call."""
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (perf_counter() - t0) / number)
    return best


def _best_of(fn, *, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _noop_span():
    with obs.span("bench.noop"):
        pass


# ---------------------------------------------------------------------------
# Primitive costs: the only instructions a disabled hot path executes.
# ---------------------------------------------------------------------------


def test_perf_disabled_is_enabled(benchmark):
    assert obs.is_enabled() is False
    benchmark(obs.is_enabled)
    # An attribute read should be well under a microsecond even on a
    # loaded CI box; 5µs is an order-of-magnitude safety margin.
    assert _per_call_seconds(obs.is_enabled) < 5e-6


def test_perf_disabled_noop_span(benchmark):
    benchmark(_noop_span)
    assert _per_call_seconds(_noop_span) < 5e-6


# ---------------------------------------------------------------------------
# The acceptance assertions: measured instrumentation budget vs measured
# solve time, on the figure-21 p=1080 configuration.
# ---------------------------------------------------------------------------


def test_disabled_overhead_partition_bisection_under_2pct(fleet_1080, benchmark):
    sfs = fleet_1080.speed_functions
    n = 2_000_000_000

    def check():
        solve = _best_of(lambda: partition_bisection(n, sfs))
        # One gated is_enabled() read per solve call — everything else
        # (record_solver and its counters) sits behind the gate.
        budget = _per_call_seconds(obs.is_enabled)
        ratio = budget / solve
        assert ratio < MAX_DISABLED_OVERHEAD, (
            f"disabled telemetry costs {ratio:.3%} of a p=1080 solve "
            f"({budget * 1e9:.0f}ns vs {solve * 1e3:.2f}ms)"
        )
        return ratio

    ratio = benchmark.pedantic(check, rounds=1, iterations=1)
    assert ratio < MAX_DISABLED_OVERHEAD


def test_disabled_overhead_planner_plan_under_2pct(fleet_1080, benchmark):
    planner = Planner(fleet_1080)
    n = 2_000_000_000
    counter = obs.get_registry().counter("bench.obs.budget")

    def cold_plan():
        planner.cache.clear()
        return planner.plan(n)

    def check():
        plan = _best_of(cold_plan)
        # A disabled cold plan executes: one no-op planner.solve span,
        # one is_enabled() read in the solver, and the always-on
        # structural counters (cache miss + cold-plan count).
        budget = (
            _per_call_seconds(_noop_span)
            + _per_call_seconds(obs.is_enabled)
            + 2 * _per_call_seconds(counter.inc)
        )
        ratio = budget / plan
        assert ratio < MAX_DISABLED_OVERHEAD, (
            f"disabled telemetry costs {ratio:.3%} of a p=1080 cold plan "
            f"({budget * 1e9:.0f}ns vs {plan * 1e3:.2f}ms)"
        )
        return ratio

    ratio = benchmark.pedantic(check, rounds=1, iterations=1)
    assert ratio < MAX_DISABLED_OVERHEAD


# ---------------------------------------------------------------------------
# Enabled mode still has to work (and stay sane) on the same hot path.
# ---------------------------------------------------------------------------


def test_enabled_mode_records_solver_metrics(fleet_1080, benchmark):
    sfs = fleet_1080.speed_functions
    n = 2_000_000_000

    def check():
        with obs.enabled(True):
            result = partition_bisection(n, sfs)
        reg = obs.get_registry()
        calls = reg.counter("core.solve.calls", labels={"algorithm": "bisection"})
        iters = reg.counter(
            "core.solve.iterations.total", labels={"algorithm": "bisection"}
        )
        assert calls.value >= 1
        assert iters.value >= result.iterations
        return result

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert int(result.allocation.sum()) == n

"""Ablation: communication-aware partitioning (the future-work extension).

The paper defers communication cost to future work; the reproduction
implements the sketched two-parameter link model as
:class:`~repro.core.comm_aware.CommAwareSpeedFunction` (DESIGN.md).  This
bench quantifies what accounting for links buys on the twelve-machine
testbed when link quality varies sharply: the sparc workstations sit
behind a ~1 Mbit remote segment while the rest enjoy the switched
100 Mbit LAN.

Unit note: the MM models' time axis ``x / s(x)`` is in model units; for a
fixed matrix dimension ``n`` the real-seconds conversion is the shared
factor ``2n / (3 * 1e6)`` flops per element (DESIGN.md section 4), applied
here by scaling the speed functions so link seconds and compute seconds
add up correctly.
"""

from __future__ import annotations

from repro import CommAwareSpeedFunction, partition
from repro.experiments import ascii_table
from repro.kernels import mm_elements

#: Per-element transfer seconds: 8-byte elements over 100 Mbit switched
#: vs a ~1 Mbit remote segment.
_FAST_LINK = 8.0 / 12.5e6
_SLOW_LINK = 8.0 / 0.125e6

#: The sparc workstations (X10-X12) are on the remote segment.
_REMOTE = {"X10", "X11", "X12"}


def test_comm_aware_vs_blind(net2, mm_models, benchmark):
    names = net2.names
    betas = [_SLOW_LINK if n in _REMOTE else _FAST_LINK for n in names]
    truth = net2.speed_functions("matmul")

    def run_case(n: int) -> tuple[float, float]:
        total = mm_elements(n)
        to_real = 1e6 * 3.0 / (2.0 * n)  # MFlops axis -> elements/second
        real_models = [m.scaled(to_real) for m in mm_models]
        aware = [
            CommAwareSpeedFunction(m, seconds_per_element=b, startup_s=1e-3)
            for m, b in zip(real_models, betas)
        ]
        blind_alloc = partition(total, real_models).allocation
        aware_alloc = partition(total, aware).allocation
        real_truth = [t.scaled(to_real) for t in truth]

        def realized(alloc):
            return max(
                float(t.time(min(int(x), t.max_size)))
                + (1e-3 + b * int(x) if x else 0.0)
                for t, b, x in zip(real_truth, betas, alloc)
            )

        return realized(blind_alloc), realized(aware_alloc)

    rows = []
    first = True
    for n in (17_000, 21_000, 25_000):
        if first:
            t_blind, t_smart = benchmark.pedantic(
                run_case, args=(n,), rounds=1, iterations=1
            )
            first = False
        else:
            t_blind, t_smart = run_case(n)
        rows.append(
            (n, f"{t_blind:,.0f}", f"{t_smart:,.0f}", round(t_blind / t_smart, 3))
        )
    print()
    print(
        ascii_table(
            ["n", "compute-only model t (s)", "comm-aware model t (s)", "gain"],
            rows,
            title="Ablation: comm-aware vs compute-only partitioning (heterogeneous links)",
        )
    )
    gains = [r[3] for r in rows]
    # Never worse, and the remote segment visibly matters somewhere.
    assert all(g >= 0.99 for g in gains)
    assert max(gains) > 1.02

"""Online refit gates: drift closure accuracy and amortized serve cost.

The ISSUE's acceptance bars for the online-learning loop:

* **accuracy** — after a 2x band-shape drift (the classic "machine got
  faster above a size threshold" load change the ±5% band cannot absorb),
  one :class:`repro.model.OnlineBandRefitter` pass over a window of
  observed ``(size, speed)`` points must bring the model back within
  ±5% of the drifted truth at the observed sizes;
* **cost** — a refit pass fires at most once per
  ``OnlineRefitConfig.min_observations`` telemetry records, and in steady
  state each served request contributes roughly one record, so the
  amortized refit cost per served request is ``refit_seconds / window``.
  That amortized cost must stay under 5% of a measured served p=1080
  plan request (the same denominator the tracing gates use).

Runs standalone (``python benchmarks/bench_online_refit.py``) and is
imported by ``perf_guard.py`` so ``make bench-smoke`` trips on a
regression in either bar.  Stdlib + repro only.
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Observation  # noqa: E402
from repro.core.speed_function import PiecewiseLinearSpeedFunction  # noqa: E402
from repro.model import OnlineBandRefitter  # noqa: E402
from repro.serve import OnlineRefitConfig  # noqa: E402

#: Acceptance bar: the refitted model tracks the drifted truth to ±5%.
MAX_RESIDUAL_DEVIATION = 0.05

#: Acceptance bar: amortized refit cost < 5% of a served p=1080 request.
MAX_REFIT_OVERHEAD = 0.05

#: One refit per this many observations (the serve layer's default).
REFIT_WINDOW = OnlineRefitConfig().min_observations

#: The injected band-shape drift: 2x speed at and above this size.
DRIFT_FACTOR = 2.0
DRIFT_EDGE = 5e5

P = 1080


def _pwl(peak: float) -> PiecewiseLinearSpeedFunction:
    xs = (1e3, 1e4, 1e5, 5e5, 1e6, 2e6)
    ss = (1.00, 0.98, 0.92, 0.70, 0.20, 0.02)
    return PiecewiseLinearSpeedFunction(xs, [peak * s for s in ss])


def _drifted(fn):
    def speed(x: float) -> float:
        s = float(fn.speed(x))
        return s * DRIFT_FACTOR if x >= DRIFT_EDGE else s

    return speed


def _drift_window(machine: int, truth, count: int) -> list[Observation]:
    return [
        Observation.from_step(machine, float(x), float(truth(float(x))), time=float(i))
        for i, x in enumerate(np.linspace(2e4, 2e6, count))
    ]


def measure_refit_accuracy() -> dict:
    """Residual deviation from the drifted truth, before and after refit.

    Judged at observed sizes past the drift edge: the injected shift is
    discontinuous at ``DRIFT_EDGE`` and no piecewise-linear model can
    track through the jump itself, so the band there is not meaningful.
    """
    fns = [_pwl(200.0)]
    truth = _drifted(fns[0])
    sizes = np.linspace(2e4, 2e6, 120)
    recs = [
        Observation.from_step(0, float(x), float(truth(float(x))), time=float(i))
        for i, x in enumerate(sizes)
    ]
    refit = OnlineBandRefitter(fns, name="bench-online-refit").refit(recs)
    probe = sizes[sizes >= 1.2 * DRIFT_EDGE]

    def rel(fn) -> float:
        return max(
            abs(float(fn.speed(float(x))) - truth(float(x))) / truth(float(x))
            for x in probe
        )

    return {
        "shape_changed": refit.shape_changed,
        "deviation_before": rel(fns[0]),
        "deviation_after": rel(refit.functions[0]),
    }


def measure_refit_seconds() -> float:
    """Best-of cost of one refit pass on a p=1080 fleet.

    A realistic serving window: ``REFIT_WINDOW`` observations spread over
    four machines, one of which drifted — so the pass pays the full
    per-machine escape scan plus one actual trisection refinement.
    """
    fns = [_pwl(100.0 + 10.0 * (i % 40)) for i in range(P)]
    per = REFIT_WINDOW // 4
    recs: list[Observation] = []
    for machine in range(4):
        truth = _drifted(fns[machine]) if machine == 0 else fns[machine].speed
        recs.extend(_drift_window(machine, truth, per))
    refitter = OnlineBandRefitter(fns, name="bench-online-refit-cost")
    best = float("inf")
    for _ in range(5):
        t0 = perf_counter()
        refitter.refit(recs)
        best = min(best, perf_counter() - t0)
    return best


def check_accuracy(*, prefix: str = "bench-online-refit") -> int:
    acc = measure_refit_accuracy()
    print(
        f"{prefix}: {DRIFT_FACTOR:.0f}x band-shape drift residual "
        f"{acc['deviation_before']:.1%} -> {acc['deviation_after']:.2%} "
        f"after refit (limit {MAX_RESIDUAL_DEVIATION:.0%})"
    )
    if not acc["shape_changed"]:
        print(
            f"{prefix}: FAIL — refitter did not classify a "
            f"{DRIFT_FACTOR:.0f}x banded drift as a shape change",
            file=sys.stderr,
        )
        return 1
    if acc["deviation_before"] <= MAX_RESIDUAL_DEVIATION:
        print(
            f"{prefix}: FAIL — injected drift is already within the band "
            f"({acc['deviation_before']:.1%}); the gate is vacuous",
            file=sys.stderr,
        )
        return 1
    if acc["deviation_after"] > MAX_RESIDUAL_DEVIATION:
        print(
            f"{prefix}: FAIL — refit leaves {acc['deviation_after']:.1%} "
            f"residual deviation (limit {MAX_RESIDUAL_DEVIATION:.0%})",
            file=sys.stderr,
        )
        return 1
    return 0


def check_overhead(*, prefix: str = "bench-online-refit") -> int:
    from bench_obs_overhead import _measure_served_request
    from repro.experiments import build_network_models, tile_speed_functions
    from repro.machines import table2_network
    from repro.obs.export import format_seconds
    from repro.planner import Fleet

    mm_models = build_network_models(table2_network(), "matmul")
    fleet = Fleet(tile_speed_functions(mm_models, P), name=f"refit-bench-p{P}")
    serve_s = _measure_served_request(fleet, tracing=False)
    refit_s = measure_refit_seconds()
    amortized = refit_s / REFIT_WINDOW
    ratio = amortized / serve_s
    print(
        f"{prefix}: refit {format_seconds(refit_s)} / window of "
        f"{REFIT_WINDOW} = {format_seconds(amortized)} per request on a "
        f"{format_seconds(serve_s)} served p={P} plan = "
        f"{ratio:.2%} overhead (limit {MAX_REFIT_OVERHEAD:.0%})"
    )
    if ratio > MAX_REFIT_OVERHEAD:
        print(
            f"{prefix}: FAIL — amortized refit costs {ratio:.1%} of a "
            f"served request (limit {MAX_REFIT_OVERHEAD:.0%})",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    return check_accuracy() | check_overhead()


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: is ignoring communication justified? (the paper's assumption).

Section 1 excludes communication from the model because "the contribution
of communication operations in the total execution time of the
application is negligible compared to that of computations" on the
100 Mbit testbed at the evaluated sizes.  This bench checks that claim in
the reproduction: simulate the figure-22 workloads with the serialised
Ethernet model switched on and report the communication share of the
total time.
"""

from __future__ import annotations

from repro import ConstantSpeedFunction, partition, single_number_speeds
from repro.experiments import ascii_table
from repro.kernels import mm_elements, variable_group_block
from repro.machines import CommModel
from repro.simulate import simulate_lu, simulate_striped_matmul


def test_comm_fraction_is_negligible(net2, mm_models, lu_models, benchmark):
    comm = CommModel.ethernet(12)  # the paper's 100 Mbit switched LAN
    truth_mm = net2.speed_functions("matmul")
    truth_lu = net2.speed_functions("lu")

    def run():
        rows = []
        for n in (17_000, 25_000):
            alloc = partition(mm_elements(n), mm_models).allocation
            sim = simulate_striped_matmul(n, alloc, truth_mm, comm=comm)
            rows.append(
                (
                    f"MM n={n}",
                    f"{sim.makespan:,.0f}",
                    f"{sim.comm_seconds:,.0f}",
                    sim.comm_seconds / sim.makespan,
                )
            )
        for n in (16_000, 24_000):
            dist = variable_group_block(n, 64, lu_models)
            sim = simulate_lu(dist, truth_lu, comm=comm, keep_trace=False)
            rows.append(
                (
                    f"LU n={n}",
                    f"{sim.total_seconds:,.0f}",
                    f"{sim.comm_seconds:,.0f}",
                    sim.comm_seconds / sim.total_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["workload", "total (s)", "comm (s)", "comm fraction"],
            [(w, t, c, f"{f:.1%}") for w, t, c, f in rows],
            title="Communication share on the 100 Mbit testbed (paper's assumption)",
        )
    )
    # The paper's justification holds: communication is a minor share of
    # the total at the evaluated sizes.
    for w, _, _, f in [(r[0], r[1], r[2], r[3]) for r in rows]:
        assert f < 0.35, f"{w}: comm fraction {f:.1%}"
    # And for the compute-bound MM at scale it is truly negligible.
    assert rows[1][3] < 0.05

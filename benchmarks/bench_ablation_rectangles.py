"""Ablation: 1-D striping vs the 2-D rectangle extension.

Section 3.1 sketches the multi-parameter extension ("a set of rectangular
partitions ... such that the area of the partition is proportional to the
speed of the processor").  This bench quantifies the classical trade-off
on the twelve-machine testbed's MM models:

* compute balance — both layouts equalise finish times through the
  functional model, so makespans should be comparable;
* communication volume — the 2-D layout's half-perimeter sum should beat
  the 1-D stripes (each stripe touches the full matrix width).
"""

from __future__ import annotations

from repro import partition, partition_rectangles
from repro.experiments import ascii_table
from repro.kernels import rows_from_elements


def test_rectangles_vs_stripes(net2, mm_models, benchmark):
    n = 12_000  # per-matrix dimension; areas stay within every model domain

    def run():
        return partition_rectangles(n, mm_models)

    rect = benchmark.pedantic(run, rounds=1, iterations=1)
    rect.verify_cover()

    stripe_alloc = partition(n * n, mm_models).allocation
    stripe_rows = rows_from_elements(stripe_alloc, n, matrices=1)
    stripe_half_perimeter = int(sum(int(r) + n for r in stripe_rows if r > 0))
    stripe_makespan = max(
        float(sf.time(int(r) * n)) for sf, r in zip(mm_models, stripe_rows)
    )

    print()
    print(
        ascii_table(
            ["layout", "half-perimeter sum", "modelled makespan (s)"],
            [
                ("1-D stripes", stripe_half_perimeter, stripe_makespan),
                ("2-D rectangles", rect.half_perimeter_sum, rect.makespan),
            ],
            title=f"Ablation: 1-D vs 2-D partitioning, n = {n}, p = 12",
        )
    )
    # Communication proxy: 2-D clearly lower.
    assert rect.half_perimeter_sum < 0.8 * stripe_half_perimeter
    # Compute balance: within 25% of the (optimal) striped makespan —
    # the column arrangement trades a little balance for less traffic.
    assert rect.makespan < 1.25 * stripe_makespan

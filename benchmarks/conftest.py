"""Shared fixtures for the benchmark harness.

Heavy artefacts (networks, built models) are session-scoped so every bench
file reuses them.
"""

from __future__ import annotations

import pytest

from repro.experiments import build_network_models
from repro.machines import table1_network, table2_network


@pytest.fixture(scope="session")
def net1():
    return table1_network()


@pytest.fixture(scope="session")
def net2():
    return table2_network()


@pytest.fixture(scope="session")
def mm_models(net2):
    """Section-3.1 piecewise models of the MM kernel for all 12 machines."""
    return build_network_models(net2, "matmul")


@pytest.fixture(scope="session")
def lu_models(net2):
    """Section-3.1 piecewise models of the LU kernel for all 12 machines."""
    return build_network_models(net2, "lu")

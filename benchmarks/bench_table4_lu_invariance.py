"""Table 4: serial LU speed on square vs non-square equal-element matrices.

Same invariance claim as Table 3, for the blocked LU factorisation.  Runs
the real kernel; ladder scaled down from the paper's 1024..6400.
"""

from __future__ import annotations

from repro.experiments import ascii_table, lu_invariance

BASE_SIZES = (256, 512, 768)


def test_table4_lu_invariance(benchmark):
    rows = benchmark.pedantic(
        lu_invariance,
        kwargs=dict(base_sizes=BASE_SIZES, steps=4, block=64, repeats=2),
        rounds=1,
        iterations=1,
    )
    print()
    table = []
    for row in rows:
        for (n1, n2), s in zip(row.shapes, row.speeds):
            table.append((f"{n1}x{n2}", row.elements, round(s)))
        table.append((f"-- spread {row.spread:.1%} --", "", ""))
    print(
        ascii_table(
            ["Size of matrix", "Elements", "Absolute speed (MFlops)"],
            table,
            title="Table 4: serial LU factorisation, square vs non-square",
        )
    )
    for row in rows:
        # Modern blocked LU is panel-shape-sensitive; the reproduced claim
        # is a bounded fastest/slowest ratio per equal-element group (see
        # EXPERIMENTS.md), with headroom for a loaded host.
        ratio = max(row.speeds) / min(row.speeds)
        assert ratio < 3.5, f"{row.elements}: fastest/slowest {ratio:.2f}"

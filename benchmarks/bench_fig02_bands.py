"""Figure 2: workload-fluctuation bands of MatrixMultATLAS.

Paper's observations reproduced: bands on highly integrated machines are
~30-40 % wide (relative) at small problem sizes, declining close to
linearly to ~5-8 % at the maximum size; the width in per cent of maximum
speed is annotated per machine (Comp1: 30/8/5 %, Comp2: 35/7/5 %, Comp4:
40/7/5 %).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ascii_table, fig2_bands


def test_fig02_band_widths(net1, benchmark):
    bands = benchmark.pedantic(fig2_bands, args=(net1,), rounds=1, iterations=1)
    print()
    rows = []
    for b in bands:
        rows.append(
            (
                b.machine,
                float(b.relative_width_percent[0]),
                float(b.relative_width_percent[len(b.sizes) // 2]),
                float(b.relative_width_percent[-1]),
            )
        )
    print(
        ascii_table(
            ["Machine", "width% (small)", "width% (mid)", "width% (max size)"],
            rows,
            title="Figure 2: performance band widths (percent of midline speed)",
        )
    )

    for b in bands:
        # ~40% at small sizes, ~6% at the maximum solvable size.
        assert 25.0 <= b.relative_width_percent[0] <= 45.0
        assert 4.0 <= b.relative_width_percent[-1] <= 10.0
        # Monotone (close to linear) decline.
        assert np.all(np.diff(b.relative_width_percent) <= 1e-6)
        # Envelopes never cross.
        assert np.all(b.upper >= b.lower)

"""Figure 22(b): LU factorisation — functional vs single-number model.

For n = 16000..32000, builds the Variable Group Block distribution with
(i) the functional model and (ii) constant speeds measured at 2000x2000
(solid) and 5000x5000 (dashed) matrices — the latter collapsing it to the
classical Group Block distribution — and simulates both step-by-step on
the ground-truth machines.

Shape claims: speedup >= ~1 everywhere and rising once per-step problem
sizes push the single-number distribution past machines' paging points
(the paper's y axis tops out near 2).
"""

from __future__ import annotations

from repro.experiments import (
    FIG22B_PROBES,
    FIG22B_SIZES,
    ascii_plot,
    ascii_table,
    lu_speedup_experiment,
)

#: Wider blocks than the paper's b=32 keep the simulated sweep quick; the
#: distribution and speed effects are unchanged.
BLOCK = 64


def test_fig22b_lu_speedup(net2, lu_models, benchmark):
    def run():
        return {
            probe: lu_speedup_experiment(
                net2, sizes=FIG22B_SIZES, probe=probe, block=BLOCK, models=lu_models
            )
            for probe in FIG22B_PROBES
        }

    all_points = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = []
    for n, p_small, p_large in zip(
        FIG22B_SIZES, all_points[FIG22B_PROBES[0]], all_points[FIG22B_PROBES[1]]
    ):
        rows.append(
            (
                n,
                p_small.functional_seconds,
                p_small.single_seconds,
                round(p_small.speedup, 2),
                round(p_large.speedup, 2),
            )
        )
    print(
        ascii_table(
            [
                "n",
                "functional t (s)",
                f"single t (s, {FIG22B_PROBES[0]}^2)",
                f"speedup ({FIG22B_PROBES[0]}^2)",
                f"speedup ({FIG22B_PROBES[1]}^2)",
            ],
            rows,
            title="Figure 22(b): LU speedup of the functional over the single-number model",
        )
    )
    print()
    print(
        ascii_plot(
            [
                (
                    f"probe {probe}^2",
                    [p.n for p in pts],
                    [p.speedup for p in pts],
                )
                for probe, pts in all_points.items()
            ],
            title="Figure 22(b): speedup vs matrix size",
            x_label="n",
            y_label="speedup",
        )
    )
    for probe, pts in all_points.items():
        for pt in pts:
            assert pt.speedup > 0.9, f"probe {probe}, n={pt.n}: {pt.speedup:.2f}"
        assert max(pt.speedup for pt in pts) > 1.3, f"probe {probe}"
        first3 = sum(p.speedup for p in pts[:3]) / 3
        last3 = sum(p.speedup for p in pts[-3:]) / 3
        assert last3 > first3, f"probe {probe}"

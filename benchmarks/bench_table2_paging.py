"""Table 2: the twelve-machine testbed and its paging onsets.

Prints the full Table 2 and verifies that the paging onset *detected* from
each simulated machine's ground-truth curve (the knee an experimenter
would measure) lands on the published column within tolerance.
"""

from __future__ import annotations

from repro.experiments import ascii_table, detect_paging_onsets
from repro.machines import TABLE2_SPECS


def test_table2_specs_and_paging(net2, benchmark):
    spec_rows = [
        (
            s.name,
            s.os,
            s.arch,
            int(s.cpu_mhz),
            s.main_memory_kb,
            s.free_memory_kb,
            s.cache_kb,
        )
        for s in TABLE2_SPECS
    ]
    print()
    print(
        ascii_table(
            [
                "Machine",
                "OS",
                "Architecture",
                "cpu MHz",
                "Main Mem (kB)",
                "Free Mem (kB)",
                "Cache (kB)",
            ],
            spec_rows,
            title="Table 2: specifications of the twelve computers",
        )
    )

    rows = benchmark.pedantic(
        detect_paging_onsets, args=(net2,), rounds=1, iterations=1
    )
    print()
    print(
        ascii_table(
            [
                "Machine",
                "Paging MM (detected)",
                "Paging MM (paper)",
                "Paging LU (detected)",
                "Paging LU (paper)",
            ],
            [
                (r.machine, round(r.detected_mm), r.published_mm, round(r.detected_lu), r.published_lu)
                for r in rows
            ],
            title="Table 2 (paging columns): detected vs published onset matrix sizes",
        )
    )
    assert len(rows) == 12
    for r in rows:
        assert r.mm_error < 0.25, f"{r.machine}: MM onset off by {r.mm_error:.0%}"
        assert r.lu_error < 0.25, f"{r.machine}: LU onset off by {r.lu_error:.0%}"
    # LU pages later than MM everywhere (one matrix resident instead of 3).
    for r in rows:
        assert r.published_lu >= r.published_mm

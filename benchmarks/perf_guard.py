#!/usr/bin/env python
"""Perf regression guard for the instrumented hot paths.

Runs the figure-21 p=1080 planner workload with telemetry ENABLED, writes
the metrics snapshot to ``benchmarks/out/metrics.json`` (the artifact
``make bench-smoke`` publishes), and compares the measured p=1080 solve
cost against the recorded baseline in ``benchmarks/out/baseline.json``:

* no baseline yet  -> record one and pass (first run seeds the gate);
* within tolerance -> pass (and tighten the baseline if we got faster);
* > 10% slower     -> exit 1.

The guarded number is not raw wall-clock: on shared machines the available
CPU swings far more than the 10% tolerance between runs.  Each run also
times a fixed synthetic *calibration* workload (numpy + interpreter mix,
no repro code) and guards the dimensionless ratio ``solve / calibration``
— machine-speed drift multiplies both sides and cancels, so the gate
only trips when the *solver* got slower relative to the machine.

Stdlib + repro only; runs from a source checkout without installation.

Usage::

    python benchmarks/perf_guard.py [--out PATH] [--update-baseline]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_core_vectorised import MIN_COMPILED_SPEEDUP, measure_speedups  # noqa: E402
from repro import obs, partition  # noqa: E402
from repro.adapt import simulate_lu_adaptive, simulate_striped_matmul_adaptive  # noqa: E402
from repro.adapt.replanner import DISABLED  # noqa: E402
from repro.core.bisection import partition_bisection  # noqa: E402
from repro.core.speed_function import PiecewiseLinearSpeedFunction  # noqa: E402
from repro.experiments import build_network_models, tile_speed_functions  # noqa: E402
from repro.kernels.group_block import variable_group_block  # noqa: E402
from repro.machines import table2_network  # noqa: E402
from repro.obs.export import format_seconds, write_json  # noqa: E402
from repro.planner import Fleet, Planner  # noqa: E402
from repro.simulate.executor import simulate_striped_matmul  # noqa: E402
from repro.simulate.lu_executor import simulate_lu  # noqa: E402

#: Fail if the p=1080 solve is more than this much slower than baseline.
DEFAULT_TOLERANCE = 0.10

#: Fail if the disabled-adaptation wrappers add more than this over the
#: plain simulators.  The delegation path must stay effectively free.
ADAPTIVE_OVERHEAD_TOLERANCE = 0.02

P = 1080
N = 2_000_000_000
SWEEP = [int(2e8 + i * (1.8e9 / 15)) for i in range(16)]


def _best_of(fn, *, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _calibration() -> None:
    """Fixed synthetic workload with a solver-like instruction mix.

    Interpreter-level loop over numpy vector ops on p-sized arrays —
    roughly what a bisection solve does — but touching no repro code, so
    a regression in the library cannot hide inside the calibration.
    Sized to take the same order of magnitude as the guarded solve.
    """
    x = np.arange(1.0, P + 1.0)
    acc = 0.0
    for i in range(400):
        y = np.sqrt(x * (1.0 + 1e-4 * i)) + 3.0
        np.minimum(y, x, out=y)
        acc += float(y.sum())
        idx = int(np.searchsorted(x, acc % P))
        acc += x[idx]


def run_workload(out_path: Path) -> tuple[float, float, dict]:
    """Instrumented p=1080 workload; returns (solve_s, calib_s, speedups).

    Solve and calibration timings alternate within the run so a load
    spike hits both sides; best-of per side then estimates each
    unloaded speed, and their ratio is the guarded number.
    """
    mm_models = build_network_models(table2_network(), "matmul")
    sfs = tile_speed_functions(mm_models, P)
    fleet = Fleet(sfs, name=f"perf-guard-p{P}")

    obs.clear_all()
    obs.enable()
    try:
        # The guarded numbers: interleaved best-of-3 instrumented cold
        # bisection solves at p=1080 and calibration passes.
        solve_s = calib_s = float("inf")
        for _ in range(3):
            t0 = perf_counter()
            _calibration()
            calib_s = min(calib_s, perf_counter() - t0)
            t0 = perf_counter()
            partition_bisection(N, sfs)
            solve_s = min(solve_s, perf_counter() - t0)

        # Exercise the planner layers so the artifact carries cache,
        # warm-start and batch metrics alongside the solver counters.
        planner = Planner(fleet)
        planner.plan(N)
        planner.plan(N)                  # cache hit
        planner.plan(N - 1_000_000)      # warm start
        planner.plan_many(SWEEP)         # lockstep batch

        # Compiled-vs-per-object speedups on the knot-compiled fleets
        # (self-normalizing ratios; the gate lives in main below).
        speedups = measure_speedups()

        reg = obs.get_registry()
        reg.gauge("perf_guard.solve_seconds", help="guarded p=1080 solve").set(solve_s)
        reg.gauge(
            "perf_guard.calibration_seconds",
            help="synthetic machine-speed calibration",
        ).set(calib_s)
        reg.gauge(
            "perf_guard.solve_units",
            help="solve / calibration — machine-speed normalized",
        ).set(solve_s / calib_s)
        for fleet_name, r in speedups.items():
            reg.gauge(
                "perf_guard.compiled_speedup",
                labels={"fleet": fleet_name},
                help="cold p=1080 solve: per-object / compiled",
            ).set(r["speedup"])
        out_path.parent.mkdir(parents=True, exist_ok=True)
        write_json(str(out_path), include_spans=True)
    finally:
        obs.disable()
    return solve_s, calib_s, speedups


def _adaptive_pwl(peak: float, scale: float) -> PiecewiseLinearSpeedFunction:
    xs = [x * scale for x in (1e3, 1e4, 1e5, 5e5, 1e6, 2e6)]
    ss = [peak * s for s in (1.00, 0.98, 0.92, 0.70, 0.20, 0.02)]
    return PiecewiseLinearSpeedFunction(xs, ss)


def check_adaptive_overhead(
    *, tolerance: float = ADAPTIVE_OVERHEAD_TOLERANCE
) -> int:
    """Guard the disabled-adaptation delegation cost.

    With ``policy=DISABLED`` and no fault script the adaptive simulators
    must delegate straight to the plain executors, so their extra cost is
    a fixed ~1-2µs of argument normalization and result wrapping.  A
    direct wrapped-vs-plain wall-clock ratio cannot resolve 2% of a few
    hundred µs on a shared machine (the load swings dwarf it), so the
    wrapper cost is measured *directly*: the underlying plain simulator
    is stubbed out with a constant-returning function, leaving only the
    delegation code on the timed path.  A constant ~µs code path timed
    over thousands of calls is stable to tens of nanoseconds, so the
    guarded ratio — wrapper cost over the best-of real plain-simulator
    time — is both sensitive and repeatable.  Each simulator's workload
    (striped MM at p=256, Group-Block LU at n=1536) is sized so the
    plain call is a realistic few hundred µs.
    """
    import repro.adapt.lu as adapt_lu
    import repro.adapt.mm as adapt_mm

    n_mm = 1200
    mm_sfs = [_adaptive_pwl(100.0 + 10.0 * (i % 40), 16.0) for i in range(256)]
    alloc = partition(3 * n_mm * n_mm, mm_sfs).allocation
    mm_base = simulate_striped_matmul(n_mm, alloc, mm_sfs)

    n_lu, b_lu = 1536, 32
    lu_sfs = [_adaptive_pwl(peak, 4.0) for peak in (700.0, 420.0, 260.0)]
    dist = variable_group_block(n_lu, b_lu, lu_sfs)
    lu_base = simulate_lu(dist, lu_sfs, keep_trace=False)

    cases = {
        "mm": {
            "plain": lambda: simulate_striped_matmul(n_mm, alloc, mm_sfs),
            "wrapped": lambda: simulate_striped_matmul_adaptive(
                n_mm, alloc, mm_sfs, policy=DISABLED
            ),
            "module": adapt_mm,
            "attr": "simulate_striped_matmul",
            "stub": lambda *a, **k: mm_base,
        },
        "lu": {
            "plain": lambda: simulate_lu(dist, lu_sfs, keep_trace=False),
            "wrapped": lambda: simulate_lu_adaptive(
                dist, lu_sfs, policy=DISABLED, keep_trace=False
            ),
            "module": adapt_lu,
            "attr": "simulate_lu",
            "stub": lambda *a, **k: lu_base,
        },
    }

    status = 0
    gc.collect()
    gc.disable()
    try:
        for name, case in cases.items():
            # Best-of real plain-simulator time: the denominator.
            plain_fn = case["plain"]
            plain_s = float("inf")
            for _ in range(5):
                t0 = perf_counter()
                for _ in range(10):
                    plain_fn()
                plain_s = min(plain_s, (perf_counter() - t0) / 10)

            # Wrapper-only cost: stub the delegate, time the wrapper.
            wrapped_fn = case["wrapped"]
            real = getattr(case["module"], case["attr"])
            setattr(case["module"], case["attr"], case["stub"])
            try:
                wrapper_s = float("inf")
                for _ in range(5):
                    t0 = perf_counter()
                    for _ in range(2000):
                        wrapped_fn()
                    wrapper_s = min(wrapper_s, (perf_counter() - t0) / 2000)
            finally:
                setattr(case["module"], case["attr"], real)

            ratio = wrapper_s / plain_s
            print(
                f"perf-guard: adaptive-off {name} wrapper "
                f"{format_seconds(wrapper_s)} on a "
                f"{format_seconds(plain_s)} plain call = "
                f"{ratio:.2%} overhead (limit {tolerance:.0%})"
            )
            if ratio > tolerance:
                print(
                    f"perf-guard: FAIL — disabled-adaptation {name} wrapper "
                    f"adds {ratio:.1%} over the plain simulator "
                    f"(tolerance {tolerance:.0%})",
                    file=sys.stderr,
                )
                status = 1
    finally:
        gc.enable()
    return status


def check_serve_tracing() -> int:
    """Gate per-request tracing cost against a served p=1080 request.

    Same budget-vs-measured idiom as the disabled-telemetry gates in
    ``bench_obs_overhead``: the full tracing primitive sequence (context
    mint, span tree, wire round-trip, exemplar, flight-recorder and sink
    writes) is timed over thousands of calls and held under 5% of a real
    served request; the tracing-off path — one branch and a sampled
    counter bump — under 2%.  Both sides ride the same machine, so load
    drift largely cancels.
    """
    from bench_obs_overhead import (  # noqa: E402
        MAX_DISABLED_OVERHEAD,
        MAX_TRACING_OVERHEAD,
        _measure_served_request,
        _per_call_seconds,
        _tracing_budget_once,
    )
    from repro.obs import FleetTelemetrySink, FlightRecorder

    mm_models = build_network_models(table2_network(), "matmul")
    fleet = Fleet(tile_speed_functions(mm_models, P), name=f"perf-guard-p{P}")
    hist = obs.get_registry().histogram("perf_guard.trace.latency")
    recorder = FlightRecorder(capacity=256)
    sink = FleetTelemetrySink()

    status = 0
    cases = [
        (
            "tracing-on",
            True,
            lambda: _per_call_seconds(
                lambda: _tracing_budget_once(hist, recorder, sink),
                number=2_000,
                repeats=5,
            ),
            MAX_TRACING_OVERHEAD,
        ),
        (
            "tracing-off",
            False,
            lambda: _per_call_seconds(recorder.note_sampled),
            MAX_DISABLED_OVERHEAD,
        ),
    ]
    for name, tracing, budget_fn, limit in cases:
        serve_s = _measure_served_request(fleet, tracing=tracing)
        budget_s = budget_fn()
        ratio = budget_s / serve_s
        print(
            f"perf-guard: serve {name} budget {format_seconds(budget_s)} on a "
            f"{format_seconds(serve_s)} served p={P} plan = "
            f"{ratio:.2%} overhead (limit {limit:.0%})"
        )
        if ratio > limit:
            print(
                f"perf-guard: FAIL — serve {name} path costs {ratio:.1%} of "
                f"a served request (limit {limit:.0%})",
                file=sys.stderr,
            )
            status = 1
    return status


def check_online_refit() -> int:
    """Gate the online refit loop: drift closure and amortized cost.

    Delegates to ``bench_online_refit``: one refit pass over a window of
    observed points must pull a 2x band-shape drift back inside the ±5%
    band, and a worst-case pass (a refit *applying* every window) must
    cost under 5% of a served p=1080 request once amortized over the
    window that triggers it.
    """
    from bench_online_refit import check_accuracy, check_overhead

    return check_accuracy(prefix="perf-guard") | check_overhead(
        prefix="perf-guard"
    )


def check_cluster() -> int:
    """Gate the cluster router against direct-to-node serving.

    Delegates to ``bench_serve_throughput.measure_cluster_throughput``
    (router + 3 planner node processes, all-distinct-size workloads so
    both sides do identical solve work): the routed single-fleet rate
    must keep router overhead under 15% of direct single-node
    throughput, and the routed 3-fleet aggregate must land within 10%
    of the direct-to-nodes aggregate.  Every number is a ratio of two
    runs interleaved on this machine, so load drift largely cancels.
    """
    from bench_serve_throughput import (
        AGGREGATE_GAP_LIMIT,
        ROUTER_OVERHEAD_LIMIT,
        measure_cluster_throughput,
    )

    r = measure_cluster_throughput()
    overhead = 1.0 - r["routed_single"] / r["direct_single"]
    gap = 1.0 - r["routed_aggregate"] / r["direct_aggregate"]
    status = 0
    print(
        f"perf-guard: cluster single-fleet {r['routed_single']:.0f} routed vs "
        f"{r['direct_single']:.0f} direct plans/s = {overhead:.1%} router "
        f"overhead (limit {ROUTER_OVERHEAD_LIMIT:.0%})"
    )
    if overhead >= ROUTER_OVERHEAD_LIMIT:
        print(
            f"perf-guard: FAIL — router overhead {overhead:.1%} at p={r['p']} "
            f"c={r['concurrency']} (limit {ROUTER_OVERHEAD_LIMIT:.0%})",
            file=sys.stderr,
        )
        status = 1
    print(
        f"perf-guard: cluster aggregate {r['routed_aggregate']:.0f} routed vs "
        f"{r['direct_aggregate']:.0f} direct plans/s = {gap:.1%} below "
        f"aggregate node capacity (limit {AGGREGATE_GAP_LIMIT:.0%})"
    )
    if gap >= AGGREGATE_GAP_LIMIT:
        print(
            f"perf-guard: FAIL — routed aggregate trails the nodes' own "
            f"capacity by {gap:.1%} (limit {AGGREGATE_GAP_LIMIT:.0%})",
            file=sys.stderr,
        )
        status = 1
    if r["errors"]:
        print(
            f"perf-guard: FAIL — cluster loads saw {r['errors']} errors",
            file=sys.stderr,
        )
        status = 1
    return status


def check_multitenant() -> int:
    """Gate weighted fairness and the cost of idle tenancy.

    Delegates to ``bench_serve_throughput.measure_multitenant``: under a
    10:1 heavy:light zipfian skew on a weighted-fair-queue server the
    light tenant's p99 must stay within 3x its solo p99 and lose zero
    requests (starvation-freedom); and the per-request work that only
    runs with tenancy configured but unused (quota admission + weight
    lookup) must cost under 3% of a served request — budget-vs-measured,
    like the tracing gate, because a two-server throughput A/B cannot
    resolve 3% on a shared machine.  Every number is a ratio of runs on
    this machine, so load drift largely cancels.
    """
    from bench_serve_throughput import (
        HEAVY_SKEW,
        TENANT_IDLE_OVERHEAD_LIMIT,
        TENANT_P99_LIMIT,
        measure_multitenant,
    )

    r = measure_multitenant()
    ratio = r["mixed_p99"] / r["solo_p99"]
    overhead = r["tenancy_budget_seconds"] / r["served_seconds"]
    status = 0
    print(
        f"perf-guard: tenancy light p99 {format_seconds(r['mixed_p99'])} "
        f"under {HEAVY_SKEW}:1 skew vs {format_seconds(r['solo_p99'])} solo "
        f"= {ratio:.1f}x (limit {TENANT_P99_LIMIT:.0f}x)"
    )
    if ratio > TENANT_P99_LIMIT:
        print(
            f"perf-guard: FAIL — light-tenant p99 degrades {ratio:.1f}x "
            f"under {HEAVY_SKEW}:1 skew (limit {TENANT_P99_LIMIT:.0f}x)",
            file=sys.stderr,
        )
        status = 1
    if r["light_lost"]:
        print(
            f"perf-guard: FAIL — light tenant lost {r['light_lost']} "
            f"requests under skew: {r['light_errors']}",
            file=sys.stderr,
        )
        status = 1
    print(
        f"perf-guard: tenancy idle budget "
        f"{format_seconds(r['tenancy_budget_seconds'])} on a "
        f"{format_seconds(r['served_seconds'])} served request = "
        f"{overhead:.2%} overhead (limit {TENANT_IDLE_OVERHEAD_LIMIT:.0%})"
    )
    if r["overhead_errors"] or overhead >= TENANT_IDLE_OVERHEAD_LIMIT:
        print(
            f"perf-guard: FAIL — idle tenancy costs {overhead:.1%} of a "
            f"served request with {r['overhead_errors']} probe errors "
            f"(limit {TENANT_IDLE_OVERHEAD_LIMIT:.0%})",
            file=sys.stderr,
        )
        status = 1
    return status


def check_compiled_speedups(speedups: dict) -> int:
    """Gate the knot-compiled fast path against the per-object oracle.

    The ratio is measured between two in-process runs, so it is already
    machine-normalized; the newly compiled step and rescaled fleets must
    clear ``MIN_COMPILED_SPEEDUP`` (the piecewise-linear fleet is
    reported for context but gated only by the baseline above, which it
    dominates).
    """
    status = 0
    for name, r in speedups.items():
        gated = name in ("step", "rescaled")
        print(
            f"perf-guard: compiled {name} fleet "
            f"{format_seconds(r['compiled_seconds'])} vs per-object "
            f"{format_seconds(r['per_object_seconds'])} = "
            f"{r['speedup']:.1f}x"
            + (f" (floor {MIN_COMPILED_SPEEDUP:.0f}x)" if gated else "")
        )
        if gated and r["speedup"] < MIN_COMPILED_SPEEDUP:
            print(
                f"perf-guard: FAIL — compiled {name} fleet is only "
                f"{r['speedup']:.1f}x the per-object oracle "
                f"(floor {MIN_COMPILED_SPEEDUP:.0f}x)",
                file=sys.stderr,
            )
            status = 1
    return status


def _write_baseline(baseline_path: Path, solve_s: float, calib_s: float) -> None:
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(
        json.dumps(
            {
                "p": P,
                "n": N,
                "solve_seconds": solve_s,
                "calibration_seconds": calib_s,
                "solve_units": solve_s / calib_s,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def check_baseline(
    solve_s: float,
    calib_s: float,
    baseline_path: Path,
    *,
    tolerance: float,
    update: bool,
) -> int:
    units = solve_s / calib_s
    baseline = None
    if baseline_path.exists() and not update:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        if "solve_units" not in baseline:
            print("perf-guard: baseline predates calibration — reseeding")
            baseline = None
    if baseline is not None:
        base_units = float(baseline["solve_units"])
        ratio = units / base_units
        print(
            f"perf-guard: p={P} solve {format_seconds(solve_s)} / "
            f"calibration {format_seconds(calib_s)} = {units:.3f} units "
            f"(baseline {base_units:.3f}, x{ratio:.2f})"
        )
        if ratio > 1.0 + tolerance:
            print(
                f"perf-guard: FAIL — {ratio - 1.0:.1%} slower than baseline "
                f"(tolerance {tolerance:.0%}, machine-speed normalized); "
                f"if intentional, rerun with --update-baseline",
                file=sys.stderr,
            )
            return 1
        if units < base_units:
            _write_baseline(baseline_path, solve_s, calib_s)
            print("perf-guard: improved — baseline tightened")
        return 0
    _write_baseline(baseline_path, solve_s, calib_s)
    print(
        f"perf-guard: baseline recorded — p={P} solve {format_seconds(solve_s)} "
        f"/ calibration {format_seconds(calib_s)} = {units:.3f} units"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    here = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=here / "out" / "metrics.json",
        help="where to write the metrics snapshot",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=here / "out" / "baseline.json",
        help="baseline timing file (created on first run)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed slowdown ratio before failing (default 0.10)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baseline with this run's timing",
    )
    args = parser.parse_args(argv)

    solve_s, calib_s, speedups = run_workload(args.out)
    print(f"perf-guard: metrics snapshot -> {args.out}")
    status = check_baseline(
        solve_s,
        calib_s,
        args.baseline,
        tolerance=args.tolerance,
        update=args.update_baseline,
    )
    return (
        status
        | check_compiled_speedups(speedups)
        | check_adaptive_overhead()
        | check_serve_tracing()
        | check_online_refit()
        | check_cluster()
        | check_multitenant()
    )


if __name__ == "__main__":
    raise SystemExit(main())

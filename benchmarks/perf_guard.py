#!/usr/bin/env python
"""Perf regression guard for the instrumented hot paths.

Runs the figure-21 p=1080 planner workload with telemetry ENABLED, writes
the metrics snapshot to ``benchmarks/out/metrics.json`` (the artifact
``make bench-smoke`` publishes), and compares the measured p=1080 solve
cost against the recorded baseline in ``benchmarks/out/baseline.json``:

* no baseline yet  -> record one and pass (first run seeds the gate);
* within tolerance -> pass (and tighten the baseline if we got faster);
* > 10% slower     -> exit 1.

The guarded number is not raw wall-clock: on shared machines the available
CPU swings far more than the 10% tolerance between runs.  Each run also
times a fixed synthetic *calibration* workload (numpy + interpreter mix,
no repro code) and guards the dimensionless ratio ``solve / calibration``
— machine-speed drift multiplies both sides and cancels, so the gate
only trips when the *solver* got slower relative to the machine.

Stdlib + repro only; runs from a source checkout without installation.

Usage::

    python benchmarks/perf_guard.py [--out PATH] [--update-baseline]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.core.bisection import partition_bisection  # noqa: E402
from repro.experiments import build_network_models, tile_speed_functions  # noqa: E402
from repro.machines import table2_network  # noqa: E402
from repro.obs.export import format_seconds, write_json  # noqa: E402
from repro.planner import Fleet, Planner  # noqa: E402

#: Fail if the p=1080 solve is more than this much slower than baseline.
DEFAULT_TOLERANCE = 0.10

P = 1080
N = 2_000_000_000
SWEEP = [int(2e8 + i * (1.8e9 / 15)) for i in range(16)]


def _best_of(fn, *, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _calibration() -> None:
    """Fixed synthetic workload with a solver-like instruction mix.

    Interpreter-level loop over numpy vector ops on p-sized arrays —
    roughly what a bisection solve does — but touching no repro code, so
    a regression in the library cannot hide inside the calibration.
    Sized to take the same order of magnitude as the guarded solve.
    """
    x = np.arange(1.0, P + 1.0)
    acc = 0.0
    for i in range(400):
        y = np.sqrt(x * (1.0 + 1e-4 * i)) + 3.0
        np.minimum(y, x, out=y)
        acc += float(y.sum())
        idx = int(np.searchsorted(x, acc % P))
        acc += x[idx]


def run_workload(out_path: Path) -> tuple[float, float]:
    """Instrumented p=1080 workload; returns (solve_seconds, calib_seconds).

    Solve and calibration timings alternate within the run so a load
    spike hits both sides; best-of per side then estimates each
    unloaded speed, and their ratio is the guarded number.
    """
    mm_models = build_network_models(table2_network(), "matmul")
    sfs = tile_speed_functions(mm_models, P)
    fleet = Fleet(sfs, name=f"perf-guard-p{P}")

    obs.clear_all()
    obs.enable()
    try:
        # The guarded numbers: interleaved best-of-3 instrumented cold
        # bisection solves at p=1080 and calibration passes.
        solve_s = calib_s = float("inf")
        for _ in range(3):
            t0 = perf_counter()
            _calibration()
            calib_s = min(calib_s, perf_counter() - t0)
            t0 = perf_counter()
            partition_bisection(N, sfs)
            solve_s = min(solve_s, perf_counter() - t0)

        # Exercise the planner layers so the artifact carries cache,
        # warm-start and batch metrics alongside the solver counters.
        planner = Planner(fleet)
        planner.plan(N)
        planner.plan(N)                  # cache hit
        planner.plan(N - 1_000_000)      # warm start
        planner.plan_many(SWEEP)         # lockstep batch

        reg = obs.get_registry()
        reg.gauge("perf_guard.solve_seconds", help="guarded p=1080 solve").set(solve_s)
        reg.gauge(
            "perf_guard.calibration_seconds",
            help="synthetic machine-speed calibration",
        ).set(calib_s)
        reg.gauge(
            "perf_guard.solve_units",
            help="solve / calibration — machine-speed normalized",
        ).set(solve_s / calib_s)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        write_json(str(out_path), include_spans=True)
    finally:
        obs.disable()
    return solve_s, calib_s


def _write_baseline(baseline_path: Path, solve_s: float, calib_s: float) -> None:
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(
        json.dumps(
            {
                "p": P,
                "n": N,
                "solve_seconds": solve_s,
                "calibration_seconds": calib_s,
                "solve_units": solve_s / calib_s,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def check_baseline(
    solve_s: float,
    calib_s: float,
    baseline_path: Path,
    *,
    tolerance: float,
    update: bool,
) -> int:
    units = solve_s / calib_s
    baseline = None
    if baseline_path.exists() and not update:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        if "solve_units" not in baseline:
            print("perf-guard: baseline predates calibration — reseeding")
            baseline = None
    if baseline is not None:
        base_units = float(baseline["solve_units"])
        ratio = units / base_units
        print(
            f"perf-guard: p={P} solve {format_seconds(solve_s)} / "
            f"calibration {format_seconds(calib_s)} = {units:.3f} units "
            f"(baseline {base_units:.3f}, x{ratio:.2f})"
        )
        if ratio > 1.0 + tolerance:
            print(
                f"perf-guard: FAIL — {ratio - 1.0:.1%} slower than baseline "
                f"(tolerance {tolerance:.0%}, machine-speed normalized); "
                f"if intentional, rerun with --update-baseline",
                file=sys.stderr,
            )
            return 1
        if units < base_units:
            _write_baseline(baseline_path, solve_s, calib_s)
            print("perf-guard: improved — baseline tightened")
        return 0
    _write_baseline(baseline_path, solve_s, calib_s)
    print(
        f"perf-guard: baseline recorded — p={P} solve {format_seconds(solve_s)} "
        f"/ calibration {format_seconds(calib_s)} = {units:.3f} units"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    here = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=here / "out" / "metrics.json",
        help="where to write the metrics snapshot",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=here / "out" / "baseline.json",
        help="baseline timing file (created on first run)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed slowdown ratio before failing (default 0.10)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baseline with this run's timing",
    )
    args = parser.parse_args(argv)

    solve_s, calib_s = run_workload(args.out)
    print(f"perf-guard: metrics snapshot -> {args.out}")
    return check_baseline(
        solve_s,
        calib_s,
        args.baseline,
        tolerance=args.tolerance,
        update=args.update_baseline,
    )


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: cost and accuracy of the section-3.1 model builder.

The paper reports that ~5 experimental points per machine sufficed to
build speed functions within the +/-5 % acceptance band.  This bench
measures, for every Table 2 machine: how many benchmark experiments the
trisection procedure consumes, and how far the fitted model strays from
the ground truth over the usable size range, for two acceptance bands.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ascii_table
from repro.machines import TABLE2_PAGING_MM
from repro.model import SimulatedBenchmark, build_piecewise_model, max_relative_deviation


def _build_all(net2, eps, spacing="log"):
    rows = []
    rng = np.random.default_rng(0)
    for m in net2:
        truth = m.speed_function("matmul")
        bench = SimulatedBenchmark(truth, rng)
        built = build_piecewise_model(
            bench, a=truth.max_size * 1e-4, b=truth.max_size, eps=eps, spacing=spacing
        )
        # Usable range: up to just below the paging knee.  Crossing the
        # knee itself is excluded — a piecewise-linear chord over a cliff
        # deviates by construction, and so would a real fitted model.
        usable = np.geomspace(
            truth.max_size * 1e-4, 0.9 * 3 * TABLE2_PAGING_MM[m.name] ** 2, 80
        )
        rows.append(
            (
                m.name,
                built.experiments,
                built.function.num_knots,
                max_relative_deviation(built.function, truth, usable),
            )
        )
    return rows


def test_builder_cost_and_accuracy(net2, benchmark):
    rows = benchmark.pedantic(_build_all, args=(net2, 0.05), rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["Machine", "experiments", "knots", "max rel deviation (usable range)"],
            rows,
            title="Builder ablation, eps = 5% (the paper's setting)",
        )
    )
    for name, experiments, knots, dev in rows:
        # A handful of experiments per machine; accurate over the usable
        # (pre-collapse) range to roughly the acceptance band.
        assert experiments < 80, name
        assert dev < 0.15, f"{name}: {dev:.2%}"


def test_builder_eps_tradeoff(net2, benchmark):
    loose = benchmark.pedantic(_build_all, args=(net2, 0.15), rounds=1, iterations=1)
    tight = _build_all(net2, 0.03)
    print()
    print(
        ascii_table(
            ["Machine", "experiments (eps=15%)", "experiments (eps=3%)"],
            [(a[0], a[1], b[1]) for a, b in zip(loose, tight)],
            title="Builder ablation: acceptance band vs experiment count",
        )
    )
    # A looser band can only need fewer (or equal) experiments in total.
    assert sum(a[1] for a in loose) <= sum(b[1] for b in tight)


def test_builder_spacing_ablation(net2, benchmark):
    """Paper's linear trisection vs the log-spaced extension."""
    linear = benchmark.pedantic(
        _build_all, args=(net2, 0.05, "linear"), rounds=1, iterations=1
    )
    log = _build_all(net2, 0.05, "log")
    print()
    print(
        ascii_table(
            ["Machine", "linear: experiments / max dev", "log: experiments / max dev"],
            [
                (a[0], f"{a[1]} / {a[3]:.1%}", f"{b[1]} / {b[3]:.1%}")
                for a, b in zip(linear, log)
            ],
            title="Builder ablation: trisection spacing (eps = 5%)",
        )
    )
    # Log spacing resolves the decade-spanning ramp everywhere.
    for row in log:
        assert row[3] < 0.15, f"{row[0]}: {row[3]:.2%}"
